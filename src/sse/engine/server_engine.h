#ifndef SSE_ENGINE_SERVER_ENGINE_H_
#define SSE_ENGINE_SERVER_ENGINE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "sse/core/persistable.h"
#include "sse/core/reply_cache.h"
#include "sse/engine/metrics.h"
#include "sse/engine/scheme_shard.h"
#include "sse/engine/worker_pool.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/trace.h"
#include "sse/storage/document_store.h"

namespace sse::engine {

struct EngineOptions {
  /// Number of index shards. Tokens are PRF outputs, so any count gives a
  /// uniform partition; powers of two are conventional, not required.
  size_t num_shards = 8;

  /// Worker threads for scatter dispatch (0 = one per shard, capped at the
  /// shard count). Scatters also run inline when they hit a single shard.
  size_t worker_threads = 0;

  /// Run multi-shard scatters on the pool instead of sequentially on the
  /// calling thread. Sequential mode exists for benchmarking the dispatch
  /// overhead itself.
  bool parallel_scatter = true;

  /// When non-empty, the engine's shared document store is log-backed at
  /// this path (same semantics as SchemeOptions::document_log_path).
  std::string document_log_path;

  /// At-most-once dedup of session-stamped requests (see core::ReplyCache):
  /// a retried call is served its cached reply instead of being re-applied,
  /// which is what keeps Scheme 1's XOR updates safe under retries. The
  /// cache rides along in SerializeState so dedup survives checkpoints.
  bool enable_reply_cache = true;
  core::ReplyCache::Options reply_cache;
};

/// Thread-safe sharded server: owns N SchemeShard instances behind
/// per-shard reader-writer locks, a shared document store behind its own
/// rw-lock, and a fixed worker pool for scatter requests. Handle() may be
/// called from any number of threads concurrently — searches on different
/// keywords proceed in parallel, updates serialize only within the shards
/// they touch.
///
/// Locking discipline (deadlock-free by construction): a dispatched
/// sub-request locks exactly one shard and nothing else; the document store
/// lock is only taken when no shard lock is held (document puts happen
/// after every sub-request completed and released its shard; fetches happen
/// during merge, likewise after release). SerializeState/RestoreState lock
/// shards in index order.
///
/// The engine is itself a PersistableHandler, so DurableServer can wrap it
/// unchanged: snapshots compose the shared document store with every
/// shard's SerializeState, and WAL replay re-runs whole client messages
/// through the same routing.
class ServerEngine : public core::PersistableHandler {
 public:
  /// `adapter` supplies the scheme's shard factory and routing policy.
  static Result<std::unique_ptr<ServerEngine>> Create(
      std::unique_ptr<SchemeAdapter> adapter, const EngineOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;
  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  /// Storage fail-stop notification (see PersistableHandler): flips the
  /// engine read-only and surfaces the state in Metrics(). Mutations are
  /// rejected with UNAVAILABLE from then on — defense in depth behind the
  /// DurableServer's own rejection — while searches keep serving.
  void OnStorageDegraded(const Status& cause) override;
  bool degraded() const { return metrics_.degraded(); }

  size_t num_shards() const { return slots_.size(); }
  size_t worker_threads() const { return pool_->thread_count(); }
  const SchemeAdapter& adapter() const { return *adapter_; }

  /// Aggregates over all shards (takes each shard's lock shared).
  size_t unique_keywords() const;
  uint64_t stored_index_bytes() const;
  size_t document_count() const;
  uint64_t document_bytes() const;

  MetricsSnapshot Metrics() const { return metrics_.Snap(); }

  /// Dedup table for session-stamped requests; null when disabled.
  const core::ReplyCache* reply_cache() const { return reply_cache_.get(); }

  /// Direct shard access for tests and stats; the caller must not race
  /// with concurrent Handle() calls that write the shard.
  SchemeShard* shard(size_t i) { return slots_[i]->shard.get(); }
  const SchemeShard* shard(size_t i) const { return slots_[i]->shard.get(); }

 private:
  struct Slot {
    std::unique_ptr<SchemeShard> shard;
    mutable std::shared_mutex mutex;
  };

  ServerEngine(std::unique_ptr<SchemeAdapter> adapter, EngineOptions options);

  /// Unpacks a kMsgBatch envelope and runs each sub-op through the normal
  /// dedup + routing path, fanning sub-ops across the worker pool. Per-op
  /// failures come back as kMsgError entries in the BatchReply; the
  /// envelope itself only fails on a malformed envelope.
  Result<net::Message> HandleBatch(const net::Message& request);
  /// `allow_pool` is false when the caller is itself a pool task (batch
  /// sub-ops): a nested scatter then runs sequentially, since the worker
  /// pool must never block a worker on work queued behind it.
  Result<net::Message> HandleDeduped(const net::Message& request,
                                     bool allow_pool);
  Result<net::Message> HandleInternal(const net::Message& request,
                                      bool allow_pool);
  Result<net::Message> HandleFetchDocuments(const net::Message& request);
  /// `parent` is the trace context the per-shard span attaches to; sub
  /// dispatch may run on a pool thread, where the thread-local current
  /// context is not this request's.
  Result<net::Message> DispatchSub(const SubRequest& sub,
                                   const obs::TraceContext& parent);

  std::unique_ptr<SchemeAdapter> adapter_;
  EngineOptions options_;
  std::unique_ptr<core::ReplyCache> reply_cache_;
  std::vector<std::unique_ptr<Slot>> slots_;
  mutable std::shared_mutex docs_mutex_;
  storage::DocumentStore docs_;
  mutable EngineMetrics metrics_;
  std::unique_ptr<WorkerPool> pool_;
  /// Scrape hooks into the process-wide registry (released on destruction
  /// so a short-lived engine in a test stops being scraped).
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

/// Snapshot header guarding engine state against being restored into a
/// differently configured engine (shard states are partition-dependent).
inline constexpr uint32_t kEngineSnapshotMagic = 0x53454e47;  // "SENG"

}  // namespace sse::engine

#endif  // SSE_ENGINE_SERVER_ENGINE_H_
