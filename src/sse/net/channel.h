#ifndef SSE_NET_CHANNEL_H_
#define SSE_NET_CHANNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sse/net/message.h"
#include "sse/util/result.h"

namespace sse::net {

/// Server-side message dispatcher: one request in, one reply out.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual Result<Message> Handle(const Message& request) = 0;
};

/// Cumulative traffic accounting for one client-server connection. This is
/// what the Table 1 benches read: "rounds" is exactly the paper's
/// communication-round count (one Call = one round trip), and the byte
/// counters measure the bandwidth claims of §5.4.
struct ChannelStats {
  uint64_t rounds = 0;
  uint64_t bytes_sent = 0;      // client -> server, framed
  uint64_t bytes_received = 0;  // server -> client, framed
  /// Physical frames on the wire. One Call is one frame each way, but a
  /// pipelined batch envelope carries many logical ops per frame — these
  /// counters are what the "K-keyword Store in ≤4 frames" claims measure.
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  std::map<uint16_t, uint64_t> calls_by_type;
  /// Faults deliberately injected by a testing decorator (fault.h, chaos.h)
  /// at or below this channel. Zero on real transports.
  uint64_t injected_faults = 0;

  void Clear() { *this = ChannelStats{}; }
  uint64_t TotalBytes() const { return bytes_sent + bytes_received; }
  std::string ToString() const;
};

/// One request/response exchange as seen on the wire, with the direction
/// split out; the security module reconstructs the server's *view* from a
/// sequence of these.
struct Exchange {
  Message request;
  Message reply;
};

/// Client-side connection abstraction: one `Call` is one communication
/// round.
///
/// Channels also expose an *asynchronous* form of the same exchange:
/// `Submit` hands a request to the transport and returns a ticket,
/// `Await` blocks for that request's reply. A true pipelined transport
/// (TcpChannel) writes the frame immediately and keeps reading frames
/// until the awaited reply arrives, correlating replies to in-flight
/// submissions by their (client_id, seq) session echo — so many calls can
/// be on the wire at once. The base implementation degrades gracefully:
/// Submit executes the call synchronously and buffers the result, which
/// keeps every decorator (fault injection, chaos, in-process) correct
/// without changes, just without wire-level overlap.
///
/// Channels are single-caller objects: Submit/Await/Call must not race
/// from multiple threads (use one channel per client thread, as the rest
/// of the stack already does).
class Channel {
 public:
  /// Ticket for a submitted-but-not-awaited call, unique per channel.
  using CallId = uint64_t;

  virtual ~Channel() = default;

  /// Sends `request`, waits for the reply. Transport-level failures come
  /// back as statuses; an application-level kMsgError reply is surfaced as
  /// its embedded status.
  virtual Result<Message> Call(const Message& request) = 0;

  /// Starts a call without waiting for its reply. The default executes
  /// eagerly via Call and buffers the outcome for Await.
  virtual CallId Submit(const Message& request);

  /// Blocks until the reply for `id` is available and returns it. Each
  /// ticket can be awaited exactly once; awaiting an unknown ticket is an
  /// INVALID_ARGUMENT.
  virtual Result<Message> Await(CallId id);

  /// Submitted calls whose replies have not been awaited yet.
  virtual size_t pending_calls() const { return buffered_.size(); }

  /// Executes many logical calls, returning per-op outcomes aligned with
  /// `requests`. The default loops Call sequentially; a RetryingChannel
  /// overrides this to pack the ops into pipelined batch envelopes with
  /// per-op retry (see net/retry.h).
  virtual std::vector<Result<Message>> MultiCall(
      const std::vector<Message>& requests);

  /// Discards any transport state that could deliver a stale reply — a TCP
  /// channel drops and re-establishes its connection, a fault/chaos
  /// decorator flushes its simulated in-flight queue. Retry layers call
  /// this before re-sending after an ambiguous failure. No-op by default
  /// (an in-process call cannot leave residue). Pipelined transports fail
  /// any still-pending submissions.
  virtual void Reset() {}

  /// Caps how long one exchange may block at the transport (ms); 0 lifts
  /// the cap. Retry layers set this to the caller's *remaining* overall
  /// deadline before each attempt, so the last attempt cannot overshoot
  /// the budget the way a fixed per-attempt timeout can. No-op by default
  /// (in-process calls do not block on IO); decorators forward it inward.
  virtual void SetIoDeadlineMs(double /*ms*/) {}

  virtual const ChannelStats& stats() const = 0;
  virtual void ResetStats() = 0;

 protected:
  /// Buffered results for the default (synchronous) Submit/Await pair.
  std::map<CallId, Result<Message>> buffered_;
  CallId next_call_id_ = 1;
};

/// In-process channel: dispatches directly to a `MessageHandler`, counting
/// rounds and framed bytes, optionally keeping a full transcript and
/// simulating link latency.
class InProcessChannel : public Channel {
 public:
  struct Options {
    /// Keep a copy of every exchange (memory-heavy; for security analyses
    /// and tests, not for large benches).
    bool record_transcript = false;
    /// Simulated round-trip time added per Call to the virtual clock.
    double rtt_ms = 0.0;
    /// Simulated link bandwidth (0 = infinite) for the virtual clock.
    double bandwidth_bytes_per_sec = 0.0;
  };

  /// `handler` must outlive the channel.
  explicit InProcessChannel(MessageHandler* handler)
      : InProcessChannel(handler, Options()) {}
  InProcessChannel(MessageHandler* handler, Options options);

  Result<Message> Call(const Message& request) override;

  const ChannelStats& stats() const override { return stats_; }
  /// Mutable access for owners that reset or adjust counters between bench
  /// phases (e.g. core::SseSystem::stats()).
  ChannelStats& mutable_stats() { return stats_; }
  void ResetStats() override {
    stats_.Clear();
    virtual_time_ms_ = 0.0;
  }

  /// Accumulated simulated network time (rounds * rtt + bytes / bandwidth).
  double virtual_time_ms() const { return virtual_time_ms_; }

  const std::vector<Exchange>& transcript() const { return transcript_; }
  void ClearTranscript() { transcript_.clear(); }

 private:
  MessageHandler* handler_;
  Options options_;
  ChannelStats stats_;
  double virtual_time_ms_ = 0.0;
  std::vector<Exchange> transcript_;
};

}  // namespace sse::net

#endif  // SSE_NET_CHANNEL_H_
