#include "sse/core/durable_server.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_server.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/net/retry.h"
#include "sse/storage/faulty_env.h"
#include "sse/storage/snapshot.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

TEST(DurableServerTest, Scheme1SurvivesRestartViaWalReplay) {
  TempDir dir;
  DeterministicRandom rng(1);
  const SchemeOptions options = FastTestConfig().scheme;

  // Session 1: store documents, no checkpoint, "crash".
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "alpha", {"kw"}),
                                    Document::Make(1, "beta", {"kw"})}));
    EXPECT_GT((*durable)->wal_records(), 0u);
  }

  // Session 2: recover purely from the WAL and search.
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    EXPECT_EQ(inner.document_count(), 2u);
    net::InProcessChannel channel(durable->get());
    DeterministicRandom rng2(2);
    auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng2);
    SSE_ASSERT_OK_RESULT(client);
    auto outcome = (*client)->Search("kw");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  }
}

TEST(DurableServerTest, CheckpointTruncatesWalAndRestores) {
  TempDir dir;
  DeterministicRandom rng(3);
  const SchemeOptions options = FastTestConfig().scheme;

  {
    Scheme2Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client = Scheme2Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k1"})}));
    SSE_ASSERT_OK((*durable)->Checkpoint());
    EXPECT_EQ((*durable)->wal_records(), 0u);
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"k1"})}));
    EXPECT_EQ((*durable)->wal_records(), 1u);  // only post-checkpoint ops
  }

  // Recovery = snapshot + 1 replayed record.
  {
    Scheme2Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    EXPECT_EQ(inner.document_count(), 2u);
    EXPECT_EQ(inner.unique_keywords(), 1u);
  }
}

TEST(DurableServerTest, SearchesAreNotJournaled) {
  TempDir dir;
  DeterministicRandom rng(4);
  const SchemeOptions options = FastTestConfig().scheme;
  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  net::InProcessChannel channel(durable->get());
  auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"kw"})}));
  const uint64_t after_store = (*durable)->wal_records();
  SSE_ASSERT_OK_RESULT((*client)->Search("kw"));
  SSE_ASSERT_OK_RESULT((*client)->Search("kw"));
  EXPECT_EQ((*durable)->wal_records(), after_store);
}

TEST(DurableServerTest, RejectedMutationDoesNotPoisonRecovery) {
  // Regression: a malformed mutating request must be rejected WITHOUT
  // being journaled — otherwise replaying it makes recovery fail forever.
  TempDir dir;
  DeterministicRandom rng(21);
  const SchemeOptions options = FastTestConfig().scheme;
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client =
        Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
    // Garbage with a mutating type: rejected, and must not hit the WAL.
    const uint64_t wal_before = (*durable)->wal_records();
    auto reply =
        channel.Call(net::Message{kMsgS1UpdateRequest, Bytes{0xff, 0xee}});
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ((*durable)->wal_records(), wal_before);
  }
  // Recovery succeeds and serves the good data.
  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  EXPECT_EQ(inner.document_count(), 1u);
}

TEST(DurableServerTest, CorruptedWalDetectedOnRecovery) {
  TempDir dir;
  DeterministicRandom rng(7);
  const SchemeOptions options = FastTestConfig().scheme;
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client =
        Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"k"})}));
  }
  // Flip a byte inside the FIRST journaled record's payload (16-byte
  // segment header + 16-byte record header put it at offset 32).
  const std::string wal_path = dir.path() + "/wal.000001.log";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 36, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 36, SEEK_SET);
  std::fputc(c ^ 0x55, f);
  std::fclose(f);

  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  EXPECT_FALSE(durable.ok());
  EXPECT_EQ(durable.status().code(), StatusCode::kCorruption);
}

TEST(DurableServerTest, TornWalTailRecoversPrefix) {
  TempDir dir;
  DeterministicRandom rng(8);
  const SchemeOptions options = FastTestConfig().scheme;
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client =
        Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"k"})}));
  }
  // Simulate a crash mid-append: chop bytes off the log tail.
  const std::string wal_path = dir.path() + "/wal.000001.log";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 7), 0);
  std::fclose(f);

  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  // The first update survived; the torn second one is gone.
  EXPECT_EQ(inner.document_count(), 1u);
}

TEST(DurableServerTest, TornTailRetryAppliesOnceAndSurvivorsDedup) {
  // Crash tears the WAL mid-way through Scheme 1 update #2. After replay
  // the reply cache and the index must agree: a client retry of the TORN
  // update (never durable, so never acked) executes exactly once, while a
  // retry of the SURVIVING update is served from the recovered cache
  // instead of re-toggling its XOR delta.
  TempDir dir;
  DeterministicRandom rng(9);
  const SchemeOptions options = FastTestConfig().scheme;
  std::vector<net::Message> updates;  // stamped requests, as a client retries
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel::Options record;
    record.record_transcript = true;
    net::InProcessChannel channel(durable->get(), record);
    net::RetryingChannel retry(&channel, net::RetryOptions{}, &rng);
    auto client = Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"k"})}));
    for (const net::Exchange& ex : channel.transcript()) {
      if (ex.request.type == kMsgS1UpdateRequest) updates.push_back(ex.request);
    }
  }
  ASSERT_EQ(updates.size(), 2u);
  ASSERT_TRUE(updates[0].has_session);

  // Tear into the tail record (update #2) as a mid-append crash would.
  const std::string wal_path = dir.path() + "/wal.000001.log";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 7), 0);
  std::fclose(f);

  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  EXPECT_EQ(inner.document_count(), 1u);  // update #2 was torn away
  net::InProcessChannel channel(durable->get());

  // Retry of the surviving update: deduped, not re-applied.
  auto cached = channel.Call(updates[0]);
  SSE_ASSERT_OK_RESULT(cached);
  EXPECT_EQ(inner.document_count(), 1u);
  ASSERT_NE((*durable)->reply_cache(), nullptr);
  EXPECT_GE((*durable)->reply_cache()->hits(), 1u);

  // Retry of the torn update: executes exactly once...
  SSE_ASSERT_OK_RESULT(channel.Call(updates[1]));
  EXPECT_EQ(inner.document_count(), 2u);
  // ...and a second retry of it is now deduped too.
  SSE_ASSERT_OK_RESULT(channel.Call(updates[1]));
  EXPECT_EQ(inner.document_count(), 2u);

  // The index agrees with what an honest client believes it stored.
  DeterministicRandom rng2(10);
  auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng2);
  SSE_ASSERT_OK_RESULT(client);
  auto outcome = (*client)->Search("k");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
}

TEST(DurableServerTest, FallsBackToOlderSnapshotGeneration) {
  TempDir dir;
  DeterministicRandom rng(11);
  const SchemeOptions options = FastTestConfig().scheme;
  {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    auto client =
        Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
    SSE_ASSERT_OK((*durable)->Checkpoint());  // generation 1
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"k"})}));
    SSE_ASSERT_OK((*durable)->Checkpoint());  // generation 2
    SSE_ASSERT_OK((*client)->Store({Document::Make(2, "c", {"k"})}));  // WAL
  }
  // Damage the newest generation's payload. Recovery must fall back to
  // generation 1 and catch up from the WAL, which checkpointing retains
  // back to the OLDER generation's cut for exactly this reason.
  storage::SnapshotSet snapshots(dir.path());
  std::FILE* f = std::fopen(snapshots.PathFor(2).c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 30, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 30, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  Scheme1Server inner(options);
  auto durable = DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  EXPECT_EQ(inner.document_count(), 3u);
  net::InProcessChannel channel(durable->get());
  DeterministicRandom rng2(12);
  auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng2);
  SSE_ASSERT_OK_RESULT(client);
  auto outcome = (*client)->Search("k");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(DurableServerTest, FailedFsyncDegradesToReadOnly) {
  storage::FaultyEnv env;
  DeterministicRandom rng(13);
  const SchemeOptions options = FastTestConfig().scheme;
  DurableServer::Options dopts;
  dopts.env = &env;
  Scheme1Server inner(options);
  auto durable = DurableServer::Open("/vault", &inner, dopts);
  SSE_ASSERT_OK_RESULT(durable);
  net::InProcessChannel channel(durable->get());
  auto client = Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"k"})}));
  EXPECT_FALSE((*durable)->degraded());

  // The next mutation appends (op `ops()`) then fsyncs (op `ops()+1`):
  // fail the fsync. fsyncgate rule: the sync is never retried.
  env.FailAt(env.ops() + 1, storage::FaultyEnv::FaultKind::kSyncFail);
  EXPECT_FALSE((*client)->Store({Document::Make(1, "b", {"k"})}).ok());
  EXPECT_TRUE((*durable)->degraded());
  EXPECT_FALSE((*durable)->degraded_cause().ok());

  // Mutations are now refused up front with UNAVAILABLE...
  auto refused = (*client)->Store({Document::Make(2, "c", {"k"})});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*durable)->Checkpoint().code(), StatusCode::kUnavailable);

  // ...while searches keep serving (read-only, possibly ahead of disk:
  // the failed store WAS applied in memory before its journal sync).
  auto outcome = (*client)->Search("k");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_FALSE(outcome->ids.empty());
  EXPECT_EQ(outcome->ids.front(), 0u);

  // Restart against the surviving image: every acked write is there. The
  // unacked one may or may not be, depending on how much of the unsynced
  // WAL tail the simulated page cache wrote back — both are correct.
  env.Restart();
  Scheme1Server inner2(options);
  auto reopened = DurableServer::Open("/vault", &inner2, dopts);
  SSE_ASSERT_OK_RESULT(reopened);
  EXPECT_GE(inner2.document_count(), 1u);
  net::InProcessChannel channel2(reopened->get());
  DeterministicRandom rng2(14);
  auto client2 =
      Scheme1Client::Create(TestMasterKey(), options, &channel2, &rng2);
  SSE_ASSERT_OK_RESULT(client2);
  auto recovered = (*client2)->Search("k");
  SSE_ASSERT_OK_RESULT(recovered);
  ASSERT_FALSE(recovered->ids.empty());
  EXPECT_EQ(recovered->ids.front(), 0u);
}

TEST(DurableServerTest, NullInnerRejected) {
  TempDir dir;
  EXPECT_FALSE(DurableServer::Open(dir.path(), nullptr).ok());
}

TEST(DurableServerTest, UnwritableDirectoryFails) {
  Scheme1Server inner(FastTestConfig().scheme);
  EXPECT_FALSE(DurableServer::Open("/nonexistent/path/here", &inner).ok());
}

}  // namespace
}  // namespace sse::core
