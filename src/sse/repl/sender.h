#ifndef SSE_REPL_SENDER_H_
#define SSE_REPL_SENDER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/net/tcp.h"
#include "sse/obs/histogram.h"
#include "sse/obs/metrics_registry.h"
#include "sse/repl/messages.h"
#include "sse/storage/env.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::repl {

/// Primary-side replication pump: plugs into DurableServer as its
/// WalShipper and streams every journaled record to a set of followers
/// over the ordinary frame protocol (kMsgReplAppend / kMsgReplAck).
///
/// One shipping thread per follower. Each thread keeps its own
/// TcpChannel, learns the follower's durable cursor from acks (an empty
/// append doubles as the health probe / cursor query), and serves records
/// from a bounded in-memory tail buffer. A follower whose cursor has
/// fallen off the buffer is caught up from the primary's on-disk WAL
/// segments; one that has fallen behind the compaction horizon gets the
/// newest checkpoint via kMsgReplSnapshot and resumes from its cut.
///
/// Ack modes:
///  * kAsync — OnAppend enqueues and returns; replication trails the
///    primary's fsync by whatever the network allows.
///  * kWaitOne — after its local fsync the primary blocks (bounded by
///    `ack_timeout_ms`) until at least one follower has acked the record
///    durable. On timeout the write is acked to the client anyway and
///    `sse_repl_ack_timeouts_total` is bumped: a dead follower set
///    degrades to async rather than wedging the primary.
///
/// An ack carrying an epoch above the sender's own means a follower was
/// promoted while we were still alive (we are a deposed primary): the
/// sender fences itself — stops shipping — and exposes `fenced()` so the
/// owning node can step down.
class ReplSender : public core::WalShipper {
 public:
  enum class AckMode { kAsync, kWaitOne };

  struct Endpoint {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };

  struct Options {
    AckMode ack_mode = AckMode::kAsync;
    /// Bound on the kWaitOne block after local fsync.
    uint64_t ack_timeout_ms = 2000;
    /// Idle heartbeat: an empty append per follower at this cadence.
    uint64_t probe_interval_ms = 500;
    uint64_t connect_timeout_ms = 1000;
    uint64_t io_timeout_ms = 5000;
    /// Records per ReplAppend frame while catching up or draining.
    size_t max_records_per_append = 256;
    /// In-memory tail of recent records; followers behind it fall back to
    /// reading the primary's WAL segments from disk.
    size_t live_buffer_records = 4096;
    uint64_t initial_backoff_ms = 50;
    uint64_t max_backoff_ms = 2000;
    /// For disk catch-up reads of the primary's own WAL directory.
    storage::Env* env = storage::Env::Default();
    uint64_t wal_segment_bytes = 8ull << 20;
  };

  /// `dir` is the primary's DurableServer directory (read-only here: disk
  /// catch-up replays its segments, snapshot ship reads its checkpoints).
  ReplSender(std::string dir, std::vector<Endpoint> followers, uint64_t epoch);
  ReplSender(std::string dir, std::vector<Endpoint> followers, uint64_t epoch,
             Options options);
  ~ReplSender() override;

  ReplSender(const ReplSender&) = delete;
  ReplSender& operator=(const ReplSender&) = delete;

  /// Spawns the shipping threads. `next_seq` is the primary WAL's
  /// next-append sequence at the time of the call (records below it are
  /// on disk, not in the live buffer). Call once, after DurableServer
  /// recovery and before serving traffic.
  void Start(uint64_t next_seq);

  /// Stops and joins all shipping threads. Safe to call twice; the
  /// destructor calls it.
  void Stop();

  // --- core::WalShipper ---
  /// Called by DurableServer under its WAL mutex: enqueue only.
  void OnAppend(uint64_t wal_seq, BytesView record) override;
  /// Called after the primary's local fsync, outside the WAL mutex.
  void WaitReplicated(uint64_t wal_seq) override;

  struct FollowerStatus {
    std::string endpoint;  // "host:port"
    bool connected = false;
    uint64_t next_seq = 1;  // durable cursor learned from its last ack
  };
  std::vector<FollowerStatus> followers() const;

  /// Highest sequence known durable on at least one follower.
  uint64_t max_acked_seq() const;
  /// Highest sequence appended to the primary's log (0 = none yet).
  uint64_t log_end() const;
  uint64_t ack_timeouts() const;
  uint64_t snapshots_shipped() const;
  /// True once an ack reported an epoch above ours: a follower was
  /// promoted and this (former) primary must stop accepting mutations.
  bool fenced() const;
  uint64_t epoch() const { return epoch_; }

 private:
  struct Follower {
    Endpoint endpoint;
    std::thread thread;
    // Guarded by mutex_:
    bool connected = false;
    uint64_t next_seq = 1;
  };

  void FollowerLoop(Follower* f);
  /// Sends `msg`, times it, decodes the ReplAck and folds its cursor /
  /// epoch into `f` (may set fenced_). Transport or decode failure means
  /// the caller should drop the channel and redial.
  Result<ReplAck> Exchange(net::TcpChannel* channel, Follower* f,
                           const net::Message& msg);
  void ApplyAckLocked(Follower* f, const ReplAck& ack);
  /// Collects up to max_records_per_append records starting at `from`
  /// from the primary's on-disk segments. Sets `*need_snapshot` when
  /// compaction has removed `from` (the oldest segment starts above it).
  Status CollectFromDisk(uint64_t from, std::vector<Bytes>* records,
                         bool* need_snapshot);
  /// Ships the newest on-disk checkpoint; on an accepting ack the
  /// follower resumes from its cut.
  Status ShipSnapshot(net::TcpChannel* channel, Follower* f);
  bool SleepBackoff(uint64_t* backoff_ms);

  const std::string dir_;
  const uint64_t epoch_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // new records or stop
  std::condition_variable ack_cv_;   // max_acked_ advanced or stop
  std::deque<std::pair<uint64_t, Bytes>> buffer_;  // contiguous live tail
  uint64_t log_end_ = 0;
  uint64_t max_acked_ = 0;
  uint64_t ack_timeouts_ = 0;
  uint64_t snapshots_shipped_ = 0;
  bool fenced_ = false;
  bool started_ = false;
  bool stop_ = false;

  std::vector<std::unique_ptr<Follower>> followers_;
  obs::LatencyHistogram ship_hist_;
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace sse::repl

#endif  // SSE_REPL_SENDER_H_
