#include "sse/util/serde.h"

namespace sse {

void BufferWriter::PutU8(uint8_t v) { buf_.push_back(v); }

void BufferWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void BufferWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BufferWriter::PutRaw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufferWriter::PutBytes(BytesView data) {
  PutVarint(data.size());
  PutRaw(data);
}

void BufferWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), reinterpret_cast<const uint8_t*>(s.data()),
              reinterpret_cast<const uint8_t*>(s.data()) + s.size());
}

Status BufferReader::Need(size_t n) const {
  if (remaining() < n) {
    return Status::InvalidArgument("truncated input: need " + std::to_string(n) +
                                   " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> BufferReader::GetU8() {
  SSE_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> BufferReader::GetU16() {
  SSE_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BufferReader::GetU32() {
  SSE_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BufferReader::GetU64() {
  SSE_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<uint64_t> BufferReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    SSE_RETURN_IF_ERROR(Need(1));
    const uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7f) > 1) {
      return Status::Corruption("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint too long");
  }
}

Result<Bytes> BufferReader::GetRaw(size_t n) {
  SSE_RETURN_IF_ERROR(Need(n));
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> BufferReader::GetBytes(size_t max_len) {
  uint64_t len = 0;
  SSE_ASSIGN_OR_RETURN(len, GetVarint());
  if (len > max_len) {
    return Status::Corruption("length prefix " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  if (len > remaining()) {
    return Status::InvalidArgument("length prefix exceeds remaining input");
  }
  return GetRaw(static_cast<size_t>(len));
}

Result<std::string> BufferReader::GetString(size_t max_len) {
  Bytes raw;
  SSE_ASSIGN_OR_RETURN(raw, GetBytes(max_len));
  return BytesToString(raw);
}

Result<bool> BufferReader::GetBool() {
  uint8_t v = 0;
  SSE_ASSIGN_OR_RETURN(v, GetU8());
  if (v > 1) return Status::Corruption("bool byte not 0/1");
  return v == 1;
}

Status BufferReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message: " +
                                   std::to_string(remaining()));
  }
  return Status::OK();
}

}  // namespace sse
