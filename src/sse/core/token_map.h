#ifndef SSE_CORE_TOKEN_MAP_H_
#define SSE_CORE_TOKEN_MAP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "sse/index/btree.h"
#include "sse/util/bytes.h"

namespace sse::core {

/// Server-side container mapping search tokens `f_{k_w}(w)` to searchable
/// representations. Default backend is the B+-tree (the paper's `O(log u)`
/// story); a hash backend exists for the index ablation bench.
template <typename V>
class TokenMap {
 public:
  explicit TokenMap(bool use_hash = false, size_t btree_order = 64)
      : use_hash_(use_hash), tree_(btree_order) {}

  TokenMap(const TokenMap&) = delete;
  TokenMap& operator=(const TokenMap&) = delete;
  TokenMap(TokenMap&&) noexcept = default;
  TokenMap& operator=(TokenMap&&) noexcept = default;

  size_t size() const { return use_hash_ ? hash_.size() : tree_.size(); }

  /// Inserts or replaces. Returns true if the token was new.
  bool Put(BytesView token, V value) {
    if (use_hash_) {
      auto [it, inserted] =
          hash_.insert_or_assign(BytesToString(token), std::move(value));
      (void)it;
      return inserted;
    }
    return tree_.Put(token, std::move(value));
  }

  const V* Get(BytesView token) const {
    if (use_hash_) {
      auto it = hash_.find(BytesToString(token));
      return it == hash_.end() ? nullptr : &it->second;
    }
    return tree_.Get(token);
  }

  V* GetMutable(BytesView token) {
    if (use_hash_) {
      auto it = hash_.find(BytesToString(token));
      return it == hash_.end() ? nullptr : &it->second;
    }
    return tree_.GetMutable(token);
  }

  bool Contains(BytesView token) const { return Get(token) != nullptr; }

  bool Erase(BytesView token) {
    if (use_hash_) return hash_.erase(BytesToString(token)) > 0;
    return tree_.Erase(token);
  }

  void Clear() {
    hash_.clear();
    tree_.Clear();
  }

  /// Visits every (token, value); order is the token order for the tree
  /// backend, unspecified for the hash backend.
  void ForEach(const std::function<bool(const Bytes&, const V&)>& fn) const {
    if (use_hash_) {
      for (const auto& [k, v] : hash_) {
        if (!fn(StringToBytes(k), v)) return;
      }
      return;
    }
    tree_.ForEach(fn);
  }

  void ForEachMutable(const std::function<bool(const Bytes&, V&)>& fn) {
    if (use_hash_) {
      for (auto& [k, v] : hash_) {
        if (!fn(StringToBytes(k), v)) return;
      }
      return;
    }
    tree_.ForEachMutable(fn);
  }

  /// Lookup-comparison counter (tree backend only; 0 for hash).
  uint64_t comparisons() const { return use_hash_ ? 0 : tree_.comparisons(); }
  void ResetStats() { tree_.ResetStats(); }

  bool uses_hash_backend() const { return use_hash_; }

 private:
  bool use_hash_;
  index::BTreeMap<V> tree_;
  std::unordered_map<std::string, V> hash_;
};

}  // namespace sse::core

#endif  // SSE_CORE_TOKEN_MAP_H_
