#include "sse/util/crc32.h"

#include <array>

namespace sse {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t seed, BytesView data) {
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(BytesView data) { return Crc32cExtend(0, data); }

}  // namespace sse
