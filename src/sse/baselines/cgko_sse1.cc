#include "sse/baselines/cgko_sse1.h"

#include <algorithm>

#include "sse/crypto/hkdf.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/util/serde.h"

namespace sse::baselines {

namespace {

constexpr uint32_t kEndOfList = 0xffffffffu;
constexpr size_t kNodeKeySize = 32;

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected " + net::MessageTypeName(want) +
                                 ", got " + net::MessageTypeName(msg.type));
  }
  return Status::OK();
}

/// Plaintext of one list node: doc id ‖ next key ‖ next addr.
Bytes EncodeNode(uint64_t doc_id, const Bytes& next_key, uint32_t next_addr) {
  BufferWriter w;
  w.PutU64(doc_id);
  w.PutRaw(next_key);
  w.PutU32(next_addr);
  return w.TakeData();
}

struct Node {
  uint64_t doc_id = 0;
  Bytes next_key;
  uint32_t next_addr = kEndOfList;
};

Result<Node> DecodeNode(BytesView plain) {
  BufferReader r(plain);
  Node node;
  SSE_ASSIGN_OR_RETURN(node.doc_id, r.GetU64());
  SSE_ASSIGN_OR_RETURN(node.next_key, r.GetRaw(kNodeKeySize));
  SSE_ASSIGN_OR_RETURN(node.next_addr, r.GetU32());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return node;
}

/// head entry plaintext: addr(4) ‖ key(32); masked by XOR with PRF(k2, w).
constexpr size_t kHeadSize = 4 + kNodeKeySize;

}  // namespace

// ---------------------------------------------------------------- server --

CgkoServer::CgkoServer(bool use_hash_index, size_t btree_order)
    : table_(use_hash_index, btree_order) {}

Result<net::Message> CgkoServer::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgCgkoBuild:
      return HandleBuild(request);
    case kMsgCgkoSearch:
      return HandleSearch(request);
    default:
      return Status::ProtocolError("cgko server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> CgkoServer::HandleBuild(const net::Message& msg) {
  BufferReader r(msg.payload);
  std::vector<Bytes> array;
  SSE_ASSIGN_OR_RETURN(array, core::GetBytesList(r));
  uint64_t table_count = 0;
  SSE_ASSIGN_OR_RETURN(table_count, r.GetVarint());
  if (table_count > r.remaining()) {
    return Status::Corruption("table count exceeds payload");
  }
  core::TokenMap<Bytes> table(table_.uses_hash_backend());
  for (uint64_t i = 0; i < table_count; ++i) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, r.GetBytes());
    Bytes masked;
    SSE_ASSIGN_OR_RETURN(masked, r.GetBytes());
    if (masked.size() != kHeadSize) {
      return Status::ProtocolError("table entry has wrong size");
    }
    table.Put(token, std::move(masked));
  }
  std::vector<core::WireDocument> new_docs;
  SSE_ASSIGN_OR_RETURN(new_docs, core::GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());

  index_bytes_uploaded_ += msg.payload.size();
  array_ = std::move(array);
  table_ = std::move(table);
  for (const core::WireDocument& doc : new_docs) {
    SSE_RETURN_IF_ERROR(docs_.Put(doc.id, doc.ciphertext));
  }
  BufferWriter w;
  w.PutVarint(array_.size());
  return net::Message{kMsgCgkoBuildAck, w.TakeData()};
}

Result<net::Message> CgkoServer::HandleSearch(const net::Message& msg) {
  BufferReader r(msg.payload);
  Bytes token;
  SSE_ASSIGN_OR_RETURN(token, r.GetBytes());
  Bytes mask;
  SSE_ASSIGN_OR_RETURN(mask, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (mask.size() != kHeadSize) {
    return Status::ProtocolError("trapdoor mask has wrong size");
  }

  std::vector<uint64_t> ids;
  const Bytes* masked_head = table_.Get(token);
  if (masked_head != nullptr) {
    // Unmask the list head.
    Bytes head = *masked_head;
    SSE_RETURN_IF_ERROR(XorInPlace(head, mask));
    BufferReader hr(head);
    uint32_t addr = 0;
    SSE_ASSIGN_OR_RETURN(addr, hr.GetU32());
    Bytes key;
    SSE_ASSIGN_OR_RETURN(key, hr.GetRaw(kNodeKeySize));

    // Walk the encrypted linked list.
    while (addr != kEndOfList) {
      if (addr >= array_.size()) {
        return Status::Corruption("list address out of range");
      }
      Result<crypto::StreamCipher> cipher = crypto::StreamCipher::Create(key);
      if (!cipher.ok()) return cipher.status();
      Bytes plain;
      SSE_ASSIGN_OR_RETURN(plain, cipher->Decrypt(array_[addr]));
      Node node;
      SSE_ASSIGN_OR_RETURN(node, DecodeNode(plain));
      ids.push_back(node.doc_id);
      ++nodes_walked_;
      addr = node.next_addr;
      key = node.next_key;
    }
  }
  std::sort(ids.begin(), ids.end());

  BufferWriter w;
  core::PutIdList(w, ids);
  std::vector<core::WireDocument> wire_docs;
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(ids));
  for (const auto& [id, blob] : fetched) {
    wire_docs.push_back(core::WireDocument{id, blob});
  }
  core::PutWireDocuments(w, wire_docs);
  return net::Message{kMsgCgkoSearchResult, w.TakeData()};
}

Result<Bytes> CgkoServer::SerializeState() const {
  BufferWriter w;
  core::PutBytesList(w, array_);
  w.PutVarint(table_.size());
  table_.ForEach([&](const Bytes& token, const Bytes& masked) {
    w.PutBytes(token);
    w.PutBytes(masked);
    return true;
  });
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status CgkoServer::RestoreState(BytesView data) {
  BufferReader r(data);
  std::vector<Bytes> array;
  SSE_ASSIGN_OR_RETURN(array, core::GetBytesList(r));
  uint64_t table_count = 0;
  SSE_ASSIGN_OR_RETURN(table_count, r.GetVarint());
  core::TokenMap<Bytes> table(table_.uses_hash_backend());
  for (uint64_t i = 0; i < table_count; ++i) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, r.GetBytes());
    Bytes masked;
    SSE_ASSIGN_OR_RETURN(masked, r.GetBytes());
    table.Put(token, std::move(masked));
  }
  storage::DocumentStore docs;
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  array_ = std::move(array);
  table_ = std::move(table);
  docs_ = std::move(docs);
  return Status::OK();
}

bool CgkoServer::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgCgkoBuild;
}

// ---------------------------------------------------------------- client --

CgkoClient::CgkoClient(crypto::Prf prf, crypto::Aead aead,
                       net::Channel* channel, RandomSource* rng)
    : prf_(std::move(prf)),
      aead_(std::move(aead)),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<CgkoClient>> CgkoClient::Create(
    const crypto::MasterKey& key, net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(key.keyword_key());
  if (!prf.ok()) return prf.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<CgkoClient>(new CgkoClient(
      std::move(prf).value(), std::move(aead).value(), channel, rng));
}

Result<Bytes> CgkoClient::TableToken(std::string_view keyword) const {
  return prf_.EvalLabeled("cgko.t1", StringToBytes(keyword));
}

Result<Bytes> CgkoClient::TableMask(std::string_view keyword) const {
  Bytes full;
  SSE_ASSIGN_OR_RETURN(full,
                       prf_.EvalLabeled("cgko.t2", StringToBytes(keyword)));
  // Need kHeadSize = 36 bytes of mask; extend via a second labeled call.
  Bytes more;
  SSE_ASSIGN_OR_RETURN(more,
                       prf_.EvalLabeled("cgko.t2x", StringToBytes(keyword)));
  full.insert(full.end(), more.begin(), more.begin() + (kHeadSize - 32));
  return full;
}

Status CgkoClient::Store(const std::vector<core::Document>& docs) {
  for (const core::Document& doc : docs) {
    if (used_ids_.count(doc.id) > 0) {
      return Status::AlreadyExists("document id " + std::to_string(doc.id) +
                                   " was already stored");
    }
  }
  // Update the client-side plaintext inverted index.
  for (const core::Document& doc : docs) {
    for (const std::string& kw : doc.keywords) {
      postings_[kw].insert(doc.id);
    }
  }

  // Full rebuild: count nodes, place them at random positions in A.
  size_t total_nodes = 0;
  for (const auto& [kw, ids] : postings_) total_nodes += ids.size();

  std::vector<uint32_t> slots(total_nodes);
  for (size_t i = 0; i < total_nodes; ++i) slots[i] = static_cast<uint32_t>(i);
  // Fisher-Yates with the injected RNG (the random permutation π of SSE-1).
  for (size_t i = total_nodes; i > 1; --i) {
    uint64_t j = 0;
    SSE_ASSIGN_OR_RETURN(j, rng_->UniformU64(i));
    std::swap(slots[i - 1], slots[j]);
  }

  std::vector<Bytes> array(total_nodes);
  BufferWriter table_w;
  table_w.PutVarint(postings_.size());
  size_t slot_cursor = 0;
  for (const auto& [kw, ids] : postings_) {
    // Build this keyword's chain back-to-front.
    std::vector<uint64_t> id_vec(ids.begin(), ids.end());
    Bytes next_key(kNodeKeySize, 0);
    uint32_t next_addr = kEndOfList;
    std::vector<uint32_t> my_slots(id_vec.size());
    for (size_t j = 0; j < id_vec.size(); ++j) {
      my_slots[j] = slots[slot_cursor++];
    }
    for (size_t j = id_vec.size(); j-- > 0;) {
      Bytes node_key;
      SSE_ASSIGN_OR_RETURN(node_key, rng_->Generate(kNodeKeySize));
      Bytes plain = EncodeNode(id_vec[j], next_key, next_addr);
      Result<crypto::StreamCipher> cipher =
          crypto::StreamCipher::Create(node_key);
      if (!cipher.ok()) return cipher.status();
      Bytes ct;
      SSE_ASSIGN_OR_RETURN(ct, cipher->Encrypt(plain, *rng_));
      array[my_slots[j]] = std::move(ct);
      next_key = node_key;
      next_addr = my_slots[j];
    }
    // Table entry: (head addr ‖ head key) ⊕ PRF(k2, w). After the loop
    // next_addr/next_key point at the first node of the chain.
    BufferWriter head_w;
    head_w.PutU32(next_addr);
    head_w.PutRaw(next_key);
    Bytes head = head_w.TakeData();
    Bytes mask;
    SSE_ASSIGN_OR_RETURN(mask, TableMask(kw));
    SSE_RETURN_IF_ERROR(XorInPlace(head, mask));
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, TableToken(kw));
    table_w.PutBytes(token);
    table_w.PutBytes(head);
  }

  BufferWriter w;
  core::PutBytesList(w, array);
  w.PutRaw(table_w.data());
  std::vector<core::WireDocument> wire_docs;
  wire_docs.reserve(docs.size());
  for (const core::Document& doc : docs) {
    core::WireDocument wire;
    wire.id = doc.id;
    SSE_ASSIGN_OR_RETURN(
        wire.ciphertext,
        aead_.Seal(doc.content, core::EncodeDocId(doc.id), *rng_));
    wire_docs.push_back(std::move(wire));
  }
  core::PutWireDocuments(w, wire_docs);

  net::Message ack;
  SSE_ASSIGN_OR_RETURN(
      ack, channel_->Call(net::Message{kMsgCgkoBuild, w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(ack, kMsgCgkoBuildAck));
  for (const core::Document& doc : docs) used_ids_.insert(doc.id);
  return Status::OK();
}

Result<core::SearchOutcome> CgkoClient::Search(std::string_view keyword) {
  Bytes token;
  SSE_ASSIGN_OR_RETURN(token, TableToken(keyword));
  Bytes mask;
  SSE_ASSIGN_OR_RETURN(mask, TableMask(keyword));
  BufferWriter w;
  w.PutBytes(token);
  w.PutBytes(mask);
  net::Message reply;
  SSE_ASSIGN_OR_RETURN(
      reply, channel_->Call(net::Message{kMsgCgkoSearch, w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(reply, kMsgCgkoSearchResult));
  BufferReader r(reply.payload);
  core::SearchOutcome outcome;
  SSE_ASSIGN_OR_RETURN(outcome.ids, core::GetIdList(r));
  std::vector<core::WireDocument> wire_docs;
  SSE_ASSIGN_OR_RETURN(wire_docs, core::GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  for (const core::WireDocument& wire : wire_docs) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(
        plain, aead_.Open(wire.ciphertext, core::EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

}  // namespace sse::baselines
