// Client protocol-state persistence: a Scheme 2 client that restores its
// serialized state behaves exactly like the original across sessions; a
// rolled-back or corrupted state is rejected or detected.

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TestMasterKey;

TEST(ClientStateTest, Scheme2RoundTripAcrossSessions) {
  const SchemeOptions options = FastTestConfig().scheme;
  Scheme2Server server(options);
  net::InProcessChannel channel(&server);
  DeterministicRandom rng(1);

  Bytes saved_state;
  {
    auto client = Scheme2Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"kw"})}));
    SSE_ASSERT_OK_RESULT((*client)->Search("kw"));
    SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"kw"})}));
    saved_state = (*client)->SerializeState();
    EXPECT_EQ((*client)->counter(), 2u);
  }

  // New session: restore and keep operating seamlessly.
  auto client = Scheme2Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->RestoreState(saved_state));
  EXPECT_EQ((*client)->counter(), 2u);

  auto outcome = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  // Duplicate-id protection restored too.
  EXPECT_EQ((*client)->Store({Document::Make(0, "dup", {"kw"})}).code(),
            StatusCode::kAlreadyExists);
  // And new stores still work.
  SSE_ASSERT_OK((*client)->Store({Document::Make(2, "c", {"kw"})}));
  auto grown = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(grown);
  EXPECT_EQ(grown->ids.size(), 3u);
}

TEST(ClientStateTest, Scheme2RejectsCorruptState) {
  const SchemeOptions options = FastTestConfig().scheme;
  Scheme2Server server(options);
  net::InProcessChannel channel(&server);
  DeterministicRandom rng(2);
  auto client = Scheme2Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);

  EXPECT_FALSE((*client)->RestoreState(Bytes{}).ok());
  EXPECT_FALSE((*client)->RestoreState(Bytes{1, 2, 3}).ok());

  // Counter beyond the chain length is inconsistent with the options.
  Bytes state = (*client)->SerializeState();
  // ctr is the first u32 (little endian); set it past chain_length.
  state[0] = 0xff;
  state[1] = 0xff;
  state[2] = 0xff;
  state[3] = 0x7f;
  EXPECT_FALSE((*client)->RestoreState(state).ok());

  // Trailing garbage rejected.
  Bytes padded = (*client)->SerializeState();
  padded.push_back(0);
  EXPECT_FALSE((*client)->RestoreState(padded).ok());
}

TEST(ClientStateTest, Scheme2RollbackSemanticsPinned) {
  // Documents the danger the API comment warns about: restoring an OLD
  // state rolls the counter back, so (a) the rolled-back client's
  // trapdoors can no longer open segments written at higher counters —
  // that is forward security doing its job against a stale trapdoor — and
  // (b) a new update reuses an already-released chain element. Searches
  // recover as soon as an up-to-date state is restored; the server's
  // trapdoor-restart walk keeps the out-of-order segment reachable.
  const SchemeOptions options = FastTestConfig().scheme;
  Scheme2Server server(options);
  net::InProcessChannel channel(&server);
  DeterministicRandom rng(3);
  auto client = Scheme2Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);

  SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"kw"})}));
  Bytes old_state = (*client)->SerializeState();  // ctr = 1
  SSE_ASSERT_OK_RESULT((*client)->Search("kw"));
  SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"kw"})}));
  Bytes new_state = (*client)->SerializeState();  // ctr = 2

  // Roll back and store again: the update reuses chain element 1.
  SSE_ASSERT_OK((*client)->RestoreState(old_state));
  SSE_ASSERT_OK((*client)->Store({Document::Make(2, "c", {"kw"})}));

  // The rolled-back trapdoor (ctr=1) cannot open the ctr=2 segment.
  auto stale = (*client)->Search("kw");
  EXPECT_FALSE(stale.ok());

  // With the current state restored, everything is reachable again —
  // including the out-of-order segment written after the rollback.
  SSE_ASSERT_OK((*client)->RestoreState(new_state));
  auto outcome = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(ClientStateTest, Scheme1RoundTrip) {
  DeterministicRandom rng(4);
  auto sys = sse::testing::MakeTestSystem(SystemKind::kScheme1, &rng);
  auto* client = static_cast<Scheme1Client*>(sys.client.get());
  SSE_ASSERT_OK(client->Store({Document::Make(0, "a", {"kw"}),
                               Document::Make(3, "b", {"kw"})}));
  Bytes state = client->SerializeState();

  DeterministicRandom rng2(5);
  auto client2 = Scheme1Client::Create(TestMasterKey(),
                                       FastTestConfig().scheme,
                                       sys.channel.get(), &rng2);
  SSE_ASSERT_OK_RESULT(client2);
  SSE_ASSERT_OK((*client2)->RestoreState(state));
  EXPECT_EQ((*client2)->Store({Document::Make(3, "dup", {"kw"})}).code(),
            StatusCode::kAlreadyExists);
  SSE_ASSERT_OK((*client2)->Store({Document::Make(4, "c", {"kw"})}));
  auto outcome = (*client2)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 3, 4}));
}

TEST(ClientStateTest, Scheme1RejectsGarbage) {
  DeterministicRandom rng(6);
  auto sys = sse::testing::MakeTestSystem(SystemKind::kScheme1, &rng);
  auto* client = static_cast<Scheme1Client*>(sys.client.get());
  EXPECT_FALSE(client->RestoreState(Bytes{0xff, 0xff}).ok());
}

}  // namespace
}  // namespace sse::core
