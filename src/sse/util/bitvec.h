#ifndef SSE_UTIL_BITVEC_H_
#define SSE_UTIL_BITVEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse {

/// Dynamically sized bit vector with fast XOR / popcount / set-bit
/// enumeration.
///
/// Scheme 1 represents the posting set `I(w)` as a bitmap over document
/// identifiers: bit `i` is set iff document `i` matches keyword `w`
/// (paper §5.2). The mask `G(r)` and the update delta `U(w)` use the same
/// representation, so the whole update protocol reduces to BitVec XORs.
class BitVec {
 public:
  BitVec() = default;
  /// Creates a vector of `num_bits` zero bits.
  explicit BitVec(size_t num_bits);

  /// Builds a bitmap with the given bit positions set. Positions >=
  /// num_bits are rejected.
  static Result<BitVec> FromPositions(size_t num_bits,
                                      const std::vector<uint64_t>& positions);

  /// Interprets `bytes` as a bitmap of exactly `num_bits` bits
  /// (little-endian bit order within each byte). Rejects size mismatch and
  /// nonzero padding bits.
  static Result<BitVec> FromBytes(size_t num_bits, BytesView bytes);

  size_t size() const { return num_bits_; }
  size_t size_bytes() const { return words_.size() * 8; }
  bool empty() const { return num_bits_ == 0; }

  /// Precondition: `i < size()`.
  bool Get(size_t i) const;
  void Set(size_t i, bool value = true);
  void Flip(size_t i);
  void Clear();

  /// Grows (or shrinks) to `num_bits`; new bits are zero. Shrinking clears
  /// any bits beyond the new size.
  void Resize(size_t num_bits);

  /// Number of set bits.
  size_t Count() const;

  /// Indices of all set bits, ascending.
  std::vector<uint64_t> Ones() const;

  /// XORs `other` into this vector. Requires equal sizes.
  Status XorWith(const BitVec& other);

  /// Serializes to ceil(num_bits/8) bytes, little-endian bit order.
  Bytes ToBytes() const;

  /// "0"/"1" string, index 0 first; for diagnostics and small tests.
  std::string ToString() const;

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

 private:
  void ClearPadding();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sse

#endif  // SSE_UTIL_BITVEC_H_
