#include "sse/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "sse/util/logging.h"

namespace sse::obs {

namespace {

thread_local TraceContext tl_current;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 over a process-wide counter: unique, well-mixed 64-bit ids
/// without coordination (ids need to be unique, not unpredictable).
uint64_t NextId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;  // 0 means "no trace"
}

uint64_t CurrentTraceIdForLogs() { return tl_current.trace_id; }

}  // namespace

// ------------------------------------------------------------- collector --

/// One span slot, written only by the owning thread, read by any. A
/// per-slot seqlock makes torn reads detectable: seq is odd while a write
/// is in progress, and a reader accepts a slot only when it observes the
/// same even seq before and after reading the fields. Every field is an
/// atomic accessed relaxed inside the seq bracket, so the protocol is both
/// correct and clean under ThreadSanitizer.
struct SpanCollector::Slot {
  std::atomic<uint64_t> seq{0};  // 0 = never written
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint64_t> name{0};  // uintptr of a string literal
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> end_ns{0};
  std::atomic<uint64_t> tid{0};
  std::atomic<uint64_t> note_count{0};
  std::array<std::atomic<uint64_t>, SpanRecord::kMaxNotes> note_keys{};
  std::array<std::atomic<uint64_t>, SpanRecord::kMaxNotes> note_values{};
};

struct SpanCollector::ThreadBuffer {
  std::array<Slot, kRingSlots> slots;
  uint64_t head = 0;  // owner-thread only
  uint32_t tid = 0;
};

SpanCollector::SpanCollector() {
  // Let SSE_LOG lines carry the active trace id (see util/logging.h).
  SetLogTraceIdProvider(&CurrentTraceIdForLogs);
}

SpanCollector& SpanCollector::Global() {
  // Leaked on purpose: recording threads may outlive any static
  // destruction order we could promise.
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

SpanCollector::ThreadBuffer& SpanCollector::LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void SpanCollector::Record(const SpanRecord& record) {
  ThreadBuffer& buffer = LocalBuffer();
  Slot& slot = buffer.slots[buffer.head % kRingSlots];
  buffer.head += 1;
  recorded_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: in progress
  slot.epoch.store(epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  slot.name.store(reinterpret_cast<uintptr_t>(record.name),
                  std::memory_order_relaxed);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.span_id.store(record.span_id, std::memory_order_relaxed);
  slot.parent_id.store(record.parent_id, std::memory_order_relaxed);
  slot.start_ns.store(record.start_ns, std::memory_order_relaxed);
  slot.end_ns.store(record.end_ns, std::memory_order_relaxed);
  slot.tid.store(buffer.tid, std::memory_order_relaxed);
  const uint64_t notes =
      std::min<uint64_t>(record.note_count, SpanRecord::kMaxNotes);
  slot.note_count.store(notes, std::memory_order_relaxed);
  for (uint64_t i = 0; i < notes; ++i) {
    slot.note_keys[i].store(reinterpret_cast<uintptr_t>(record.note_keys[i]),
                            std::memory_order_relaxed);
    slot.note_values[i].store(record.note_values[i],
                              std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
}

void SpanCollector::CollectInto(std::vector<SpanRecord>* out,
                                uint64_t trace_filter, bool filter) const {
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    for (const Slot& slot : buffer->slots) {
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
      SpanRecord r;
      if (slot.epoch.load(std::memory_order_relaxed) != epoch) continue;
      r.name = reinterpret_cast<const char*>(
          static_cast<uintptr_t>(slot.name.load(std::memory_order_relaxed)));
      r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      r.span_id = slot.span_id.load(std::memory_order_relaxed);
      r.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      r.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      r.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      r.tid = static_cast<uint32_t>(
          slot.tid.load(std::memory_order_relaxed));
      r.note_count = static_cast<uint32_t>(std::min<uint64_t>(
          slot.note_count.load(std::memory_order_relaxed),
          SpanRecord::kMaxNotes));
      for (uint32_t i = 0; i < r.note_count; ++i) {
        r.note_keys[i] = reinterpret_cast<const char*>(static_cast<uintptr_t>(
            slot.note_keys[i].load(std::memory_order_relaxed)));
        r.note_values[i] = slot.note_values[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (s1 != s2) continue;  // overwritten while reading: drop
      if (filter && r.trace_id != trace_filter) continue;
      out->push_back(r);
    }
  }
  std::sort(out->begin(), out->end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
}

std::vector<SpanRecord> SpanCollector::Collect() const {
  std::vector<SpanRecord> out;
  CollectInto(&out, 0, /*filter=*/false);
  return out;
}

std::vector<SpanRecord> SpanCollector::CollectTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  CollectInto(&out, trace_id, /*filter=*/true);
  return out;
}

void SpanCollector::Clear() {
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::string SpanCollector::ToChromeTraceJson(
    const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"sse\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"trace_id\":\"%" PRIx64
        "\",\"span_id\":\"%" PRIx64 "\",\"parent_id\":\"%" PRIx64 "\"",
        span.name, static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(span.duration_ns()) / 1e3, span.tid, span.trace_id,
        span.span_id, span.parent_id);
    out += buf;
    for (uint32_t i = 0; i < span.note_count; ++i) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", span.note_keys[i],
                    static_cast<unsigned long long>(span.note_values[i]));
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

// ----------------------------------------------------------------- spans --

TraceContext CurrentContext() { return tl_current; }

TraceContext StartTrace() {
  TraceContext ctx;
  ctx.trace_id = NextId();
  ctx.span_id = 0;  // children of the root context parent to 0
  ctx.sampled = true;
  return ctx;
}

ScopedSpan::ScopedSpan(const char* name, const TraceContext& parent) {
  if (!parent.active()) return;
  active_ = true;
  context_.trace_id = parent.trace_id;
  context_.span_id = NextId();
  context_.sampled = true;
  record_.name = name;
  record_.trace_id = parent.trace_id;
  record_.span_id = context_.span_id;
  record_.parent_id = parent.span_id;
  record_.start_ns = NowNanos();
  saved_ = tl_current;
  tl_current = context_;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  tl_current = saved_;
  record_.end_ns = NowNanos();
  SpanCollector::Global().Record(record_);
}

void ScopedSpan::Annotate(const char* key, uint64_t value) {
  if (!active_ || record_.note_count >= SpanRecord::kMaxNotes) return;
  record_.note_keys[record_.note_count] = key;
  record_.note_values[record_.note_count] = value;
  record_.note_count += 1;
}

// ------------------------------------------------------------------ wire --

void StampMessage(net::Message* msg, const TraceContext& ctx) {
  if (!ctx.active()) return;
  msg->has_trace = true;
  msg->trace_id = ctx.trace_id;
  msg->trace_parent = ctx.span_id;
  msg->trace_flags = net::kTraceFlagSampled;
}

TraceContext ContextOf(const net::Message& msg) {
  TraceContext ctx;
  if (!msg.has_trace) return ctx;
  ctx.trace_id = msg.trace_id;
  ctx.span_id = msg.trace_parent;
  ctx.sampled = (msg.trace_flags & net::kTraceFlagSampled) != 0;
  return ctx;
}

TraceContext ParentFor(const net::Message& msg) {
  const TraceContext current = CurrentContext();
  if (current.active()) return current;
  return ContextOf(msg);
}

}  // namespace sse::obs
