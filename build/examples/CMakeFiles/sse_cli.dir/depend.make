# Empty dependencies file for sse_cli.
# This may be replaced when dependencies are built.
