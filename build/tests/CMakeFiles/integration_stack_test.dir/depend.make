# Empty dependencies file for integration_stack_test.
# This may be replaced when dependencies are built.
