#ifndef SSE_STORAGE_DOCUMENT_STORE_H_
#define SSE_STORAGE_DOCUMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sse/storage/log_store.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Server-side store for the encrypted data items: the tuples
/// `(E_{k_m}(M_i), i)` of the paper's DataStorage sub-algorithm. The server
/// only ever sees opaque ciphertext; this container indexes it by the
/// client-chosen document identifier.
///
/// Two backends share the interface: the default in-memory map (blobs live
/// in RAM and in WAL/snapshot files via DurableServer), and a log-backed
/// mode (`OpenLogBacked`) that appends blobs to an on-disk LogStore so the
/// ciphertext corpus can exceed memory.
class DocumentStore {
 public:
  /// In-memory store.
  DocumentStore() = default;

  DocumentStore(DocumentStore&&) noexcept = default;
  DocumentStore& operator=(DocumentStore&&) noexcept = default;

  /// Opens a store whose blobs live in the LogStore at `path` (created if
  /// absent; existing contents become visible immediately).
  static Result<DocumentStore> OpenLogBacked(const std::string& path);

  /// Stores `ciphertext` under `id`, replacing any previous version.
  Status Put(uint64_t id, Bytes ciphertext);

  /// Returns the ciphertext for `id` or NOT_FOUND.
  Result<Bytes> Get(uint64_t id) const;

  bool Contains(uint64_t id) const;
  Result<bool> Erase(uint64_t id);

  /// Fetches all present ids from `ids`, skipping absent ones (a search
  /// may return ids whose documents were deleted later; the protocol
  /// tolerates that). Output pairs are (id, ciphertext), input order.
  Result<std::vector<std::pair<uint64_t, Bytes>>> GetMany(
      const std::vector<uint64_t>& ids) const;

  size_t size() const;
  uint64_t total_bytes() const { return total_bytes_; }
  bool log_backed() const { return log_ != nullptr; }

  /// Visits every (id, ciphertext) in ascending id order. The callback
  /// returning false stops the scan.
  Status ForEach(const std::function<bool(uint64_t, const Bytes&)>& fn) const;

  /// In-memory: drops everything. Log-backed: tombstones every key.
  Status Clear();

  /// Log-backed only: reclaims superseded blobs; no-op in memory.
  Status Compact();

 private:
  // Memory backend.
  std::map<uint64_t, Bytes> docs_;
  // Log backend (docs_ unused when set); id index mirrors live keys so
  // size/Contains/ForEach order stay O(live) without touching the disk.
  std::unique_ptr<LogStore> log_;
  std::map<uint64_t, uint64_t> log_sizes_;  // id -> blob size
  uint64_t total_bytes_ = 0;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_DOCUMENT_STORE_H_
