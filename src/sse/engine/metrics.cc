#include "sse/engine/metrics.h"

#include <cstdio>

namespace sse::engine {

uint64_t MetricsSnapshot::total_reads() const {
  uint64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.reads;
  return n;
}

uint64_t MetricsSnapshot::total_writes() const {
  uint64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.writes;
  return n;
}

std::string MetricsSnapshot::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "engine: %llu requests (%llu scatter, %llu broadcast), "
                "%llu doc puts, %llu doc fetches\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(scatters),
                static_cast<unsigned long long>(broadcasts),
                static_cast<unsigned long long>(doc_puts),
                static_cast<unsigned long long>(doc_fetches));
  out += buf;
  if (degraded || storage_faults > 0) {
    std::snprintf(buf, sizeof(buf),
                  "storage: DEGRADED (read-only), %llu fault(s)\n",
                  static_cast<unsigned long long>(storage_faults));
    out += buf;
  }
  if (batches > 0) {
    std::snprintf(buf, sizeof(buf),
                  "batches: %llu envelopes carrying %llu ops\n",
                  static_cast<unsigned long long>(batches),
                  static_cast<unsigned long long>(batch_ops));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "handle latency: mean %.1f us, p50 %.1f us, p99 %.1f us\n",
                handle_latency.mean_micros(),
                handle_latency.quantile_micros(0.5),
                handle_latency.quantile_micros(0.99));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "lock wait:      mean %.1f us, p50 %.1f us, p99 %.1f us\n",
                lock_wait.mean_micros(), lock_wait.quantile_micros(0.5),
                lock_wait.quantile_micros(0.99));
  out += buf;
  for (size_t i = 0; i < shards.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "shard %2zu: %llu reads, %llu writes, %llu errors\n", i,
                  static_cast<unsigned long long>(shards[i].reads),
                  static_cast<unsigned long long>(shards[i].writes),
                  static_cast<unsigned long long>(shards[i].errors));
    out += buf;
  }
  return out;
}

MetricsSnapshot EngineMetrics::Snap() const {
  MetricsSnapshot s;
  s.shards.reserve(shards_.size());
  for (const ShardCounters& c : shards_) {
    ShardSnapshot ss;
    ss.reads = c.reads.load(std::memory_order_relaxed);
    ss.writes = c.writes.load(std::memory_order_relaxed);
    ss.errors = c.errors.load(std::memory_order_relaxed);
    s.shards.push_back(ss);
  }
  s.handle_latency = handle_latency_.Snap();
  s.lock_wait = lock_wait_.Snap();
  s.requests = requests_.load(std::memory_order_relaxed);
  s.scatters = scatters_.load(std::memory_order_relaxed);
  s.broadcasts = broadcasts_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_ops = batch_ops_.load(std::memory_order_relaxed);
  s.doc_puts = doc_puts_.load(std::memory_order_relaxed);
  s.doc_fetches = doc_fetches_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_acquire);
  s.storage_faults = storage_faults_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sse::engine
