# Empty compiler generated dependencies file for leakage_demo.
# This may be replaced when dependencies are built.
