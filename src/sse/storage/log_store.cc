#include "sse/storage/log_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "sse/util/crc32.h"
#include "sse/util/serde.h"

namespace sse::storage {

namespace {

constexpr size_t kHeaderSize = 8;
constexpr uint32_t kMaxRecordSize = 1u << 30;
constexpr uint8_t kFlagPut = 0;
constexpr uint8_t kFlagTombstone = 1;

void PutU32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

Status WriteAllAt(int fd, const uint8_t* data, size_t len, uint64_t offset) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::pwrite(fd, data + written, len - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Bytes> ReadExactAt(int fd, size_t len, uint64_t offset) {
  Bytes out(len);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, out.data() + got, len - got,
                              static_cast<off_t>(offset + got));
    if (n == 0) return Status::IoError("unexpected EOF in data file");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread failed: " +
                             std::string(std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return out;
}

struct ParsedPayload {
  uint8_t flags = 0;
  Bytes key;
  Bytes value;
};

Result<ParsedPayload> ParsePayload(BytesView payload) {
  BufferReader r(payload);
  ParsedPayload out;
  SSE_ASSIGN_OR_RETURN(out.flags, r.GetU8());
  if (out.flags > kFlagTombstone) {
    return Status::Corruption("unknown record flags");
  }
  SSE_ASSIGN_OR_RETURN(out.key, r.GetBytes());
  if (out.flags == kFlagPut) {
    SSE_ASSIGN_OR_RETURN(out.value, r.GetBytes());
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

Bytes BuildPayload(uint8_t flags, BytesView key, BytesView value) {
  BufferWriter w;
  w.PutU8(flags);
  w.PutBytes(key);
  if (flags == kFlagPut) w.PutBytes(value);
  return w.TakeData();
}

}  // namespace

LogStore::~LogStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<LogStore>> LogStore::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  auto store = std::unique_ptr<LogStore>(new LogStore(path, fd));
  SSE_RETURN_IF_ERROR(store->ScanAndIndex());
  return store;
}

Status LogStore::ScanAndIndex() {
  const off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return Status::IoError("lseek failed");
  uint64_t offset = 0;
  while (offset + kHeaderSize <= static_cast<uint64_t>(file_size)) {
    Bytes header;
    SSE_ASSIGN_OR_RETURN(header, ReadExactAt(fd_, kHeaderSize, offset));
    const uint32_t len = GetU32(header.data());
    const uint32_t crc = GetU32(header.data() + 4);
    if (len > kMaxRecordSize) {
      return Status::Corruption("record length implausible at offset " +
                                std::to_string(offset));
    }
    if (offset + kHeaderSize + len > static_cast<uint64_t>(file_size)) {
      break;  // torn tail
    }
    Bytes payload;
    SSE_ASSIGN_OR_RETURN(payload, ReadExactAt(fd_, len, offset + kHeaderSize));
    if (Crc32c(payload) != crc) {
      // Torn if final record, corruption otherwise.
      if (offset + kHeaderSize + len == static_cast<uint64_t>(file_size)) {
        break;
      }
      return Status::Corruption("record CRC mismatch at offset " +
                                std::to_string(offset));
    }
    ParsedPayload parsed;
    SSE_ASSIGN_OR_RETURN(parsed, ParsePayload(payload));
    const uint32_t record_len = kHeaderSize + len;
    const std::string key = BytesToString(parsed.key);
    auto it = index_.find(key);
    if (it != index_.end()) garbage_bytes_ += it->second.record_len;
    if (parsed.flags == kFlagPut) {
      index_[key] = Slot{offset, record_len};
    } else {
      if (it != index_.end()) index_.erase(it);
      garbage_bytes_ += record_len;  // the tombstone itself is garbage
    }
    offset += record_len;
  }
  tail_offset_ = offset;
  // Drop any torn tail so new appends are well-framed.
  if (offset < static_cast<uint64_t>(file_size)) {
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      return Status::IoError("cannot truncate torn tail");
    }
  }
  return Status::OK();
}

Status LogStore::AppendRecord(uint8_t flags, BytesView key, BytesView value,
                              Slot* out_slot) {
  const Bytes payload = BuildPayload(flags, key, value);
  if (payload.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds 1 GiB");
  }
  Bytes record(kHeaderSize + payload.size());
  PutU32(record.data(), static_cast<uint32_t>(payload.size()));
  PutU32(record.data() + 4, Crc32c(payload));
  std::copy(payload.begin(), payload.end(), record.begin() + kHeaderSize);
  SSE_RETURN_IF_ERROR(WriteAllAt(fd_, record.data(), record.size(),
                                 tail_offset_));
  if (out_slot != nullptr) {
    *out_slot = Slot{tail_offset_, static_cast<uint32_t>(record.size())};
  }
  tail_offset_ += record.size();
  return Status::OK();
}

Status LogStore::Put(BytesView key, BytesView value) {
  Slot slot;
  SSE_RETURN_IF_ERROR(AppendRecord(kFlagPut, key, value, &slot));
  const std::string k = BytesToString(key);
  auto it = index_.find(k);
  if (it != index_.end()) garbage_bytes_ += it->second.record_len;
  index_[k] = slot;
  return Status::OK();
}

Result<Bytes> LogStore::ReadValueAt(const Slot& slot,
                                    BytesView expect_key) const {
  Bytes record;
  SSE_ASSIGN_OR_RETURN(record, ReadExactAt(fd_, slot.record_len, slot.offset));
  const uint32_t len = GetU32(record.data());
  const uint32_t crc = GetU32(record.data() + 4);
  if (len + kHeaderSize != slot.record_len) {
    return Status::Corruption("record length changed under us");
  }
  BytesView payload(record.data() + kHeaderSize, len);
  if (Crc32c(payload) != crc) {
    return Status::Corruption("record CRC mismatch on read");
  }
  ParsedPayload parsed;
  SSE_ASSIGN_OR_RETURN(parsed, ParsePayload(payload));
  if (parsed.flags != kFlagPut || !ConstantTimeEqual(parsed.key, expect_key)) {
    return Status::Corruption("index points at a foreign record");
  }
  return parsed.value;
}

Result<Bytes> LogStore::Get(BytesView key) const {
  auto it = index_.find(BytesToString(key));
  if (it == index_.end()) {
    return Status::NotFound("key not present");
  }
  return ReadValueAt(it->second, key);
}

bool LogStore::Contains(BytesView key) const {
  return index_.count(BytesToString(key)) > 0;
}

Result<bool> LogStore::Delete(BytesView key) {
  const std::string k = BytesToString(key);
  auto it = index_.find(k);
  if (it == index_.end()) return false;
  Slot slot;
  SSE_RETURN_IF_ERROR(AppendRecord(kFlagTombstone, key, {}, &slot));
  garbage_bytes_ += it->second.record_len + slot.record_len;
  index_.erase(it);
  return true;
}

Status LogStore::Sync() {
  if (::fsync(fd_) != 0) return Status::IoError("fsync failed");
  return Status::OK();
}

Status LogStore::ForEach(
    const std::function<Status(BytesView, BytesView)>& fn) const {
  for (const auto& [key, slot] : index_) {
    Bytes key_bytes = StringToBytes(key);
    Bytes value;
    SSE_ASSIGN_OR_RETURN(value, ReadValueAt(slot, key_bytes));
    SSE_RETURN_IF_ERROR(fn(key_bytes, value));
  }
  return Status::OK();
}

Status LogStore::Compact() {
  const std::string tmp_path = path_ + ".compact";
  const int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return Status::IoError("cannot create " + tmp_path);
  }
  // Stream live records into the new file and build the new index.
  std::unordered_map<std::string, Slot> new_index;
  uint64_t new_tail = 0;
  Status status = Status::OK();
  for (const auto& [key, slot] : index_) {
    Bytes key_bytes = StringToBytes(key);
    Result<Bytes> value = ReadValueAt(slot, key_bytes);
    if (!value.ok()) {
      status = value.status();
      break;
    }
    const Bytes payload = BuildPayload(kFlagPut, key_bytes, *value);
    Bytes record(kHeaderSize + payload.size());
    PutU32(record.data(), static_cast<uint32_t>(payload.size()));
    PutU32(record.data() + 4, Crc32c(payload));
    std::copy(payload.begin(), payload.end(), record.begin() + kHeaderSize);
    status = WriteAllAt(tmp_fd, record.data(), record.size(), new_tail);
    if (!status.ok()) break;
    new_index[key] = Slot{new_tail, static_cast<uint32_t>(record.size())};
    new_tail += record.size();
  }
  if (status.ok() && ::fsync(tmp_fd) != 0) {
    status = Status::IoError("fsync of compacted file failed");
  }
  if (!status.ok()) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return Status::IoError("rename of compacted file failed");
  }
  ::close(fd_);
  fd_ = tmp_fd;
  index_ = std::move(new_index);
  tail_offset_ = new_tail;
  garbage_bytes_ = 0;
  return Status::OK();
}

}  // namespace sse::storage
