#ifndef SSE_NET_BATCH_H_
#define SSE_NET_BATCH_H_

#include <cstdint>
#include <vector>

#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::net {

/// Batch envelope: one wire frame carrying N logical sub-operations, each
/// with its own per-op sequence number drawn from the client's session seq
/// space. The envelope itself is session-stamped like any other message
/// (client_id + envelope seq + payload CRC), which gives the whole frame
/// integrity and lets the pipelined transport correlate the reply; the
/// *per-op* identity for exactly-once dedup is (envelope.client_id, op.seq).
///
/// A retry of a partially failed batch re-sends only the unsettled sub-ops
/// in a fresh envelope (new envelope seq, unchanged op seqs), so the
/// server's reply cache serves already-applied sub-ops from memory and
/// executes only the genuinely new ones — each sub-op is applied exactly
/// once even when the batch around it is torn by a crash or a lost reply.
struct BatchRequest {
  struct Op {
    /// Per-op sequence number; combined with the envelope's client_id this
    /// is the dedup key. Meaningful only when the envelope is stamped.
    uint64_t seq = 0;
    uint16_t type = 0;
    Bytes payload;
  };
  std::vector<Op> ops;

  Message ToMessage() const;
  static Result<BatchRequest> FromMessage(const Message& msg);
};

/// Per-op replies, aligned with the request's ops by index. A failed sub-op
/// is carried as a kMsgError entry (see MakeErrorMessage); the envelope
/// reply itself is OK whenever the server could process the batch at all.
struct BatchReply {
  struct Entry {
    uint16_t type = 0;
    Bytes payload;
  };
  std::vector<Entry> entries;

  Message ToMessage() const;
  static Result<BatchReply> FromMessage(const Message& msg);
};

}  // namespace sse::net

#endif  // SSE_NET_BATCH_H_
