#include "sse/net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sse/util/crc32.h"

namespace sse::net {

RetryingChannel::RetryingChannel(Channel* inner, RetryOptions options,
                                 RandomSource* rng)
    : inner_(inner), options_(options), rng_(rng) {
  client_id_ = options_.client_id;
  if (client_id_ == 0) {
    if (rng_ != nullptr) {
      Result<uint64_t> id = rng_->NextU64();
      if (id.ok()) client_id_ = *id;
    }
    if (client_id_ == 0) client_id_ = 0x5353452d636c6974;  // arbitrary nonzero
  }
}

double RetryingChannel::NowMs() const {
  if (clock_fn_) return clock_fn_();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RetryingChannel::SleepMs(double ms) {
  if (ms <= 0.0) return;
  if (sleep_fn_) {
    sleep_fn_(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double RetryingChannel::NextBackoff(double prev_ms) {
  // Decorrelated jitter: sleep = min(cap, uniform(base, 3 * prev)). The
  // first attempt passes prev == 0, drawing from [0, base].
  const double base = options_.initial_backoff_ms;
  double lo = prev_ms <= 0.0 ? 0.0 : base;
  double hi = prev_ms <= 0.0 ? base : 3.0 * prev_ms;
  if (hi < lo) hi = lo;
  double u = 0.5;
  if (rng_ != nullptr) {
    Result<uint64_t> raw = rng_->NextU64();
    if (raw.ok()) {
      u = static_cast<double>(*raw >> 11) * (1.0 / 9007199254740992.0);
    }
  }
  return std::min(options_.max_backoff_ms, lo + u * (hi - lo));
}

bool RetryingChannel::ShouldRetry(const Status& status) const {
  if (status.IsRetryable()) return true;
  return options_.retry_corrupt_replies &&
         status.code() == StatusCode::kCorruption;
}

Result<Message> RetryingChannel::Call(const Message& request) {
  retry_stats_.calls += 1;
  Message stamped = request;
  if (options_.stamp_sessions) {
    stamped.StampSession(client_id_, next_seq_++);
  }

  const double start_ms = NowMs();
  double backoff_ms = 0.0;
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // An ambiguous failure may have left a half-written request or a
      // buffered stale reply in the transport; flush before re-sending.
      inner_->Reset();
      retry_stats_.resets += 1;
      backoff_ms = NextBackoff(backoff_ms);
      SleepMs(backoff_ms);
      retry_stats_.retries += 1;
    }
    if (options_.call_deadline_ms > 0.0 &&
        NowMs() - start_ms >= options_.call_deadline_ms) {
      retry_stats_.deadline_exceeded += 1;
      return Status::DeadlineExceeded(
          "call deadline exceeded after " + std::to_string(attempt) +
          " attempt(s)" + (last.ok() ? "" : "; last: " + last.ToString()));
    }

    retry_stats_.attempts += 1;
    Result<Message> reply = inner_->Call(stamped);
    if (reply.ok()) {
      if (stamped.has_session && reply->has_session) {
        if (reply->client_id != client_id_ || reply->seq != stamped.seq) {
          // Stale reply from a duplicated/reordered stream: never hand it
          // to the protocol layer; flush and re-ask for ours.
          retry_stats_.stale_replies += 1;
          last = Status::Unavailable("stale reply (stream out of sync)");
          continue;
        }
        if (Crc32c(reply->payload) != reply->payload_crc) {
          retry_stats_.corrupt_replies += 1;
          last = Status::Corruption("reply payload fails its checksum");
          if (!options_.retry_corrupt_replies) return last;
          continue;
        }
      }
      return reply;
    }
    last = reply.status();
    if (!ShouldRetry(last)) return last;
  }
  retry_stats_.exhausted += 1;
  return Status(last.code(), "retries exhausted after " +
                                 std::to_string(options_.max_attempts) +
                                 " attempts; last: " + last.ToString());
}

}  // namespace sse::net
