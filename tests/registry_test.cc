#include "sse/core/registry.h"

#include <gtest/gtest.h>

#include "sse/core/scheme1_client.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TestMasterKey;

TEST(RegistryTest, NamesRoundTrip) {
  for (SystemKind kind : AllSystemKinds()) {
    auto parsed = SystemKindFromName(SystemKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(SystemKindFromName("no-such-system").ok());
  EXPECT_FALSE(SystemKindFromName("").ok());
}

TEST(RegistryTest, AllKindsEnumerated) {
  EXPECT_EQ(AllSystemKinds().size(), 6u);
  EXPECT_EQ(AllSchemes().size(), AllSystemKinds().size());
}

TEST(RegistryTest, DescriptorTableConsistent) {
  for (const SchemeDescriptor& desc : AllSchemes()) {
    EXPECT_EQ(FindScheme(desc.kind), &desc);
    EXPECT_EQ(FindScheme(desc.name), &desc);
    EXPECT_EQ(SystemKindName(desc.kind), desc.name);
    EXPECT_FALSE(desc.summary.empty()) << desc.name;
    EXPECT_NE(desc.make_server, nullptr) << desc.name;
    EXPECT_NE(desc.make_client, nullptr) << desc.name;
    // Engine capability and the adapter factory must agree.
    EXPECT_EQ(desc.traits.engine_capable, desc.make_adapter != nullptr)
        << desc.name;
  }
  EXPECT_EQ(FindScheme("no-such-scheme"), nullptr);
}

TEST(RegistryTest, CreateEverySystem) {
  DeterministicRandom rng(1);
  for (SystemKind kind : AllSystemKinds()) {
    auto sys = CreateSystem(kind, TestMasterKey(), FastTestConfig(), &rng);
    ASSERT_TRUE(sys.ok()) << SystemKindName(kind) << ": "
                          << sys.status().ToString();
    EXPECT_NE(sys->server, nullptr);
    EXPECT_NE(sys->channel, nullptr);
    EXPECT_NE(sys->client, nullptr);
    EXPECT_EQ(sys->client->name(), SystemKindName(kind));
  }
}

TEST(RegistryTest, NullRngRejected) {
  auto sys = CreateSystem(SystemKind::kScheme1, TestMasterKey(),
                          FastTestConfig(), nullptr);
  EXPECT_FALSE(sys.ok());
}

TEST(RegistryTest, HashIndexConfigHonored) {
  // With the hash backend, the paper schemes still function.
  DeterministicRandom rng(2);
  SystemConfig config = FastTestConfig();
  config.scheme.use_hash_index = true;
  for (SystemKind kind : {SystemKind::kScheme1, SystemKind::kScheme2}) {
    auto sys = CreateSystem(kind, TestMasterKey(), config, &rng);
    ASSERT_TRUE(sys.ok());
    SSE_ASSERT_OK(sys->client->Store({Document::Make(0, "a", {"kw"})}));
    auto outcome = sys->client->Search("kw");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  }
}

TEST(RegistryTest, InvalidSchemeOptionsSurface) {
  DeterministicRandom rng(3);
  SystemConfig config = FastTestConfig();
  config.scheme.chain_length = 0;  // invalid for scheme 2
  EXPECT_FALSE(
      CreateSystem(SystemKind::kScheme2, TestMasterKey(), config, &rng).ok());
}

TEST(RegistryTest, DistinctKeysDistinctTokens) {
  // Two clients with different master keys produce disjoint server state
  // for the same keyword — no cross-tenant token collisions.
  DeterministicRandom rng(4);
  auto sys = CreateSystem(SystemKind::kScheme1, TestMasterKey(),
                          FastTestConfig(), &rng);
  ASSERT_TRUE(sys.ok());
  SSE_ASSERT_OK(sys->client->Store({Document::Make(0, "a", {"kw"})}));

  // A second client with another key, pointed at the SAME server.
  DeterministicRandom rng2(5);
  DeterministicRandom key_rng(999);
  auto other_key = crypto::MasterKey::Generate(key_rng);
  ASSERT_TRUE(other_key.ok());
  auto client2 = Scheme1Client::Create(*other_key, FastTestConfig().scheme,
                                       sys->channel.get(), &rng2);
  ASSERT_TRUE(client2.ok());
  auto outcome = (*client2)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());  // token differs, nothing found
}

}  // namespace
}  // namespace sse::core
