// Experiment E-base — the prose claims of §1/§3: search in conventional
// schemes is linear in the database while this paper's schemes touch one
// tree entry; and SSE-1 searches optimally but pays a full index rebuild on
// every update.
//
// All five systems run the same workload; the table reports search latency
// vs corpus size (who is O(n), who is not) and per-update cost (who pays a
// rebuild).

#include <cstdio>

#include "bench_common.h"

namespace sse::bench {
namespace {

struct Measurement {
  double search_ms;
  double update_ms;
  uint64_t update_bytes;
};

Measurement Measure(core::SystemKind kind, size_t num_docs) {
  DeterministicRandom rng(31);
  core::SystemConfig config = BenchConfig(/*max_documents=*/num_docs * 2,
                                          /*chain_length=*/256);
  core::SseSystem sys = MustCreate(kind, config, &rng);

  auto docs = phr::GenerateDocuments(num_docs, /*vocabulary=*/256,
                                     /*keywords_per_doc=*/6, 0.9, 13,
                                     /*content_bytes=*/64);
  MustOk(sys.client->Store(docs), "store");

  // Search latency over a rare keyword (small result set isolates the
  // lookup cost from result transfer).
  const std::string rare = phr::SyntheticKeyword(200);
  MustValue(sys.client->Search(rare), "warm");
  const int probes = 16;
  Timer timer;
  for (int i = 0; i < probes; ++i) {
    MustValue(sys.client->Search(rare), "search");
  }
  Measurement m{};
  m.search_ms = timer.ElapsedMillis() / probes;

  // Single-document update cost.
  sys.channel->ResetStats();
  Timer update_timer;
  auto extra = phr::GenerateDocuments(1, 256, 6, 0.9, 47, 64,
                                      /*first_id=*/num_docs);
  MustOk(sys.client->Store(extra), "update");
  m.update_ms = update_timer.ElapsedMillis();
  m.update_bytes = sys.channel->stats().TotalBytes();
  return m;
}

void Run() {
  std::printf(
      "E-base: all systems, same workload. Expected shape: SWP and Goh\n"
      "search times grow ~linearly with n; scheme1/scheme2/cgko-sse1 stay\n"
      "flat. CGKO update bytes grow with the whole corpus (rebuild); the\n"
      "paper's schemes and the scan baselines update in O(document).\n\n");
  TablePrinter table({"system", "n_docs", "search_ms", "update_ms",
                      "update_bytes"});
  table.PrintHeader();
  for (core::SystemKind kind : core::AllSystemKinds()) {
    for (size_t n : {512u, 2048u, 8192u}) {
      Measurement m = Measure(kind, n);
      table.PrintRow({std::string(core::SystemKindName(kind)), FmtU(n),
                      Fmt("%.3f", m.search_ms), Fmt("%.3f", m.update_ms),
                      FmtU(m.update_bytes)});
    }
    table.PrintRule();
  }
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
