#include "sse/crypto/prf.h"

#include <openssl/hmac.h>

#include "sse/obs/metrics_registry.h"

namespace sse::crypto {

Result<Bytes> HmacSha256(BytesView key, BytesView data) {
  // One relaxed load when timing is off (the default) — the gate keeps
  // per-op instrumentation out of the search hot path's budget.
  obs::ScopedCryptoTimer timer(obs::CryptoTimers::Global().prf);
  Bytes out(kPrfOutputSize);
  unsigned int len = 0;
  if (HMAC(EVP_sha256(), key.data(), static_cast<int>(key.size()), data.data(),
           data.size(), out.data(), &len) == nullptr ||
      len != kPrfOutputSize) {
    return Status::CryptoError("HMAC-SHA256 failed");
  }
  return out;
}

Result<Prf> Prf::Create(BytesView key) {
  if (key.size() < 16) {
    return Status::InvalidArgument("PRF key must be at least 16 bytes");
  }
  return Prf(ToBytes(key));
}

Result<Bytes> Prf::Eval(BytesView input) const { return HmacSha256(key_, input); }

Result<Bytes> Prf::Eval(std::string_view input) const {
  return Eval(StringToBytes(input));
}

Result<Bytes> Prf::EvalLabeled(std::string_view label, BytesView input) const {
  Bytes msg = StringToBytes(label);
  msg.push_back(0x00);
  msg.insert(msg.end(), input.begin(), input.end());
  return HmacSha256(key_, msg);
}

}  // namespace sse::crypto
