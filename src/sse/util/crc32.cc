#include "sse/util/crc32.h"

#include <array>
#include <cstring>

namespace sse {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 lookup tables: table[0] is the classic bytewise table; each
// table[k] advances the CRC by k extra zero bytes, letting the hot loop
// fold 8 input bytes per iteration instead of 1.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (size_t k = 1; k < 8; ++k) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xff] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = BuildTables();
  return tables;
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, matching the rest of the codebase
}

uint32_t Crc32cSliced(uint32_t crc, const uint8_t* p, size_t n) {
  const SliceTables& t = Tables();
  while (n >= 8) {
    const uint32_t lo = crc ^ Load32(p);
    const uint32_t hi = Load32(p + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__clang__) || defined(__GNUC__))
#define SSE_CRC32_HW 1

// The dedicated CRC32 instruction computes exactly CRC-32C. The target
// attribute lets this compile without -msse4.2 globally; callers must
// check CpuHasCrc32() first.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32;
}

bool CpuHasCrc32() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif  // x86_64

}  // namespace

uint32_t Crc32cExtend(uint32_t seed, BytesView data) {
  const uint32_t crc = ~seed;
#if defined(SSE_CRC32_HW)
  if (CpuHasCrc32()) {
    return ~Crc32cHardware(crc, data.data(), data.size());
  }
#endif
  return ~Crc32cSliced(crc, data.data(), data.size());
}

uint32_t Crc32c(BytesView data) { return Crc32cExtend(0, data); }

}  // namespace sse
