#ifndef SSE_REPL_NODE_H_
#define SSE_REPL_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/persistable.h"
#include "sse/net/channel.h"
#include "sse/net/message.h"
#include "sse/repl/receiver.h"
#include "sse/repl/sender.h"
#include "sse/storage/env.h"

namespace sse::repl {

/// One replicated serving node: the role manager that fronts either a
/// DurableServer (primary — applies, journals, ships) or a ReplReceiver
/// (follower — applies shipped records, serves stale reads) behind a
/// single MessageHandler facade that plugs straight into TcpServer.
///
/// Responsibilities beyond dispatch:
///  * Role + fencing-epoch persistence in a `repl.role` marker file, so a
///    restarted node comes back in the role it last held.
///  * Promotion (kMsgReplPromote): tears down the receiver and replays
///    the shipped segments through the ordinary DurableServer recovery
///    path — a promoted follower IS a primary restarted from its own
///    disk — then bumps and persists the fencing epoch.
///  * Stats (kMsgStats): answers the admin RPC itself, appending
///    node-local `sse_repl_*` series (role, epoch, follower lag) to the
///    process-wide registry scrape. Run TcpServer with
///    `serve_stats=false` so these per-node lines are not merged when
///    several nodes share one process (as in tests).
///
/// A deposed primary (its sender fenced by a higher epoch in an ack)
/// refuses further mutations with a retryable "not primary".
class ReplNode : public net::MessageHandler {
 public:
  enum class Role { kPrimary, kFollower };

  using HandlerFactory = ReplReceiver::HandlerFactory;

  struct Options {
    /// Role when no `repl.role` marker exists yet (a restart keeps the
    /// persisted role regardless of this field).
    Role initial_role = Role::kFollower;
    /// Follower endpoints this node ships to while primary.
    std::vector<ReplSender::Endpoint> peers;
    /// Storage knobs shared by both roles (the `shipper` field is
    /// overwritten; wire replication through `peers` instead).
    core::DurableServer::Options durable;
    ReplSender::Options sender;
    /// Answer non-mutating requests from the follower's read view.
    /// Off = followers refuse everything with "not primary".
    bool serve_stale_reads = true;
    /// Checkpoint cadence for the follower's local log (see
    /// ReplReceiver::Options::checkpoint_every_records).
    uint64_t follower_checkpoint_every_records = 0;
  };

  /// Opens the node in `dir` (must exist), recovering role + epoch from
  /// the marker file when present.
  static Result<std::unique_ptr<ReplNode>> Open(const std::string& dir,
                                                HandlerFactory factory);
  static Result<std::unique_ptr<ReplNode>> Open(const std::string& dir,
                                                HandlerFactory factory,
                                                Options options);
  ~ReplNode() override;

  Result<net::Message> Handle(const net::Message& request) override;

  Role role() const;
  uint64_t epoch() const;
  uint64_t promotions() const;
  /// Primary only; null on a follower. Not owned by the caller.
  core::DurableServer* durable();
  const ReplSender* sender() const;
  const ReplReceiver* receiver() const;
  /// Checkpoints whichever side is active.
  Status Checkpoint();

 private:
  ReplNode(std::string dir, HandlerFactory factory, Options options)
      : dir_(std::move(dir)),
        factory_(std::move(factory)),
        options_(std::move(options)) {}

  Status StartPrimaryLocked();
  Status StartFollowerLocked();
  Status PersistRoleLocked() const;
  Status LoadRoleMarker();
  Result<net::Message> HandlePromote(const net::Message& request);
  Result<net::Message> HandleStats(const net::Message& request);
  std::string MarkerPath() const;

  const std::string dir_;
  const HandlerFactory factory_;
  const Options options_;

  mutable std::shared_mutex state_mutex_;
  Role role_ = Role::kFollower;
  uint64_t epoch_ = 0;
  uint64_t promotions_ = 0;
  // Edge trigger for the journal: a deposed primary refuses every
  // mutation, but only the first refusal is a state transition.
  std::atomic<bool> fenced_event_emitted_{false};
  // Primary side. `handler_` is the live inner state machine; it must
  // outlive `durable_`, and `sender_` must outlive `durable_` too (the
  // server calls into its shipper).
  std::unique_ptr<core::PersistableHandler> handler_;
  std::unique_ptr<ReplSender> sender_;
  std::unique_ptr<core::DurableServer> durable_;
  // Follower side.
  std::unique_ptr<ReplReceiver> receiver_;
};

}  // namespace sse::repl

#endif  // SSE_REPL_NODE_H_
