#include "sse/repl/failover_channel.h"

#include <algorithm>
#include <cstdlib>

#include "sse/obs/metrics_registry.h"
#include "sse/obs/stats_rpc.h"

namespace sse::repl {

namespace {

obs::MetricsRegistry::Counter* FailoverCounter() {
  static obs::MetricsRegistry::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_client_failovers_total",
          "times the client demoted its cached primary and re-probed");
  return counter;
}

}  // namespace

bool FindMetricValue(const std::string& prometheus_text,
                     const std::string& name, double* value) {
  size_t pos = 0;
  while ((pos = prometheus_text.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    const bool line_start = pos == 0 || prometheus_text[pos - 1] == '\n';
    if (line_start && after < prometheus_text.size() &&
        (prometheus_text[after] == ' ' || prometheus_text[after] == '\t')) {
      *value = std::strtod(prometheus_text.c_str() + after + 1, nullptr);
      return true;
    }
    pos = after;
  }
  return false;
}

FailoverChannel::FailoverChannel(std::vector<ReplSender::Endpoint> endpoints)
    : FailoverChannel(std::move(endpoints), Options()) {}

FailoverChannel::FailoverChannel(std::vector<ReplSender::Endpoint> endpoints,
                                 Options options)
    : options_(std::move(options)) {
  nodes_.reserve(endpoints.size());
  for (ReplSender::Endpoint& endpoint : endpoints) {
    Node node;
    node.endpoint = std::move(endpoint);
    nodes_.push_back(std::move(node));
  }
}

FailoverChannel::~FailoverChannel() = default;

net::TcpChannel* FailoverChannel::Ensure(Node* node) {
  if (node->channel != nullptr) return node->channel.get();
  if (node->backoff_ms != 0 &&
      std::chrono::steady_clock::now() < node->next_dial) {
    return nullptr;
  }
  Result<std::unique_ptr<net::TcpChannel>> connected = net::TcpChannel::Connect(
      node->endpoint.port, node->endpoint.host, options_.channel);
  if (!connected.ok()) {
    MarkDialFailure(node);
    return nullptr;
  }
  node->channel = std::move(connected).value();
  node->backoff_ms = 0;
  return node->channel.get();
}

void FailoverChannel::MarkDialFailure(Node* node) {
  node->backoff_ms = node->backoff_ms == 0
                         ? options_.backoff_initial_ms
                         : std::min(node->backoff_ms * 2, options_.backoff_max_ms);
  node->next_dial = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(node->backoff_ms);
}

int FailoverChannel::FindPrimary() {
  const net::Message probe = obs::StatsRequest{}.ToMessage();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    net::TcpChannel* channel = Ensure(&nodes_[i]);
    if (channel == nullptr) continue;
    Result<net::Message> reply = channel->Call(probe);
    if (!reply.ok()) {
      nodes_[i].channel.reset();
      MarkDialFailure(&nodes_[i]);
      continue;
    }
    Result<obs::StatsReply> stats = obs::StatsReply::FromMessage(*reply);
    if (!stats.ok()) continue;
    double is_primary = 0;
    if (FindMetricValue(stats->prometheus_text, "sse_repl_is_primary",
                        &is_primary) &&
        is_primary != 0) {
      primary_ = static_cast<int>(i);
      return primary_;
    }
  }
  return -1;
}

void FailoverChannel::DemotePrimary() {
  if (primary_ < 0) return;
  primary_ = -1;
  ++failovers_;
  FailoverCounter()->Add();
}

net::TcpChannel* FailoverChannel::Route(const net::Message& request,
                                        Status* why) {
  const bool mutating =
      options_.is_mutating ? options_.is_mutating(request) : true;
  if (!mutating && options_.read_from_followers && !nodes_.empty()) {
    // Stale-tolerant read: any reachable endpoint will do; spread them.
    for (size_t step = 0; step < nodes_.size(); ++step) {
      Node* node = &nodes_[(read_rr_ + step) % nodes_.size()];
      net::TcpChannel* channel = Ensure(node);
      if (channel != nullptr) {
        read_rr_ = (read_rr_ + step + 1) % nodes_.size();
        return channel;
      }
    }
    *why = Status::Unavailable("no endpoint reachable for read");
    return nullptr;
  }
  int index = primary_;
  if (index < 0) index = FindPrimary();
  if (index < 0) {
    *why = Status::Unavailable("no primary found among endpoints");
    return nullptr;
  }
  net::TcpChannel* channel = Ensure(&nodes_[index]);
  if (channel == nullptr) {
    DemotePrimary();
    *why = Status::Unavailable("cached primary unreachable");
    return nullptr;
  }
  return channel;
}

Result<net::Message> FailoverChannel::Call(const net::Message& request) {
  Status why = Status::OK();
  net::TcpChannel* channel = Route(request, &why);
  if (channel == nullptr) return why;
  const bool was_primary =
      primary_ >= 0 && channel == nodes_[primary_].channel.get();
  Result<net::Message> reply = channel->Call(request);
  if (!reply.ok() && was_primary) {
    // A dead transport or an explicit "not primary" both mean the role
    // cache is stale; anything non-retryable is the application's answer.
    if (reply.status().IsRetryable()) DemotePrimary();
  }
  return reply;
}

net::Channel::CallId FailoverChannel::Submit(const net::Message& request) {
  const CallId id = next_call_id_++;
  Status why = Status::OK();
  net::TcpChannel* channel = Route(request, &why);
  if (channel == nullptr) {
    // Routing failed now; Await() hands the failure back.
    buffered_.emplace(id, Result<net::Message>(why));
    return id;
  }
  size_t index = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].channel.get() == channel) index = i;
  }
  pending_.emplace(id, std::make_pair(index, channel->Submit(request)));
  return id;
}

Result<net::Message> FailoverChannel::Await(CallId id) {
  auto buffered = buffered_.find(id);
  if (buffered != buffered_.end()) {
    Result<net::Message> out = std::move(buffered->second);
    buffered_.erase(buffered);
    return out;
  }
  auto pending = pending_.find(id);
  if (pending == pending_.end()) {
    return Status::InvalidArgument("unknown call id");
  }
  const auto [index, inner_id] = pending->second;
  pending_.erase(pending);
  Node* node = &nodes_[index];
  if (node->channel == nullptr) {
    return Status::Unavailable("endpoint channel dropped while pending");
  }
  Result<net::Message> reply = node->channel->Await(inner_id);
  if (!reply.ok() && static_cast<int>(index) == primary_ &&
      reply.status().IsRetryable()) {
    DemotePrimary();
  }
  return reply;
}

size_t FailoverChannel::pending_calls() const {
  return pending_.size() + buffered_.size();
}

void FailoverChannel::Reset() {
  for (Node& node : nodes_) {
    if (node.channel != nullptr) node.channel->Reset();
    // Let the next dial try immediately: a Reset means the caller is
    // about to retry and stale backoff gates would starve it.
    node.backoff_ms = 0;
  }
  if (primary_ >= 0) DemotePrimary();
}

const net::ChannelStats& FailoverChannel::stats() const {
  merged_stats_.Clear();
  for (const Node& node : nodes_) {
    if (node.channel == nullptr) continue;
    const net::ChannelStats& s = node.channel->stats();
    merged_stats_.rounds += s.rounds;
    merged_stats_.bytes_sent += s.bytes_sent;
    merged_stats_.bytes_received += s.bytes_received;
    merged_stats_.frames_sent += s.frames_sent;
    merged_stats_.frames_received += s.frames_received;
    merged_stats_.injected_faults += s.injected_faults;
    for (const auto& [type, count] : s.calls_by_type) {
      merged_stats_.calls_by_type[type] += count;
    }
  }
  return merged_stats_;
}

void FailoverChannel::ResetStats() {
  for (Node& node : nodes_) {
    if (node.channel != nullptr) node.channel->ResetStats();
  }
}

std::vector<std::string> FailoverChannel::endpoints() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    out.push_back(node.endpoint.host + ":" +
                  std::to_string(node.endpoint.port));
  }
  return out;
}

}  // namespace sse::repl
