#ifndef SSE_OBS_STATS_RPC_H_
#define SSE_OBS_STATS_RPC_H_

#include <string>

#include "sse/net/message.h"
#include "sse/util/result.h"

namespace sse::obs {

/// Payloads of the kMsgStats / kMsgStatsReply admin RPC. A stats request
/// asks the serving process for its metrics in Prometheus text format and,
/// optionally, its recently sampled spans as Chrome trace-event JSON. The
/// RPC rides the normal framed channel, so any client that can reach the
/// server's data port can scrape it — no separate HTTP listener needed.

struct StatsRequest {
  bool include_spans = false;
  /// Ask for the structured event journal (obs/events.h) as JSON.
  bool include_events = false;
  /// Newest events to return when include_events is set (0 = server
  /// default of the whole ring).
  uint32_t events_tail = 0;

  net::Message ToMessage() const;
  static Result<StatsRequest> FromMessage(const net::Message& msg);
};

struct StatsReply {
  std::string prometheus_text;
  std::string spans_json;    // empty unless include_spans was set
  std::string events_json;   // empty unless include_events was set

  net::Message ToMessage() const;
  static Result<StatsReply> FromMessage(const net::Message& msg);
};

/// Serves `request` from this process's global registry and span
/// collector. This is what TcpServer calls when a kMsgStats frame arrives.
net::Message HandleStatsRequest(const net::Message& request);

}  // namespace sse::obs

#endif  // SSE_OBS_STATS_RPC_H_
