// What does the server actually learn? — the paper's security framework,
// live.
//
// Runs a small Scheme 1 history, then shows (a) the trace — the leakage the
// security definition permits, (b) the leakage an honest-but-curious
// observer really extracts from the transcript, and (c) the Theorem-1
// simulator fabricating an indistinguishable view from the trace alone,
// checked by the statistical distinguishers.
//
//   ./build/examples/leakage_demo

#include <cstdio>

#include "sse/core/registry.h"
#include "sse/security/leakage.h"
#include "sse/security/simulator.h"
#include "sse/security/stats.h"
#include "sse/security/trace.h"

int main() {
  using namespace sse;

  SystemRandom& rng = SystemRandom::Instance();
  auto key = crypto::MasterKey::Generate(rng).value();
  core::SystemConfig config;
  config.scheme.max_documents = 4096;
  config.channel.record_transcript = true;

  auto sys = core::CreateSystem(core::SystemKind::kScheme1, key, config, &rng);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }

  // The client's secret input: a history of documents and queries.
  security::History history;
  history.documents = {
      core::Document::Make(0, "radiology report, fracture healing well",
                           {"fracture", "radiology"}),
      core::Document::Make(1, "lab panel normal", {"lab", "routine"}),
      core::Document::Make(2, "followup xray scheduled",
                           {"fracture", "radiology", "followup"}),
  };
  history.queries = {"fracture", "lab", "fracture", "unknown-term"};

  if (!sys->client->Store(history.documents).ok()) return 1;
  for (const auto& query : history.queries) {
    if (!sys->client->Search(query).ok()) return 1;
  }

  // (a) The allowed leakage: the trace.
  const security::Trace trace = security::ComputeTrace(history);
  std::printf("=== trace (what the definition allows to leak) ===\n");
  std::printf("document ids:        ");
  for (uint64_t id : trace.ids) std::printf("%llu ", (unsigned long long)id);
  std::printf("\ndocument lengths:    ");
  for (uint64_t len : trace.lengths) {
    std::printf("%llu ", (unsigned long long)len);
  }
  std::printf("\nunique keywords:     %llu\n",
              (unsigned long long)trace.unique_keywords);
  for (size_t q = 0; q < trace.results.size(); ++q) {
    std::printf("query %zu result set:  {", q);
    for (uint64_t id : trace.results[q]) {
      std::printf(" %llu", (unsigned long long)id);
    }
    std::printf(" }\n");
  }
  std::printf("search pattern: queries 0 and 2 repeat -> Pi[0][2]=%d\n",
              trace.search_pattern[0][2] ? 1 : 0);

  // (b) What an observer extracts from the actual wire traffic.
  security::LeakageReport report =
      security::AnalyzeTranscript(sys->channel->transcript());
  std::printf("\n=== observer's take from the transcript ===\n");
  std::printf("update observations: %zu (aggregate keyword counts:",
              report.update_keyword_counts.size());
  for (uint64_t c : report.update_keyword_counts) {
    std::printf(" %llu", (unsigned long long)c);
  }
  std::printf(")\ndistinct search tokens seen: %zu, repeated searches: %llu\n",
              report.token_occurrences.size(),
              (unsigned long long)report.repeated_searches());
  std::printf("result sizes per search:");
  for (uint64_t s : report.result_sizes) {
    std::printf(" %llu", (unsigned long long)s);
  }
  std::printf("\n(note: exactly the trace — tokens, counts, sizes — and "
              "nothing about contents)\n");

  // (c) The simulator fabricates a view from the trace alone.
  security::Scheme1Simulator simulator(config.scheme, &rng);
  auto view = simulator.SimulateView(trace, trace.results.size());
  if (!view.ok()) return 1;
  Bytes simulated_index;
  for (const auto& entry : view->index) {
    simulated_index.insert(simulated_index.end(), entry.masked_bitmap.begin(),
                           entry.masked_bitmap.end());
  }
  std::printf("\n=== Theorem-1 simulator ===\n");
  std::printf("simulated %zu index entries and %zu trapdoors from the trace\n",
              view->index.size(), view->trapdoors.size());
  std::printf("simulated index bytes: monobit=%.4f entropy=%.3f b/B\n",
              security::MonobitFraction(simulated_index),
              security::ShannonEntropyBytes(simulated_index));
  std::printf("trapdoor reuse respects Pi: T0==T2? %s\n",
              view->trapdoors[0] == view->trapdoors[2] ? "yes" : "no");
  std::printf("\nA distinguisher that can tell this fabrication from the real "
              "server state\nwould break the scheme; the test suite runs "
              "statistical ones and finds none.\n");
  return 0;
}
