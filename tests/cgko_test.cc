#include "sse/baselines/cgko_sse1.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::baselines {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::MakeTestSystem;

class CgkoTest : public ::testing::Test {
 protected:
  CgkoTest() : rng_(77), sys_(MakeTestSystem(SystemKind::kCgkoSse1, &rng_)) {}
  CgkoServer* server() { return static_cast<CgkoServer*>(sys_.server.get()); }

  DeterministicRandom rng_;
  core::SseSystem sys_;
};

TEST_F(CgkoTest, SearchWalksExactlyResultSizeNodes) {
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 20; ++i) {
    std::vector<std::string> kws{"all"};
    if (i < 5) kws.push_back("rare");
    docs.push_back(Document::Make(i, "d", kws));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  uint64_t before = server()->nodes_walked();
  auto rare = sys_.client->Search("rare");
  SSE_ASSERT_OK_RESULT(rare);
  EXPECT_EQ(rare->ids.size(), 5u);
  EXPECT_EQ(server()->nodes_walked() - before, 5u);  // O(|D(w)|), optimal

  before = server()->nodes_walked();
  auto all = sys_.client->Search("all");
  SSE_ASSERT_OK_RESULT(all);
  EXPECT_EQ(server()->nodes_walked() - before, 20u);
}

TEST_F(CgkoTest, MissWalksNothing) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "d", {"x"})}));
  const uint64_t before = server()->nodes_walked();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("absent"));
  EXPECT_EQ(server()->nodes_walked(), before);
}

TEST_F(CgkoTest, EveryStoreRebuildsWholeIndex) {
  // The update-inefficiency the paper criticizes: index upload bytes grow
  // superlinearly as every store re-ships all postings so far.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "d", {"a", "b"})}));
  const uint64_t first = server()->index_bytes_uploaded();
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(1, "d", {"c"})}));
  const uint64_t second = server()->index_bytes_uploaded() - first;
  // The second upload re-ships the first document's postings too.
  EXPECT_GT(second, first / 2);
  EXPECT_EQ(server()->array_size(), 3u);  // 3 posting nodes total
}

TEST_F(CgkoTest, ArrayNodesAreShuffled) {
  // Nodes of one keyword must not sit contiguously: build with two
  // keywords and check interleaving is at least possible (smoke test on
  // the permutation's effect — exact layout is random).
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 30; ++i) {
    docs.push_back(Document::Make(i, "d", {i < 15 ? "first" : "second"}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  EXPECT_EQ(server()->array_size(), 30u);
  EXPECT_EQ(server()->table_size(), 2u);
  auto outcome = sys_.client->Search("first");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids.size(), 15u);
}

TEST_F(CgkoTest, StateSerializationRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"x", "y"})}));
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);
  CgkoServer restored;
  SSE_ASSERT_OK(restored.RestoreState(*state));
  EXPECT_EQ(restored.array_size(), 2u);
  EXPECT_EQ(restored.table_size(), 2u);
}

TEST_F(CgkoTest, MalformedMessagesRejected) {
  EXPECT_FALSE(sys_.channel->Call(net::Message{kMsgCgkoBuild, Bytes{9}}).ok());
  EXPECT_FALSE(
      sys_.channel->Call(net::Message{kMsgCgkoSearch, Bytes{1}}).ok());
}

TEST_F(CgkoTest, CorruptListAddressDetected) {
  // A trapdoor whose mask decodes to a wild address must be rejected, not
  // crash the server.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  BufferWriter w;
  // Real token for "kw" is unknown here; use garbage token — miss is fine.
  w.PutBytes(Bytes(32, 0xab));
  w.PutBytes(Bytes(36, 0xcd));
  auto reply = sys_.channel->Call(net::Message{kMsgCgkoSearch, w.TakeData()});
  // Unknown token -> clean empty result.
  ASSERT_TRUE(reply.ok());
}

}  // namespace
}  // namespace sse::baselines
