#include "sse/crypto/sha256.h"

#include <gtest/gtest.h>

namespace sse::crypto {
namespace {

TEST(Sha256Test, EmptyStringVector) {
  auto digest = Sha256(Bytes{});
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(HexEncode(*digest),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  auto digest = Sha256(StringToBytes("abc"));
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(HexEncode(*digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, ConcatMatchesDirect) {
  auto direct = Sha256(StringToBytes("hello world"));
  auto concat = Sha256Concat(StringToBytes("hello "), StringToBytes("world"));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(concat.ok());
  EXPECT_EQ(*direct, *concat);
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = StringToBytes("a longer message split into several updates");
  Sha256Hasher hasher;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    ASSERT_TRUE(hasher.Update(BytesView(data.data() + i, n)).ok());
  }
  auto incremental = hasher.Finish();
  auto one_shot = Sha256(data);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(one_shot.ok());
  EXPECT_EQ(*incremental, *one_shot);
}

TEST(Sha256Test, HasherReusableAfterFinish) {
  Sha256Hasher hasher;
  ASSERT_TRUE(hasher.Update(StringToBytes("first")).ok());
  auto first = hasher.Finish();
  ASSERT_TRUE(hasher.Update(StringToBytes("second")).ok());
  auto second = hasher.Finish();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
  EXPECT_EQ(*second, *Sha256(StringToBytes("second")));
}

TEST(Sha256Test, AvalancheOnOneBit) {
  Bytes a(32, 0);
  Bytes b(32, 0);
  b[0] = 1;
  auto da = Sha256(a);
  auto db = Sha256(b);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  size_t differing_bits = 0;
  for (size_t i = 0; i < 32; ++i) {
    uint8_t x = (*da)[i] ^ (*db)[i];
    while (x != 0) {
      differing_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_GT(differing_bits, 80u);  // ~128 expected
}

}  // namespace
}  // namespace sse::crypto
