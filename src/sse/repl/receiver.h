#ifndef SSE_REPL_RECEIVER_H_
#define SSE_REPL_RECEIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/persistable.h"
#include "sse/core/reply_cache.h"
#include "sse/net/message.h"
#include "sse/obs/metrics_registry.h"
#include "sse/repl/messages.h"
#include "sse/storage/env.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace sse::repl {

/// Follower-side replication endpoint: applies shipped WAL records to a
/// live read view and journals them — byte-exact — into the follower's own
/// segmented WAL, so the follower's directory is at all times a valid
/// DurableServer image. Promotion therefore needs no special machinery: it
/// discards the view and runs plain `DurableServer::Open` on the
/// directory, replaying the shipped segments through the battle-tested
/// salvage/snapshot recovery path.
///
/// Invariants:
///  - Records are accepted only exactly at the local cursor
///    (`wal.next_seq()`); older sequences are skipped as duplicates,
///    gaps are refused with an ack carrying the cursor so the sender
///    rewinds. The local log is always contiguous.
///  - Acks are sent only after the records are fsynced locally — an acked
///    sequence survives a follower crash.
///  - Appends from an epoch below the follower's own are fenced off
///    (rejected without touching the log).
///
/// The read view answers non-mutating requests ("stale reads"); a view
/// that ever diverges from its log (an apply failure) fail-stops reads
/// while the on-disk image stays sound for promotion.
class ReplReceiver {
 public:
  using HandlerFactory =
      std::function<std::unique_ptr<core::PersistableHandler>()>;

  struct Options {
    storage::Env* env = storage::Env::Default();
    uint64_t wal_segment_bytes = 8ull << 20;
    bool wal_salvage = false;
    core::ReplyCache::Options reply_cache;
    /// Checkpoint the view + compact the local WAL every N applied
    /// records; 0 = only on explicit Checkpoint() calls.
    uint64_t checkpoint_every_records = 0;
  };

  /// Opens the follower state in `dir` (which must exist): restores the
  /// newest verifying snapshot into a fresh handler from `factory`,
  /// replays the local WAL on top, and opens the log for shipped appends.
  /// `epoch` seeds the fencing epoch (persisted by the owning ReplNode).
  static Result<std::unique_ptr<ReplReceiver>> Open(const std::string& dir,
                                                    HandlerFactory factory,
                                                    uint64_t epoch);
  static Result<std::unique_ptr<ReplReceiver>> Open(const std::string& dir,
                                                    HandlerFactory factory,
                                                    uint64_t epoch,
                                                    Options options);

  /// kMsgReplAppend → kMsgReplAck. Applies + journals + fsyncs the run.
  Result<net::Message> HandleAppend(const net::Message& request);
  /// kMsgReplSnapshot → kMsgReplAck. Installs a shipped checkpoint and
  /// restarts the local log at its cut.
  Result<net::Message> HandleSnapshot(const net::Message& request);
  /// Serves a non-mutating request from the (possibly stale) read view.
  /// Mutating requests are refused with a retryable "not primary".
  Result<net::Message> HandleRead(const net::Message& request);

  /// Classification passthrough for the routing layer.
  bool IsMutating(uint16_t msg_type) const;

  /// Snapshots the view + reply cache and compacts the local WAL, exactly
  /// like DurableServer::Checkpoint — the blob formats are identical.
  Status Checkpoint();

  /// Sequence the local durable log expects next.
  uint64_t next_seq() const;
  /// Highest fencing epoch seen (monotonic; adopted from shipped traffic).
  uint64_t epoch() const;
  uint64_t records_applied() const;
  bool view_ok() const;

 private:
  ReplReceiver(std::string dir, HandlerFactory factory, Options options,
               uint64_t epoch)
      : dir_(std::move(dir)),
        factory_(std::move(factory)),
        options_(options),
        snapshots_(dir_, options.env),
        epoch_(epoch) {}

  /// Applies one shipped record to the view + reply cache (no journal).
  Status ApplyToView(BytesView record);
  Status CheckpointLocked();

  std::string dir_;
  HandlerFactory factory_;
  Options options_;
  storage::SnapshotSet snapshots_;

  mutable std::mutex mutex_;
  std::unique_ptr<core::PersistableHandler> view_;
  std::unique_ptr<core::ReplyCache> cache_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  uint64_t epoch_ = 0;
  uint64_t last_checkpoint_seq_ = 1;
  uint64_t records_applied_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  bool view_ok_ = true;
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace sse::repl

#endif  // SSE_REPL_RECEIVER_H_
