# Empty compiler generated dependencies file for phr_traveler.
# This may be replaced when dependencies are built.
