#ifndef SSE_OBS_STATS_LOGGER_H_
#define SSE_OBS_STATS_LOGGER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace sse::obs {

/// Background thread that periodically logs a one-line digest of the
/// global metrics registry via SSE_LOG(Info) — a poor man's dashboard for
/// long-running servers when nothing is scraping kMsgStats. Starts on
/// construction, joins on destruction.
class StatsLogger {
 public:
  explicit StatsLogger(
      std::chrono::milliseconds period = std::chrono::seconds(10));
  ~StatsLogger();

  StatsLogger(const StatsLogger&) = delete;
  StatsLogger& operator=(const StatsLogger&) = delete;

  /// Logs one digest line immediately (also what the thread runs each
  /// period). Public so tests can exercise it without sleeping.
  static void LogOnce();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace sse::obs

#endif  // SSE_OBS_STATS_LOGGER_H_
