file(REMOVE_RECURSE
  "CMakeFiles/timer_logging_test.dir/timer_logging_test.cc.o"
  "CMakeFiles/timer_logging_test.dir/timer_logging_test.cc.o.d"
  "timer_logging_test"
  "timer_logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
