#ifndef SSE_UTIL_RANDOM_H_
#define SSE_UTIL_RANDOM_H_

#include <cstdint>
#include <memory>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse {

/// Source of random bytes. Every randomized component in the library
/// (key generation, nonce drawing, ElGamal ephemerals, workload synthesis)
/// takes a `RandomSource&` so tests and benchmarks can inject a seeded
/// deterministic generator while production uses the OS CSPRNG.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with `out.size()` random bytes.
  virtual Status Fill(Bytes& out) = 0;

  /// Returns `n` random bytes.
  Result<Bytes> Generate(size_t n);

  /// Uniform 64-bit value.
  Result<uint64_t> NextU64();

  /// Uniform value in [0, bound) via rejection sampling (no modulo bias).
  /// `bound` must be nonzero.
  Result<uint64_t> UniformU64(uint64_t bound);
};

/// Cryptographically secure source backed by OpenSSL `RAND_bytes`.
class SystemRandom : public RandomSource {
 public:
  SystemRandom() = default;
  Status Fill(Bytes& out) override;

  /// Shared process-wide instance.
  static SystemRandom& Instance();
};

/// Deterministic, seedable generator (xoshiro256**). NOT cryptographically
/// secure — for tests and reproducible workload generation only.
class DeterministicRandom : public RandomSource {
 public:
  explicit DeterministicRandom(uint64_t seed);
  Status Fill(Bytes& out) override;

  /// Raw next value of the underlying engine (handy for workload code).
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t s_[4];
};

}  // namespace sse

#endif  // SSE_UTIL_RANDOM_H_
