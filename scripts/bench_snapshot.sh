#!/usr/bin/env bash
# Refreshes the committed benchmark snapshots (BENCH_search.json and
# BENCH_load.json).
#
# Builds the benchmarks, runs the Table-1 search profile — including the
# reactor connection-scale sweep (f), which raises RLIMIT_NOFILE itself
# when the environment allows, and the interleaved tracing/SLO overhead
# A/B — then the open-loop load harness (calibration plus the nominal /
# near-saturation / past-watermark points), and leaves both
# machine-readable results at the repo root for trend tracking across PRs.
#
# Usage: scripts/bench_snapshot.sh [search_output.json [load_output.json]]
set -euo pipefail
cd "$(dirname "$0")/.."

SEARCH_OUT="${1:-BENCH_search.json}"
LOAD_OUT="${2:-BENCH_load.json}"

echo "==> build benchmarks"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_table1_search bench_load

echo "==> run bench_table1_search -> ${SEARCH_OUT}"
./build/bench/bench_table1_search "${SEARCH_OUT}"

echo "==> run bench_load (full open-loop profile) -> ${LOAD_OUT}"
./build/bench/bench_load "${LOAD_OUT}"

echo "==> snapshots:"
cat "${SEARCH_OUT}"
cat "${LOAD_OUT}"
