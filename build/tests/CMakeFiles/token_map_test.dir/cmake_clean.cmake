file(REMOVE_RECURSE
  "CMakeFiles/token_map_test.dir/token_map_test.cc.o"
  "CMakeFiles/token_map_test.dir/token_map_test.cc.o.d"
  "token_map_test"
  "token_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
