# Empty dependencies file for bench_protocol_flows.
# This may be replaced when dependencies are built.
