file(REMOVE_RECURSE
  "CMakeFiles/scheme2_test.dir/scheme2_test.cc.o"
  "CMakeFiles/scheme2_test.dir/scheme2_test.cc.o.d"
  "scheme2_test"
  "scheme2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
