#include "sse/net/message.h"

#include "sse/util/crc32.h"
#include "sse/util/serde.h"

namespace sse::net {

void Message::StampSession(uint64_t client, uint64_t sequence) {
  has_session = true;
  client_id = client;
  seq = sequence;
  payload_crc = Crc32c(payload);
}

void Message::EchoSession(const Message& request) {
  if (!request.has_session) return;
  StampSession(request.client_id, request.seq);
}

Bytes Message::Encode() const {
  BufferWriter w;
  uint16_t tag = type;
  if (has_session) tag |= kMsgFlagSession;
  if (has_trace) tag |= kMsgFlagTrace;
  if (has_deadline) tag |= kMsgFlagDeadline;
  w.PutU16(tag);
  const size_t body = payload.size() +
                      (has_session ? kSessionHeaderSize : 0) +
                      (has_trace ? kTraceHeaderSize : 0) +
                      (has_deadline ? kDeadlineHeaderSize : 0);
  w.PutU32(static_cast<uint32_t>(body));
  if (has_session) {
    w.PutU64(client_id);
    w.PutU64(seq);
    w.PutU32(payload_crc);
  }
  if (has_trace) {
    w.PutU64(trace_id);
    w.PutU64(trace_parent);
    w.PutU8(trace_flags);
  }
  if (has_deadline) w.PutU32(deadline_ms);
  w.PutRaw(payload);
  return w.TakeData();
}

Result<Message> Message::Decode(BytesView data) {
  BufferReader r(data);
  Message msg;
  SSE_ASSIGN_OR_RETURN(msg.type, r.GetU16());
  uint32_t len = 0;
  SSE_ASSIGN_OR_RETURN(len, r.GetU32());
  if (len != r.remaining()) {
    return Status::ProtocolError("message length field mismatch");
  }
  if ((msg.type & kMsgFlagSession) != 0) {
    msg.type &= static_cast<uint16_t>(~kMsgFlagSession);
    msg.has_session = true;
    if (len < kSessionHeaderSize) {
      return Status::ProtocolError("session header truncated");
    }
    SSE_ASSIGN_OR_RETURN(msg.client_id, r.GetU64());
    SSE_ASSIGN_OR_RETURN(msg.seq, r.GetU64());
    SSE_ASSIGN_OR_RETURN(msg.payload_crc, r.GetU32());
    len -= static_cast<uint32_t>(kSessionHeaderSize);
  }
  if ((msg.type & kMsgFlagTrace) != 0) {
    msg.type &= static_cast<uint16_t>(~kMsgFlagTrace);
    msg.has_trace = true;
    if (len < kTraceHeaderSize) {
      return Status::ProtocolError("trace header truncated");
    }
    SSE_ASSIGN_OR_RETURN(msg.trace_id, r.GetU64());
    SSE_ASSIGN_OR_RETURN(msg.trace_parent, r.GetU64());
    SSE_ASSIGN_OR_RETURN(msg.trace_flags, r.GetU8());
    len -= static_cast<uint32_t>(kTraceHeaderSize);
  }
  if ((msg.type & kMsgFlagDeadline) != 0) {
    msg.type &= static_cast<uint16_t>(~kMsgFlagDeadline);
    msg.has_deadline = true;
    if (len < kDeadlineHeaderSize) {
      return Status::ProtocolError("deadline header truncated");
    }
    SSE_ASSIGN_OR_RETURN(msg.deadline_ms, r.GetU32());
    len -= static_cast<uint32_t>(kDeadlineHeaderSize);
  }
  SSE_ASSIGN_OR_RETURN(msg.payload, r.GetRaw(len));
  if (msg.has_session && Crc32c(msg.payload) != msg.payload_crc) {
    return Status::Corruption("message payload fails its session checksum");
  }
  return msg;
}

bool Message::PeekSession(BytesView data, uint64_t* client_id, uint64_t* seq) {
  BufferReader r(data);
  auto type = r.GetU16();
  if (!type.ok() || (*type & kMsgFlagSession) == 0) return false;
  auto len = r.GetU32();
  if (!len.ok()) return false;
  auto client = r.GetU64();
  auto sequence = r.GetU64();
  if (!client.ok() || !sequence.ok()) return false;
  *client_id = *client;
  *seq = *sequence;
  return true;
}

std::string MessageTypeName(uint16_t type) {
  switch (type) {
    case kMsgError:
      return "Error";
    case kMsgPutDocument:
      return "PutDocument";
    case kMsgPutDocumentAck:
      return "PutDocumentAck";
    case kMsgFetchDocuments:
      return "FetchDocuments";
    case kMsgFetchDocumentsResult:
      return "FetchDocumentsResult";
    case kMsgBatch:
      return "Batch";
    case kMsgBatchReply:
      return "BatchReply";
    case kMsgStats:
      return "Stats";
    case kMsgStatsReply:
      return "StatsReply";
    case kMsgReplAppend:
      return "ReplAppend";
    case kMsgReplAck:
      return "ReplAck";
    case kMsgReplSnapshot:
      return "ReplSnapshot";
    case kMsgReplPromote:
      return "ReplPromote";
    default:
      break;
  }
  // Names of the scheme-specific messages. Kept here (rather than in the
  // core headers that define the constants) so transcripts and benches can
  // label any message without a dependency cycle; the layouts are fixed by
  // the wire protocol.
  static constexpr const char* kScheme1Names[] = {
      nullptr,        "NonceRequest", "NonceReply",       "UpdateRequest",
      "UpdateAck",    "SearchRequest", "SearchNonceReply", "SearchFinish",
      "SearchResult"};
  static constexpr const char* kScheme2Names[] = {
      nullptr,        "UpdateRequest", "UpdateAck",     "SearchRequest",
      "SearchResult", "FetchAllRequest", "FetchAllReply", "ReinitRequest",
      "ReinitAck"};
  const uint16_t range = type & 0xff00;
  const int sub = type & 0xff;
  std::string prefix;
  if (range == kMsgRangeScheme1) {
    prefix = "Scheme1.";
    if (sub >= 1 && sub <= 8) return prefix + kScheme1Names[sub];
  } else if (range == kMsgRangeScheme2) {
    prefix = "Scheme2.";
    if (sub >= 1 && sub <= 8) return prefix + kScheme2Names[sub];
  } else if (range == kMsgRangeBaseline) {
    prefix = "Baseline.";
  } else {
    prefix = "Unknown.";
  }
  return prefix + std::to_string(sub);
}

Message MakeErrorMessage(const Status& status) {
  BufferWriter w;
  w.PutU16(static_cast<uint16_t>(status.code()));
  w.PutString(status.message());
  return Message{kMsgError, w.TakeData()};
}

Status DecodeErrorMessage(const Message& msg) {
  if (msg.type != kMsgError) return Status::OK();
  BufferReader r(msg.payload);
  auto code = r.GetU16();
  auto text = r.GetString();
  if (!code.ok() || !text.ok()) {
    return Status::ProtocolError("malformed error reply");
  }
  return Status(static_cast<StatusCode>(code.value()), text.value());
}

}  // namespace sse::net
