#include "sse/core/registry.h"

#include <string>

#include "sse/engine/scheme_shard.h"
#include "sse/engine/server_engine.h"

namespace sse::core {

namespace {

// Scheme-agnostic: the descriptor supplies the adapter, the engine wraps
// it. Any scheme whose descriptor registers an adapter inherits sharding,
// the worker pool, the reply cache and the shared document store.
Result<std::unique_ptr<PersistableHandler>> CreateEngineServer(
    const SchemeDescriptor& desc, const SystemConfig& config) {
  if (!desc.traits.engine_capable || desc.make_adapter == nullptr) {
    return Status::InvalidArgument(
        "engine mode (engine_shards > 0) is not supported by " +
        std::string(desc.name));
  }
  std::unique_ptr<engine::SchemeAdapter> adapter = desc.make_adapter(config);
  engine::EngineOptions opts;
  opts.num_shards = config.engine_shards;
  opts.worker_threads = config.engine_workers;
  opts.document_log_path = config.scheme.document_log_path;
  opts.enable_reply_cache = config.engine_reply_cache;
  Result<std::unique_ptr<engine::ServerEngine>> eng =
      engine::ServerEngine::Create(std::move(adapter), opts);
  if (!eng.ok()) return eng.status();
  return std::unique_ptr<PersistableHandler>(std::move(eng).value());
}

}  // namespace

Result<SseSystem> CreateSystem(SystemKind kind, const crypto::MasterKey& key,
                               const SystemConfig& config, RandomSource* rng) {
  const SchemeDescriptor* desc = FindScheme(kind);
  if (desc == nullptr) {
    return Status::InvalidArgument("unknown system kind");
  }

  SseSystem sys;
  if (config.engine_shards > 0) {
    SSE_ASSIGN_OR_RETURN(sys.server, CreateEngineServer(*desc, config));
  } else {
    SSE_ASSIGN_OR_RETURN(sys.server, desc->make_server(config));
  }

  sys.channel = std::make_unique<net::InProcessChannel>(sys.server.get(),
                                                        config.channel);
  net::Channel* client_channel = sys.channel.get();
  if (config.with_retry) {
    sys.retry =
        std::make_unique<net::RetryingChannel>(sys.channel.get(), config.retry,
                                               rng);
    client_channel = sys.retry.get();
  }

  SSE_ASSIGN_OR_RETURN(sys.client,
                       desc->make_client(key, config, client_channel, rng));
  return sys;
}

}  // namespace sse::core
