// RetryingChannel policy: classification, decorrelated-jitter backoff,
// deadlines, session stamping (seq reuse across attempts), and client-side
// stale/corrupt reply detection.

#include "sse/net/retry.h"

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <vector>

#include "sse/net/batch.h"
#include "sse/util/crc32.h"
#include "test_util.h"

namespace sse::net {
namespace {

/// Channel whose next Calls run scripted behaviors (then echo by default).
class ScriptedChannel : public Channel {
 public:
  using Behavior = std::function<Result<Message>(const Message&)>;

  void Push(Behavior b) { script_.push_back(std::move(b)); }

  Result<Message> Call(const Message& request) override {
    stats_.rounds += 1;
    seen_.push_back(request);
    if (!script_.empty()) {
      Behavior b = std::move(script_.front());
      script_.pop_front();
      return b(request);
    }
    return Echo(request);
  }

  void Reset() override { resets_ += 1; }
  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

  /// Well-formed reply: echoes the request's session stamp. A kMsgBatch
  /// envelope is served per-op (each entry echoes its op with type + 1),
  /// the way a real server engine unpacks it.
  static Result<Message> Echo(const Message& request) {
    if (request.type == kMsgBatch) return EchoBatch(request);
    Message reply;
    reply.type = static_cast<uint16_t>(request.type + 1);
    reply.payload = request.payload;
    reply.EchoSession(request);
    return reply;
  }

  static Result<Message> EchoBatch(const Message& request) {
    Result<BatchRequest> batch = BatchRequest::FromMessage(request);
    if (!batch.ok()) return batch.status();
    BatchReply out;
    for (const BatchRequest::Op& op : batch->ops) {
      out.entries.push_back(
          {static_cast<uint16_t>(op.type + 1), op.payload});
    }
    Message reply = out.ToMessage();
    reply.EchoSession(request);
    return reply;
  }

  const std::vector<Message>& seen() const { return seen_; }
  uint64_t resets() const { return resets_; }

 private:
  std::deque<Behavior> script_;
  std::vector<Message> seen_;
  ChannelStats stats_;
  uint64_t resets_ = 0;
};

RetryOptions FastOptions() {
  RetryOptions opts;
  opts.max_attempts = 5;
  opts.initial_backoff_ms = 10.0;
  opts.max_backoff_ms = 100.0;
  return opts;
}

/// Retry harness with virtual time: sleeps advance the clock instantly.
struct Harness {
  explicit Harness(RetryOptions opts) : rng(7), retry(&inner, opts, &rng) {
    retry.set_clock_fn([this] { return now_ms; });
    retry.set_sleep_fn([this](double ms) {
      now_ms += ms;
      sleeps.push_back(ms);
    });
  }
  ScriptedChannel inner;
  DeterministicRandom rng;
  RetryingChannel retry;
  double now_ms = 0.0;
  std::vector<double> sleeps;
};

Message Request(uint16_t type = 0x0101) {
  Message m;
  m.type = type;
  m.payload = Bytes{1, 2, 3};
  return m;
}

TEST(RetryTest, FirstAttemptSuccessMakesOneInnerCall) {
  Harness h(FastOptions());
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().calls, 1u);
  EXPECT_EQ(h.retry.retry_stats().attempts, 1u);
  EXPECT_EQ(h.retry.retry_stats().retries, 0u);
  EXPECT_TRUE(h.sleeps.empty());
}

TEST(RetryTest, StampsSessionsWithMonotonicSeq) {
  Harness h(FastOptions());
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 2u);
  EXPECT_TRUE(h.inner.seen()[0].has_session);
  EXPECT_EQ(h.inner.seen()[0].client_id, h.retry.client_id());
  EXPECT_EQ(h.inner.seen()[0].seq + 1, h.inner.seen()[1].seq);
  EXPECT_EQ(h.inner.seen()[0].payload_crc, Crc32c(Bytes{1, 2, 3}));
}

TEST(RetryTest, RetryableFailuresAreRetriedWithResetUntilSuccess) {
  Harness h(FastOptions());
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::IoError("boom");
  });
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::Unavailable("still down");
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().attempts, 3u);
  EXPECT_EQ(h.retry.retry_stats().retries, 2u);
  // The transport is flushed before every re-send.
  EXPECT_EQ(h.inner.resets(), 2u);
  EXPECT_EQ(h.sleeps.size(), 2u);
}

TEST(RetryTest, AllAttemptsOfOneCallShareTheSeq) {
  // Seq reuse is the heart of exactly-once: the server dedups retries of
  // one logical call only because they carry the same stamp.
  Harness h(FastOptions());
  for (int i = 0; i < 3; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("flaky");
    });
  }
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 4u);
  for (const Message& m : h.inner.seen()) {
    EXPECT_EQ(m.seq, h.inner.seen()[0].seq);
    EXPECT_EQ(m.client_id, h.retry.client_id());
  }
  // The next logical call advances.
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  EXPECT_EQ(h.inner.seen().back().seq, h.inner.seen()[0].seq + 1);
}

TEST(RetryTest, NonRetryableErrorSurfacesImmediately) {
  Harness h(FastOptions());
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::InvalidArgument("bad token");
  });
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(h.retry.retry_stats().attempts, 1u);
  EXPECT_EQ(h.retry.retry_stats().retries, 0u);
}

TEST(RetryTest, BackoffFollowsDecorrelatedJitterBounds) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 6;
  opts.initial_backoff_ms = 8.0;
  opts.max_backoff_ms = 50.0;
  Harness h(opts);
  for (int i = 0; i < 6; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("down");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  ASSERT_EQ(h.sleeps.size(), 5u);
  // First sleep drawn from [0, base]; later from [base, 3*prev], capped.
  EXPECT_GE(h.sleeps[0], 0.0);
  EXPECT_LE(h.sleeps[0], opts.initial_backoff_ms);
  for (size_t i = 1; i < h.sleeps.size(); ++i) {
    EXPECT_LE(h.sleeps[i], opts.max_backoff_ms);
    const double hi = 3.0 * h.sleeps[i - 1];
    if (hi >= opts.initial_backoff_ms) {
      EXPECT_GE(h.sleeps[i],
                std::min(opts.initial_backoff_ms, opts.max_backoff_ms));
      EXPECT_LE(h.sleeps[i], std::max(hi, opts.initial_backoff_ms));
    }
  }
}

TEST(RetryTest, DeadlineBoundsTheWholeCall) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 100;
  opts.initial_backoff_ms = 40.0;
  opts.max_backoff_ms = 40.0;
  opts.call_deadline_ms = 100.0;
  Harness h(opts);
  for (int i = 0; i < 100; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("down");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(h.retry.retry_stats().deadline_exceeded, 1u);
  // Far fewer than max_attempts ran before the budget expired.
  EXPECT_LT(h.retry.retry_stats().attempts, 10u);
  // The deadline error carries the underlying failure for diagnosis.
  EXPECT_NE(reply.status().message().find("IO_ERROR"), std::string::npos);
}

TEST(RetryTest, StaleReplyIsDiscardedAndCallRetried) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    // A reply for some OTHER call (stream off by one): wrong seq echo.
    Message stale;
    stale.type = static_cast<uint16_t>(request.type + 1);
    stale.payload = Bytes{0xde, 0xad};
    stale.StampSession(request.client_id, request.seq + 1000);
    return stale;
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(reply->payload, (Bytes{1, 2, 3}));  // the genuine echo
  EXPECT_EQ(h.retry.retry_stats().stale_replies, 1u);
  EXPECT_EQ(h.inner.resets(), 1u);  // flushed the desynced stream
}

TEST(RetryTest, CorruptReplyIsDetectedByChecksumAndRetried) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::Echo(request);
    reply->payload[0] ^= 0xff;  // damage after the CRC was computed
    return reply;
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().corrupt_replies, 1u);
  EXPECT_EQ(h.retry.retry_stats().attempts, 2u);
}

TEST(RetryTest, CorruptReplySurfacesWhenCorruptRetryDisabled) {
  RetryOptions opts = FastOptions();
  opts.retry_corrupt_replies = false;
  Harness h(opts);
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::Echo(request);
    reply->payload[0] ^= 0xff;
    return reply;
  });
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCorruption);
}

TEST(RetryTest, ExhaustionReportsTheLastError) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 3;
  Harness h(opts);
  for (int i = 0; i < 3; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::Unavailable("overloaded");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(reply.status().message().find("retries exhausted"),
            std::string::npos);
  EXPECT_EQ(h.retry.retry_stats().exhausted, 1u);
}

TEST(RetryTest, UnstampedModePassesMessagesThroughBare) {
  RetryOptions opts = FastOptions();
  opts.stamp_sessions = false;
  Harness h(opts);
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 1u);
  EXPECT_FALSE(h.inner.seen()[0].has_session);
}

std::vector<Message> Requests(size_t n) {
  std::vector<Message> out;
  for (size_t i = 0; i < n; ++i) {
    Message m;
    m.type = static_cast<uint16_t>(0x0101 + 2 * i);
    m.payload = Bytes{static_cast<uint8_t>(i), 7};
    out.push_back(std::move(m));
  }
  return out;
}

TEST(MultiCallTest, PacksOpsIntoOneBatchEnvelope) {
  Harness h(FastOptions());
  const std::vector<Message> requests = Requests(5);
  auto results = h.retry.MultiCall(requests);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    SSE_ASSERT_OK_RESULT(results[i]);
    EXPECT_EQ(results[i]->type, requests[i].type + 1);
    EXPECT_EQ(results[i]->payload, requests[i].payload);
  }
  // One wire frame carried all five logical ops.
  ASSERT_EQ(h.inner.seen().size(), 1u);
  const Message& envelope = h.inner.seen()[0];
  EXPECT_EQ(envelope.type, kMsgBatch);
  EXPECT_TRUE(envelope.has_session);
  auto batch = BatchRequest::FromMessage(envelope);
  SSE_ASSERT_OK_RESULT(batch);
  ASSERT_EQ(batch->ops.size(), 5u);
  for (size_t i = 1; i < 5; ++i) {
    // Op seqs are consecutive draws from the session seq space.
    EXPECT_EQ(batch->ops[i].seq, batch->ops[0].seq + i);
  }
  // The envelope's own seq is a separate, later draw.
  EXPECT_GT(envelope.seq, batch->ops[4].seq);
  EXPECT_EQ(h.retry.retry_stats().batches, 1u);
  EXPECT_EQ(h.retry.retry_stats().calls, 5u);
}

TEST(MultiCallTest, RetriesOnlyFailedSubOpsWithStableSeqs) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    auto batch = BatchRequest::FromMessage(request);
    BatchReply out;
    for (size_t k = 0; k < batch->ops.size(); ++k) {
      if (k == 1) {
        const Message err =
            MakeErrorMessage(Status::Unavailable("shard busy"));
        out.entries.push_back({err.type, err.payload});
      } else {
        const BatchRequest::Op& op = batch->ops[k];
        out.entries.push_back(
            {static_cast<uint16_t>(op.type + 1), op.payload});
      }
    }
    Message reply = out.ToMessage();
    reply.EchoSession(request);
    return reply;
  });
  auto results = h.retry.MultiCall(Requests(3));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  // Round 2 re-sent ONLY the failed op, under the same op seq (the dedup
  // identity) inside a fresh envelope.
  ASSERT_EQ(h.inner.seen().size(), 2u);
  auto first = BatchRequest::FromMessage(h.inner.seen()[0]);
  auto second = BatchRequest::FromMessage(h.inner.seen()[1]);
  ASSERT_EQ(second->ops.size(), 1u);
  EXPECT_EQ(second->ops[0].seq, first->ops[1].seq);
  EXPECT_NE(h.inner.seen()[1].seq, h.inner.seen()[0].seq);
  EXPECT_EQ(h.retry.retry_stats().retries, 1u);
}

TEST(MultiCallTest, NonRetryablePerOpErrorSettlesThatOpOnly) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    auto batch = BatchRequest::FromMessage(request);
    BatchReply out;
    for (size_t k = 0; k < batch->ops.size(); ++k) {
      if (k == 1) {
        const Message err =
            MakeErrorMessage(Status::InvalidArgument("bad token"));
        out.entries.push_back({err.type, err.payload});
      } else {
        const BatchRequest::Op& op = batch->ops[k];
        out.entries.push_back(
            {static_cast<uint16_t>(op.type + 1), op.payload});
      }
    }
    Message reply = out.ToMessage();
    reply.EchoSession(request);
    return reply;
  });
  auto results = h.retry.MultiCall(Requests(3));
  SSE_ASSERT_OK_RESULT(results[0]);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  SSE_ASSERT_OK_RESULT(results[2]);
  // A permanent per-op error does not trigger a second round.
  EXPECT_EQ(h.inner.seen().size(), 1u);
}

TEST(MultiCallTest, StaleEnvelopeEchoRetriesGroup) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::EchoBatch(request);
    // Echo of some superseded attempt: wrong envelope seq.
    reply->StampSession(request.client_id, request.seq + 999);
    return reply;
  });
  auto results = h.retry.MultiCall(Requests(4));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  EXPECT_EQ(h.retry.retry_stats().stale_replies, 1u);
  EXPECT_EQ(h.inner.resets(), 1u);  // flushed the desynced stream
  ASSERT_EQ(h.inner.seen().size(), 2u);
  // The whole group was retried (no per-op outcome is trustworthy when the
  // envelope echo itself is stale).
  auto second = BatchRequest::FromMessage(h.inner.seen()[1]);
  EXPECT_EQ(second->ops.size(), 4u);
}

TEST(MultiCallTest, CorruptEnvelopeReplyIsRetried) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::EchoBatch(request);
    reply->payload[0] ^= 0xff;  // damage after the CRC was computed
    return reply;
  });
  auto results = h.retry.MultiCall(Requests(2));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  EXPECT_EQ(h.retry.retry_stats().corrupt_replies, 1u);
  EXPECT_EQ(h.inner.seen().size(), 2u);
}

TEST(MultiCallTest, BatchSizeOnePipelinesIndividualStampedOps) {
  RetryOptions opts = FastOptions();
  opts.batch_size = 1;
  Harness h(opts);
  auto results = h.retry.MultiCall(Requests(3));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  ASSERT_EQ(h.inner.seen().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NE(h.inner.seen()[i].type, kMsgBatch);
    EXPECT_TRUE(h.inner.seen()[i].has_session);
  }
  EXPECT_EQ(h.inner.seen()[1].seq, h.inner.seen()[0].seq + 1);
  EXPECT_EQ(h.retry.retry_stats().batches, 0u);
}

TEST(MultiCallTest, BatchSizeSplitsOpsAcrossEnvelopes) {
  RetryOptions opts = FastOptions();
  opts.batch_size = 2;
  opts.max_inflight = 2;
  Harness h(opts);
  auto results = h.retry.MultiCall(Requests(5));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  // ceil(5 / 2) envelopes, the last carrying a single op.
  ASSERT_EQ(h.inner.seen().size(), 3u);
  for (const Message& m : h.inner.seen()) EXPECT_EQ(m.type, kMsgBatch);
  EXPECT_EQ(h.retry.retry_stats().batches, 3u);
}

TEST(MultiCallTest, UnstampedModeFallsBackToSequentialCalls) {
  RetryOptions opts = FastOptions();
  opts.stamp_sessions = false;
  Harness h(opts);
  auto results = h.retry.MultiCall(Requests(3));
  for (auto& r : results) SSE_ASSERT_OK_RESULT(r);
  ASSERT_EQ(h.inner.seen().size(), 3u);
  for (const Message& m : h.inner.seen()) {
    EXPECT_NE(m.type, kMsgBatch);
    EXPECT_FALSE(m.has_session);
  }
}

TEST(MultiCallTest, ExhaustionSettlesFailingOpWithoutStallingOthers) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 2;
  Harness h(opts);
  auto fail_op_zero = [](const Message& request) -> Result<Message> {
    auto batch = BatchRequest::FromMessage(request);
    BatchReply out;
    for (size_t k = 0; k < batch->ops.size(); ++k) {
      if (batch->ops[k].type == 0x0101) {
        const Message err =
            MakeErrorMessage(Status::Unavailable("shard down"));
        out.entries.push_back({err.type, err.payload});
      } else {
        const BatchRequest::Op& op = batch->ops[k];
        out.entries.push_back(
            {static_cast<uint16_t>(op.type + 1), op.payload});
      }
    }
    Message reply = out.ToMessage();
    reply.EchoSession(request);
    return reply;
  };
  h.inner.Push(fail_op_zero);
  h.inner.Push(fail_op_zero);
  auto results = h.retry.MultiCall(Requests(3));
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kUnavailable);
  EXPECT_NE(results[0].status().message().find("retries exhausted"),
            std::string::npos);
  SSE_ASSERT_OK_RESULT(results[1]);
  SSE_ASSERT_OK_RESULT(results[2]);
  EXPECT_EQ(h.retry.retry_stats().exhausted, 1u);
}

TEST(MultiCallTest, DeadlineSettlesAllRemainingOps) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 100;
  opts.initial_backoff_ms = 40.0;
  opts.max_backoff_ms = 40.0;
  opts.call_deadline_ms = 100.0;
  Harness h(opts);
  for (int i = 0; i < 100; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("link down");
    });
  }
  auto results = h.retry.MultiCall(Requests(3));
  for (auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(h.retry.retry_stats().deadline_exceeded, 3u);
}

TEST(MultiCallTest, EmptyRequestListIsANoOp) {
  Harness h(FastOptions());
  EXPECT_TRUE(h.retry.MultiCall({}).empty());
  EXPECT_TRUE(h.inner.seen().empty());
}

TEST(RetryTest, DistinctChannelsDrawDistinctClientIds) {
  DeterministicRandom rng(3);
  ScriptedChannel inner;
  RetryingChannel a(&inner, FastOptions(), &rng);
  RetryingChannel b(&inner, FastOptions(), &rng);
  EXPECT_NE(a.client_id(), 0u);
  EXPECT_NE(a.client_id(), b.client_id());
}

}  // namespace
}  // namespace sse::net
