#ifndef SSE_OBS_TRACE_H_
#define SSE_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sse/net/message.h"

namespace sse::obs {

/// Identity of one distributed request plus the position inside its span
/// tree. Carried client → retry layer → transport → server → engine shards
/// → WAL, in memory via a thread-local "current context" and on the wire
/// via a trace header behind net::kMsgFlagTrace. A default-constructed
/// context is invalid: spans opened under it cost one thread-local read and
/// record nothing, which is what keeps the no-trace hot path free.
struct TraceContext {
  uint64_t trace_id = 0;  // one per end-to-end request; 0 = no trace
  uint64_t span_id = 0;   // the span children should parent to (0 = root)
  bool sampled = false;   // only sampled traces record span payloads

  bool active() const { return trace_id != 0 && sampled; }
};

/// One finished span, as read back out of the collector.
struct SpanRecord {
  static constexpr size_t kMaxNotes = 4;

  const char* name = "";  // string literal supplied at ScopedSpan creation
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;  // steady-clock, comparable within one process
  uint64_t end_ns = 0;
  uint32_t tid = 0;  // collector-assigned thread number
  uint32_t note_count = 0;
  std::array<const char*, kMaxNotes> note_keys{};
  std::array<uint64_t, kMaxNotes> note_values{};

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// Process-wide span sink: one fixed-size ring buffer per recording thread,
/// written lock-free by its owning thread (a seqlock per slot, all fields
/// atomic, relaxed stores bracketed by acquire/release on the slot
/// sequence) and read by Collect() from any thread without stopping
/// writers. Old spans are overwritten once a thread's ring wraps — the
/// collector is a flight recorder, not a durable log.
class SpanCollector {
 public:
  static constexpr size_t kRingSlots = 1024;  // per recording thread

  static SpanCollector& Global();

  /// Records one finished span into the calling thread's ring. Callers go
  /// through ScopedSpan; direct use is for tests.
  void Record(const SpanRecord& record);

  /// Every intact span currently in any ring, oldest first. Spans being
  /// overwritten mid-read are skipped (detected via the slot seqlock).
  std::vector<SpanRecord> Collect() const;

  /// Spans of one trace only, oldest first.
  std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const;

  /// Logically empties the collector (old spans stop being visible to
  /// Collect; rings are not touched, so concurrent writers are unaffected).
  void Clear();

  /// Spans recorded since process start (including overwritten ones).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Renders `spans` as Chrome trace-event JSON ("traceEvents" array of
  /// complete "X" events; load in chrome://tracing or Perfetto).
  static std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

 private:
  struct Slot;
  struct ThreadBuffer;

  SpanCollector();
  ~SpanCollector() = delete;  // process-lifetime singleton

  ThreadBuffer& LocalBuffer();
  void CollectInto(std::vector<SpanRecord>* out, uint64_t trace_filter,
                   bool filter) const;

  mutable std::mutex mu_;  // guards buffers_ registration, not recording
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint64_t> epoch_{1};  // Clear() bumps; stale slots are hidden
  std::atomic<uint64_t> recorded_{0};
};

/// The calling thread's current trace context (invalid when no sampled
/// span is open on this thread).
TraceContext CurrentContext();

/// Mints a fresh sampled root context. Open the first span with
/// `ScopedSpan span("client.call", StartTrace());`.
TraceContext StartTrace();

/// RAII span: opens on construction, records into SpanCollector::Global()
/// on destruction, and makes itself the thread's current context in
/// between so nested spans (and SSE_LOG lines) attach to it. Inactive —
/// a no-op beyond one branch — when the parent context is not sampled.
class ScopedSpan {
 public:
  /// Child of the thread's current context.
  explicit ScopedSpan(const char* name) : ScopedSpan(name, CurrentContext()) {}
  /// Child of an explicit parent — for crossing threads (worker-pool
  /// tasks) and for re-rooting at a wire message's trace header.
  ScopedSpan(const char* name, const TraceContext& parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a (key, value) note; keys must be string literals. Beyond
  /// SpanRecord::kMaxNotes notes are dropped.
  void Annotate(const char* key, uint64_t value);

  bool active() const { return active_; }
  /// This span's own context (what children should parent to).
  const TraceContext& context() const { return context_; }

 private:
  bool active_ = false;
  TraceContext context_;   // trace_id + our span_id
  TraceContext saved_;     // thread-local current to restore
  SpanRecord record_;
};

/// Wire helpers: the trace header travels on net::Message behind
/// net::kMsgFlagTrace (trace_id ‖ sender span id ‖ flags).

/// Stamps `msg` with `ctx` (no-op when ctx is inactive, so unsampled
/// traffic stays byte-identical to pre-trace builds).
void StampMessage(net::Message* msg, const TraceContext& ctx);

/// The context a server-side span should parent to for `msg`: the
/// message's trace header, or an invalid context when unstamped.
TraceContext ContextOf(const net::Message& msg);

/// Effective parent for handler code that may sit behind either an
/// in-process call chain (thread-local current is already set) or a
/// decoded wire message (current is empty, the header has the context).
TraceContext ParentFor(const net::Message& msg);

}  // namespace sse::obs

#endif  // SSE_OBS_TRACE_H_
