// End-to-end request tracing: span recording and parenting, the wire
// trace header, propagation through the retry layer under chaos (attempt
// annotations, no trace-id corruption), through batch envelopes, and the
// full client → TCP → engine → WAL span tree with its Chrome trace-event
// export. The ConcurrentRecordCollect case is the TSan target for the
// lock-free collector.

#include "sse/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/scheme1_client.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/chaos.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "test_util.h"

namespace sse {
namespace {

using obs::ScopedSpan;
using obs::SpanCollector;
using obs::SpanRecord;
using obs::TraceContext;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

std::set<std::string> NamesOf(const std::vector<SpanRecord>& spans) {
  std::set<std::string> names;
  for (const SpanRecord& s : spans) names.insert(s.name);
  return names;
}

const SpanRecord* FindByName(const std::vector<SpanRecord>& spans,
                             const char* name) {
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == name) return &s;
  }
  return nullptr;
}

bool HasNote(const SpanRecord& span, const char* key, uint64_t* value) {
  for (uint32_t i = 0; i < span.note_count; ++i) {
    if (std::string(span.note_keys[i]) == key) {
      if (value != nullptr) *value = span.note_values[i];
      return true;
    }
  }
  return false;
}

TEST(ObsTraceTest, NestedSpansRecordWithParentLinks) {
  SpanCollector::Global().Clear();
  TraceContext root_ctx = obs::StartTrace();
  uint64_t outer_id = 0;
  {
    ScopedSpan outer("test.outer", root_ctx);
    ASSERT_TRUE(outer.active());
    outer_id = outer.context().span_id;
    outer.Annotate("answer", 42);
    ScopedSpan inner("test.inner");  // parents to thread-local current
    EXPECT_EQ(inner.context().trace_id, root_ctx.trace_id);
  }
  // Thread-local current is restored after the spans close.
  EXPECT_FALSE(obs::CurrentContext().active());

  const auto spans = SpanCollector::Global().CollectTrace(root_ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* outer = FindByName(spans, "test.outer");
  const SpanRecord* inner = FindByName(spans, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->span_id, outer_id);
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_GE(outer->end_ns, inner->end_ns);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  uint64_t note = 0;
  EXPECT_TRUE(HasNote(*outer, "answer", &note));
  EXPECT_EQ(note, 42u);
}

TEST(ObsTraceTest, UnsampledSpansRecordNothing) {
  SpanCollector::Global().Clear();
  const uint64_t before = SpanCollector::Global().recorded();
  {
    ScopedSpan span("test.unsampled");  // no trace started on this thread
    EXPECT_FALSE(span.active());
    span.Annotate("ignored", 1);
  }
  EXPECT_EQ(SpanCollector::Global().recorded(), before);
  EXPECT_TRUE(SpanCollector::Global().Collect().empty());
}

TEST(ObsTraceTest, ClearHidesOldSpansAndKeepsNewOnes) {
  SpanCollector::Global().Clear();
  TraceContext ctx = obs::StartTrace();
  { ScopedSpan span("test.old", ctx); }
  ASSERT_EQ(SpanCollector::Global().Collect().size(), 1u);
  SpanCollector::Global().Clear();
  EXPECT_TRUE(SpanCollector::Global().Collect().empty());
  { ScopedSpan span("test.new", ctx); }
  const auto spans = SpanCollector::Global().Collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), "test.new");
}

TEST(ObsTraceTest, TraceHeaderSurvivesEncodeDecodeWithSession) {
  net::Message msg;
  msg.type = net::kMsgPutDocument;
  msg.payload = StringToBytes("payload-bytes");
  msg.StampSession(/*client=*/7, /*sequence=*/9);

  TraceContext ctx;
  ctx.trace_id = 0xdeadbeefcafe1234ull;
  ctx.span_id = 0x42ull;
  ctx.sampled = true;
  obs::StampMessage(&msg, ctx);
  ASSERT_TRUE(msg.has_trace);

  auto decoded = net::Message::Decode(msg.Encode());
  SSE_ASSERT_OK_RESULT(decoded);
  EXPECT_EQ(decoded->type, net::kMsgPutDocument);
  EXPECT_TRUE(decoded->has_session);  // CRC still validates with the header
  EXPECT_EQ(decoded->seq, 9u);
  const TraceContext wire = obs::ContextOf(*decoded);
  EXPECT_EQ(wire.trace_id, ctx.trace_id);
  EXPECT_EQ(wire.span_id, ctx.span_id);
  EXPECT_TRUE(wire.sampled);

  // Unstamped messages decode to an inactive context and cost no bytes.
  net::Message plain;
  plain.type = net::kMsgPutDocument;
  plain.payload = msg.payload;
  EXPECT_FALSE(obs::ContextOf(plain).active());
  EXPECT_EQ(plain.WireSize() + net::Message::kTraceHeaderSize +
                net::Message::kSessionHeaderSize,
            msg.WireSize());
}

TEST(ObsTraceTest, StampingIsANoOpForUnsampledContext) {
  net::Message msg;
  msg.type = net::kMsgPutDocument;
  obs::StampMessage(&msg, TraceContext{});
  EXPECT_FALSE(msg.has_trace);
}

TEST(ObsTraceTest, PropagationSurvivesRetriesUnderChaos) {
  SpanCollector::Global().Clear();
  core::SystemConfig config = FastTestConfig();
  config.engine_shards = 2;

  DeterministicRandom rng(11);
  core::SseSystem sys =
      sse::testing::MakeTestSystem(core::SystemKind::kScheme1, &rng, config);
  net::ChaosOptions chaos_opts;
  chaos_opts.seed = 11;
  chaos_opts.p_request_drop = 0.25;
  chaos_opts.p_reply_drop = 0.25;
  chaos_opts.p_request_corrupt = 0.1;
  net::ChaosChannel chaos(sys.channel.get(), chaos_opts);
  chaos.set_sleep_fn([](double) {});
  net::RetryOptions retry_opts;
  retry_opts.max_attempts = 64;
  retry_opts.initial_backoff_ms = 0.01;
  retry_opts.max_backoff_ms = 0.1;
  net::RetryingChannel retry(&chaos, retry_opts, &rng);
  retry.set_sleep_fn([](double) {});
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), config.scheme, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  TraceContext root_ctx = obs::StartTrace();
  {
    ScopedSpan root("test.chaos_ops", root_ctx);
    for (uint64_t id = 0; id < 12; ++id) {
      SSE_ASSERT_OK((*client)->Store({core::Document::Make(
          id, "doc", {"kw" + std::to_string(id % 3)})}));
    }
    auto outcome = (*client)->Search("kw1");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_FALSE(outcome->ids.empty());
  }
  ASSERT_GT(retry.retry_stats().retries, 0u) << "chaos did not bite";

  const auto spans = SpanCollector::Global().CollectTrace(root_ctx.trace_id);
  const auto names = NamesOf(spans);
  EXPECT_TRUE(names.count("rpc.call")) << "got: " << names.size();
  EXPECT_TRUE(names.count("rpc.attempt"));
  EXPECT_TRUE(names.count("engine.handle"));
  EXPECT_TRUE(names.count("engine.shard"));

  // Every attempt span is annotated with its attempt number, and retries
  // show up as attempt >= 2 under the *same* trace — the retry loop
  // re-stamps the trace header without corrupting the trace id.
  uint64_t max_attempt = 0;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root_ctx.trace_id);
    if (std::string(s.name) == "rpc.attempt") {
      uint64_t attempt = 0;
      EXPECT_TRUE(HasNote(s, "attempt", &attempt));
      max_attempt = std::max(max_attempt, attempt);
    }
  }
  EXPECT_GE(max_attempt, 2u);

  // Spans recorded for other traces (none started) or corrupted ids would
  // show up here: everything recorded belongs to our one trace.
  for (const SpanRecord& s : SpanCollector::Global().Collect()) {
    EXPECT_EQ(s.trace_id, root_ctx.trace_id) << s.name;
  }
}

TEST(ObsTraceTest, PropagationThroughBatchEnvelopes) {
  SpanCollector::Global().Clear();
  core::SystemConfig config = FastTestConfig();
  config.engine_shards = 2;
  config.scheme.batch_ops = true;

  DeterministicRandom rng(13);
  core::SseSystem sys =
      sse::testing::MakeTestSystem(core::SystemKind::kScheme1, &rng, config);
  net::RetryOptions retry_opts;
  retry_opts.batch_size = 4;
  retry_opts.max_inflight = 2;
  net::RetryingChannel retry(sys.channel.get(), retry_opts, &rng);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), config.scheme, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  TraceContext root_ctx = obs::StartTrace();
  {
    ScopedSpan root("test.batched", root_ctx);
    std::vector<core::Document> docs;
    for (uint64_t id = 0; id < 8; ++id) {
      docs.push_back(core::Document::Make(id, "doc", {"kw"}));
    }
    SSE_ASSERT_OK((*client)->Store(docs));
  }
  ASSERT_GT(retry.retry_stats().batches, 0u) << "batch path not exercised";

  const auto spans = SpanCollector::Global().CollectTrace(root_ctx.trace_id);
  const auto names = NamesOf(spans);
  EXPECT_TRUE(names.count("rpc.multicall"));
  EXPECT_TRUE(names.count("rpc.envelope"));
  EXPECT_TRUE(names.count("engine.batch_op"));
  const SpanRecord* envelope = FindByName(spans, "rpc.envelope");
  ASSERT_NE(envelope, nullptr);
  EXPECT_TRUE(HasNote(*envelope, "ops", nullptr));
}

TEST(ObsTraceTest, FullStackSpanTreeOverTcpExportsChromeJson) {
  SpanCollector::Global().Clear();
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;

  engine::EngineOptions engine_opts;
  engine_opts.num_shards = 2;
  engine_opts.enable_reply_cache = false;  // durable shell provides dedup
  auto engine = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(options), engine_opts);
  SSE_ASSERT_OK_RESULT(engine);
  auto durable = core::DurableServer::Open(dir.path(), engine->get());
  SSE_ASSERT_OK_RESULT(durable);
  net::TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  auto tcp = net::TcpServer::Start(durable->get(), 0, server_opts);
  ASSERT_TRUE(tcp.ok());
  auto channel = net::TcpChannel::Connect((*tcp)->port());
  ASSERT_TRUE(channel.ok());

  DeterministicRandom rng(17);
  net::RetryingChannel retry(channel->get(), net::RetryOptions{}, &rng);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  TraceContext root_ctx = obs::StartTrace();
  {
    ScopedSpan root("test.traced_search", root_ctx);
    SSE_ASSERT_OK(
        (*client)->Store({core::Document::Make(0, "doc", {"needle"})}));
    auto outcome = (*client)->Search("needle");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  }

  const auto spans = SpanCollector::Global().CollectTrace(root_ctx.trace_id);
  const auto names = NamesOf(spans);
  // The acceptance tree: client call -> retry attempt -> frame send ->
  // server dispatch -> engine -> shard, plus WAL append for the update.
  for (const char* required :
       {"test.traced_search", "rpc.call", "rpc.attempt", "net.send_frame",
        "server.dispatch", "engine.handle", "engine.shard", "wal.append"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }

  // Parent links all resolve inside the trace: the tree is connected even
  // though client and server spans were recorded on different threads.
  std::set<uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span_id);
  for (const SpanRecord& s : spans) {
    if (s.parent_id == 0) {
      EXPECT_EQ(std::string(s.name), "test.traced_search");
    } else {
      EXPECT_TRUE(ids.count(s.parent_id))
          << s.name << " parent " << s.parent_id << " not in trace";
    }
  }

  // Chrome trace-event export: one complete event per span, structurally
  // valid JSON (balanced braces/brackets outside strings).
  const std::string json = SpanCollector::ToChromeTraceJson(spans);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 60);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"server.dispatch\""), std::string::npos);
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  const size_t events = [&] {
    size_t n = 0;
    for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"X\"", pos + 1)) {
      ++n;
    }
    return n;
  }();
  EXPECT_EQ(events, spans.size());
}

TEST(ObsTraceTest, ConcurrentRecordCollect) {
  // TSan target: writers hammer their per-thread rings (wrapping them
  // several times) while readers Collect and Clear concurrently. Collected
  // spans must always be intact — a torn read would surface as a mixed-up
  // name/id pair or inverted interval.
  SpanCollector::Global().Clear();
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 4000;  // ~4x ring capacity
  std::atomic<bool> stop{false};
  std::atomic<int> done{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &done] {
      TraceContext ctx = obs::StartTrace();
      for (int i = 0; i < kSpansPerWriter; ++i) {
        ScopedSpan span(w % 2 == 0 ? "test.even" : "test.odd", ctx);
        span.Annotate("i", static_cast<uint64_t>(i));
      }
      done.fetch_add(1);
    });
  }
  std::thread reader([&stop] {
    while (!stop.load()) {
      for (const SpanRecord& s : SpanCollector::Global().Collect()) {
        const std::string name = s.name;
        ASSERT_TRUE(name == "test.even" || name == "test.odd") << name;
        ASSERT_NE(s.trace_id, 0u);
        ASSERT_GE(s.end_ns, s.start_ns);
        ASSERT_LE(s.note_count, SpanRecord::kMaxNotes);
      }
    }
  });
  std::thread clearer([&stop] {
    while (!stop.load()) {
      SpanCollector::Global().Clear();
      std::this_thread::yield();
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  clearer.join();
  EXPECT_EQ(done.load(), kWriters);
  EXPECT_GE(SpanCollector::Global().recorded(),
            static_cast<uint64_t>(kWriters) * kSpansPerWriter);
}

}  // namespace
}  // namespace sse
