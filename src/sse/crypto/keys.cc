#include "sse/crypto/keys.h"

#include "sse/crypto/hkdf.h"
#include "sse/util/serde.h"

namespace sse::crypto {

Result<MasterKey> MasterKey::Generate(RandomSource& rng,
                                      size_t security_parameter) {
  if (security_parameter < 16) {
    return Status::InvalidArgument("security parameter must be >= 16 bytes");
  }
  Bytes k_m;
  SSE_ASSIGN_OR_RETURN(k_m, rng.Generate(security_parameter));
  Bytes k_w;
  SSE_ASSIGN_OR_RETURN(k_w, rng.Generate(security_parameter));
  return MasterKey(std::move(k_m), std::move(k_w));
}

Result<MasterKey> MasterKey::FromPassphrase(std::string_view passphrase) {
  if (passphrase.empty()) {
    return Status::InvalidArgument("passphrase is empty");
  }
  Bytes material;
  SSE_ASSIGN_OR_RETURN(
      material, HkdfSha256(StringToBytes(passphrase), /*salt=*/{},
                           "sse.master_key.v1", 2 * kMasterKeyPartSize));
  Bytes k_m(material.begin(), material.begin() + kMasterKeyPartSize);
  Bytes k_w(material.begin() + kMasterKeyPartSize, material.end());
  return MasterKey(std::move(k_m), std::move(k_w));
}

Result<MasterKey> MasterKey::Deserialize(BytesView data) {
  BufferReader r(data);
  Bytes k_m;
  SSE_ASSIGN_OR_RETURN(k_m, r.GetBytes(1024));
  Bytes k_w;
  SSE_ASSIGN_OR_RETURN(k_w, r.GetBytes(1024));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (k_m.size() < 16 || k_w.size() < 16) {
    return Status::Corruption("master key parts too short");
  }
  return MasterKey(std::move(k_m), std::move(k_w));
}

Bytes MasterKey::Serialize() const {
  BufferWriter w;
  w.PutBytes(k_m_);
  w.PutBytes(k_w_);
  return w.TakeData();
}

}  // namespace sse::crypto
