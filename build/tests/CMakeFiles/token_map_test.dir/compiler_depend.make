# Empty compiler generated dependencies file for token_map_test.
# This may be replaced when dependencies are built.
