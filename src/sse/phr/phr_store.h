#ifndef SSE_PHR_PHR_STORE_H_
#define SSE_PHR_PHR_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sse/core/types.h"
#include "sse/phr/record.h"

namespace sse::phr {

/// PHR⁺ — the privacy-enhanced personal health record application of §6,
/// layered over any of the library's SSE clients. The server (e.g. a cloud
/// provider) stores only ciphertext and searchable tokens; all record
/// parsing and keyword extraction happens client-side.
///
/// The two usage profiles from the paper map to the two schemes:
///  * traveler / journalist: reads from anywhere, rare updates → Scheme 1
///    (cheapest search computation; the extra round trip is fine on a
///    broadband link).
///  * general practitioner: update after every visit, search before the
///    next one → Scheme 2 (one-round search, minimal update bandwidth;
///    the search/update interleaving is exactly Optimization 2's best case).
class PhrStore {
 public:
  /// `client` must outlive the store.
  explicit PhrStore(core::SseClientInterface* client);

  /// Stores a batch of records; assigns fresh document ids.
  Status AddRecords(const std::vector<PatientRecord>& records);
  Status AddRecord(const PatientRecord& record);

  /// All records of one patient.
  Result<std::vector<PatientRecord>> FindByPatient(std::string_view patient_id);
  /// All records mentioning a diagnosed condition.
  Result<std::vector<PatientRecord>> FindByCondition(
      std::string_view condition);
  /// All records prescribing a medication.
  Result<std::vector<PatientRecord>> FindByMedication(
      std::string_view medication);
  /// Free-text search over note tokens.
  Result<std::vector<PatientRecord>> FindByNoteTerm(std::string_view term);

  /// Number of records stored through this handle.
  uint64_t record_count() const { return next_id_; }

 private:
  Result<std::vector<PatientRecord>> SearchTag(std::string_view ns,
                                               std::string_view value);

  core::SseClientInterface* client_;
  uint64_t next_id_ = 0;
};

}  // namespace sse::phr

#endif  // SSE_PHR_PHR_STORE_H_
