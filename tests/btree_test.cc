#include "sse/index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "sse/util/random.h"

namespace sse::index {
namespace {

Bytes Key(const std::string& s) { return StringToBytes(s); }

TEST(BTreeTest, EmptyTree) {
  BTreeMap<int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Get(Key("missing")), nullptr);
  EXPECT_FALSE(tree.Erase(Key("missing")));
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(BTreeTest, PutGetSingle) {
  BTreeMap<int> tree;
  EXPECT_TRUE(tree.Put(Key("a"), 1));
  ASSERT_NE(tree.Get(Key("a")), nullptr);
  EXPECT_EQ(*tree.Get(Key("a")), 1);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, PutReplacesExisting) {
  BTreeMap<int> tree;
  EXPECT_TRUE(tree.Put(Key("a"), 1));
  EXPECT_FALSE(tree.Put(Key("a"), 2));  // replace, not insert
  EXPECT_EQ(*tree.Get(Key("a")), 2);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, GetMutable) {
  BTreeMap<int> tree;
  tree.Put(Key("x"), 5);
  int* v = tree.GetMutable(Key("x"));
  ASSERT_NE(v, nullptr);
  *v = 9;
  EXPECT_EQ(*tree.Get(Key("x")), 9);
}

TEST(BTreeTest, ManyInsertsAllRetrievable) {
  BTreeMap<int> tree(/*order=*/8);  // small order forces deep splits
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    tree.Put(Key("key" + std::to_string(i)), i);
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int* v = tree.Get(Key("key" + std::to_string(i)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_GT(tree.Height(), 2u);
}

TEST(BTreeTest, InOrderIteration) {
  BTreeMap<int> tree(8);
  DeterministicRandom rng(42);
  std::map<std::string, int> reference;
  for (int i = 0; i < 1000; ++i) {
    std::string k = "k" + std::to_string(rng.Next() % 10000);
    tree.Put(Key(k), i);
    reference[k] = i;
  }
  EXPECT_EQ(tree.size(), reference.size());
  std::vector<std::pair<std::string, int>> visited;
  tree.ForEach([&](const Bytes& key, const int& value) {
    visited.emplace_back(BytesToString(key), value);
    return true;
  });
  ASSERT_EQ(visited.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, v] : visited) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(BTreeTest, ForEachEarlyStop) {
  BTreeMap<int> tree;
  for (int i = 0; i < 100; ++i) tree.Put(Key("k" + std::to_string(i)), i);
  int count = 0;
  tree.ForEach([&](const Bytes&, const int&) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

TEST(BTreeTest, ForEachMutable) {
  BTreeMap<int> tree;
  for (int i = 0; i < 50; ++i) tree.Put(Key("k" + std::to_string(i)), i);
  tree.ForEachMutable([](const Bytes&, int& v) {
    v *= 2;
    return true;
  });
  EXPECT_EQ(*tree.Get(Key("k7")), 14);
}

TEST(BTreeTest, EraseAtLeaf) {
  BTreeMap<int> tree(8);
  for (int i = 0; i < 200; ++i) tree.Put(Key("k" + std::to_string(i)), i);
  EXPECT_TRUE(tree.Erase(Key("k100")));
  EXPECT_EQ(tree.Get(Key("k100")), nullptr);
  EXPECT_FALSE(tree.Erase(Key("k100")));
  EXPECT_EQ(tree.size(), 199u);
  // Other keys unaffected.
  EXPECT_NE(tree.Get(Key("k101")), nullptr);
}

TEST(BTreeTest, RandomizedAgainstStdMap) {
  BTreeMap<std::string> tree(16);
  std::map<std::string, std::string> reference;
  DeterministicRandom rng(7);
  for (int op = 0; op < 20000; ++op) {
    const std::string k = "key" + std::to_string(rng.Next() % 2000);
    const int action = rng.Next() % 10;
    if (action < 6) {  // put
      const std::string v = "v" + std::to_string(op);
      tree.Put(Key(k), v);
      reference[k] = v;
    } else if (action < 8) {  // get
      const std::string* got = tree.Get(Key(k));
      auto it = reference.find(k);
      if (it == reference.end()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, it->second);
      }
    } else {  // erase
      EXPECT_EQ(tree.Erase(Key(k)), reference.erase(k) > 0);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
}

TEST(BTreeTest, LogarithmicComparisons) {
  // The paper's complexity claim: lookups cost O(log u) comparisons.
  // Compare measured comparisons at u and 16u: the ratio must be far
  // below the linear factor 16.
  auto measure = [](size_t u) {
    BTreeMap<int> tree(64);
    DeterministicRandom rng(3);
    for (size_t i = 0; i < u; ++i) {
      Bytes key(32);
      (void)rng.Fill(key);
      tree.Put(key, static_cast<int>(i));
    }
    // Probe with fresh random keys (misses descend the full height too).
    tree.ResetStats();
    const int probes = 200;
    DeterministicRandom probe_rng(4);
    for (int i = 0; i < probes; ++i) {
      Bytes key(32);
      (void)probe_rng.Fill(key);
      tree.Get(key);
    }
    return static_cast<double>(tree.comparisons()) / probes;
  };
  const double small = measure(1000);
  const double large = measure(16000);
  EXPECT_LT(large / small, 3.0) << "small=" << small << " large=" << large;
  EXPECT_GT(large, small);  // still grows (logarithmically)
}

TEST(BTreeTest, BinaryKeysWithEmbeddedZeros) {
  BTreeMap<int> tree;
  Bytes k1{0, 0, 1};
  Bytes k2{0, 0, 2};
  Bytes k3{0};
  tree.Put(k1, 1);
  tree.Put(k2, 2);
  tree.Put(k3, 3);
  EXPECT_EQ(*tree.Get(k1), 1);
  EXPECT_EQ(*tree.Get(k2), 2);
  EXPECT_EQ(*tree.Get(k3), 3);
}

TEST(BTreeTest, ClearResets) {
  BTreeMap<int> tree;
  for (int i = 0; i < 100; ++i) tree.Put(Key(std::to_string(i)), i);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Get(Key("5")), nullptr);
  tree.Put(Key("5"), 5);
  EXPECT_EQ(*tree.Get(Key("5")), 5);
}

TEST(BTreeTest, MoveOnlyValues) {
  BTreeMap<std::unique_ptr<int>> tree;
  tree.Put(Key("p"), std::make_unique<int>(11));
  const std::unique_ptr<int>* v = tree.Get(Key("p"));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(**v, 11);
}

}  // namespace
}  // namespace sse::index
