#include "sse/repl/messages.h"

#include <utility>

#include "sse/util/serde.h"

namespace sse::repl {

net::Message ReplAppend::ToMessage() const {
  BufferWriter w;
  w.PutU64(epoch);
  w.PutU64(first_seq);
  w.PutVarint(records.size());
  for (const Bytes& record : records) w.PutBytes(record);
  return net::Message{net::kMsgReplAppend, w.TakeData()};
}

Result<ReplAppend> ReplAppend::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgReplAppend) {
    return Status::InvalidArgument("not a ReplAppend message");
  }
  BufferReader r(msg.payload);
  ReplAppend out;
  SSE_ASSIGN_OR_RETURN(out.epoch, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.first_seq, r.GetU64());
  uint64_t n = 0;
  SSE_ASSIGN_OR_RETURN(n, r.GetVarint());
  out.records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Bytes record;
    SSE_ASSIGN_OR_RETURN(record, r.GetBytes());
    out.records.push_back(std::move(record));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message ReplAck::ToMessage() const {
  BufferWriter w;
  w.PutU64(epoch);
  w.PutU64(next_seq);
  w.PutBool(accepted);
  return net::Message{net::kMsgReplAck, w.TakeData()};
}

Result<ReplAck> ReplAck::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgReplAck) {
    return Status::InvalidArgument("not a ReplAck message");
  }
  BufferReader r(msg.payload);
  ReplAck out;
  SSE_ASSIGN_OR_RETURN(out.epoch, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.next_seq, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.accepted, r.GetBool());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message ReplSnapshot::ToMessage() const {
  BufferWriter w;
  w.PutU64(epoch);
  w.PutU64(cut_seq);
  w.PutBytes(blob);
  return net::Message{net::kMsgReplSnapshot, w.TakeData()};
}

Result<ReplSnapshot> ReplSnapshot::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgReplSnapshot) {
    return Status::InvalidArgument("not a ReplSnapshot message");
  }
  BufferReader r(msg.payload);
  ReplSnapshot out;
  SSE_ASSIGN_OR_RETURN(out.epoch, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.cut_seq, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.blob, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message ReplPromote::ToMessage() const {
  BufferWriter w;
  w.PutU64(min_epoch);
  return net::Message{net::kMsgReplPromote, w.TakeData()};
}

Result<ReplPromote> ReplPromote::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgReplPromote) {
    return Status::InvalidArgument("not a ReplPromote message");
  }
  BufferReader r(msg.payload);
  ReplPromote out;
  SSE_ASSIGN_OR_RETURN(out.min_epoch, r.GetU64());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace sse::repl
