# Empty dependencies file for prf_test.
# This may be replaced when dependencies are built.
