#include "sse/storage/log_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

Bytes Key(const std::string& s) { return StringToBytes(s); }

TEST(LogStoreTest, PutGetRoundTrip) {
  TempDir dir;
  auto store = LogStore::Open(dir.path() + "/data.log");
  ASSERT_TRUE(store.ok());
  SSE_ASSERT_OK((*store)->Put(Key("doc1"), Key("ciphertext-1")));
  SSE_ASSERT_OK((*store)->Put(Key("doc2"), Key("ciphertext-2")));
  auto v1 = (*store)->Get(Key("doc1"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(BytesToString(*v1), "ciphertext-1");
  EXPECT_TRUE((*store)->Contains(Key("doc2")));
  EXPECT_FALSE((*store)->Contains(Key("doc3")));
  EXPECT_EQ((*store)->Get(Key("doc3")).status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->live_keys(), 2u);
}

TEST(LogStoreTest, OverwriteKeepsNewestAndTracksGarbage) {
  TempDir dir;
  auto store = LogStore::Open(dir.path() + "/data.log");
  ASSERT_TRUE(store.ok());
  SSE_ASSERT_OK((*store)->Put(Key("k"), Bytes(100, 1)));
  EXPECT_EQ((*store)->garbage_bytes(), 0u);
  SSE_ASSERT_OK((*store)->Put(Key("k"), Bytes(50, 2)));
  EXPECT_GT((*store)->garbage_bytes(), 100u);
  auto v = (*store)->Get(Key("k"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Bytes(50, 2));
  EXPECT_EQ((*store)->live_keys(), 1u);
}

TEST(LogStoreTest, DeleteAddsTombstone) {
  TempDir dir;
  auto store = LogStore::Open(dir.path() + "/data.log");
  ASSERT_TRUE(store.ok());
  SSE_ASSERT_OK((*store)->Put(Key("k"), Key("v")));
  auto deleted = (*store)->Delete(Key("k"));
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  EXPECT_FALSE((*store)->Contains(Key("k")));
  auto again = (*store)->Delete(Key("k"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  // Deleted key stays deleted across reopen (the tombstone persists).
}

TEST(LogStoreTest, RecoveryAcrossReopen) {
  TempDir dir;
  const std::string path = dir.path() + "/data.log";
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    SSE_ASSERT_OK((*store)->Put(Key("a"), Key("1")));
    SSE_ASSERT_OK((*store)->Put(Key("b"), Key("2")));
    SSE_ASSERT_OK((*store)->Put(Key("a"), Key("1-updated")));
    ASSERT_TRUE((*store)->Delete(Key("b")).ok());
    SSE_ASSERT_OK((*store)->Put(Key("c"), Key("3")));
    SSE_ASSERT_OK((*store)->Sync());
  }
  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->live_keys(), 2u);
  EXPECT_EQ(BytesToString(*(*store)->Get(Key("a"))), "1-updated");
  EXPECT_FALSE((*store)->Contains(Key("b")));
  EXPECT_EQ(BytesToString(*(*store)->Get(Key("c"))), "3");
  EXPECT_GT((*store)->garbage_bytes(), 0u);  // superseded + tombstone
}

TEST(LogStoreTest, TornTailTruncatedOnOpen) {
  TempDir dir;
  const std::string path = dir.path() + "/data.log";
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    SSE_ASSERT_OK((*store)->Put(Key("good"), Bytes(64, 7)));
    SSE_ASSERT_OK((*store)->Put(Key("torn"), Bytes(64, 8)));
    SSE_ASSERT_OK((*store)->Sync());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  ASSERT_EQ(ftruncate(fileno(f), std::ftell(f) - 10), 0);
  std::fclose(f);

  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->live_keys(), 1u);
  EXPECT_TRUE((*store)->Contains(Key("good")));
  // New appends after the truncation are cleanly framed.
  SSE_ASSERT_OK((*store)->Put(Key("after"), Key("x")));
  auto reopened = LogStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->live_keys(), 2u);
}

TEST(LogStoreTest, MidFileCorruptionReported) {
  TempDir dir;
  const std::string path = dir.path() + "/data.log";
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    SSE_ASSERT_OK((*store)->Put(Key("first"), Bytes(32, 1)));
    SSE_ASSERT_OK((*store)->Put(Key("second"), Bytes(32, 2)));
    SSE_ASSERT_OK((*store)->Sync());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 10, SEEK_SET);  // inside the first record's payload
  std::fputc(0xee, f);
  std::fclose(f);
  auto store = LogStore::Open(path);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST(LogStoreTest, CompactReclaimsGarbage) {
  TempDir dir;
  const std::string path = dir.path() + "/data.log";
  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 20; ++k) {
      SSE_ASSERT_OK((*store)->Put(Key("k" + std::to_string(k)),
                                  Bytes(200, static_cast<uint8_t>(round))));
    }
  }
  ASSERT_TRUE((*store)->Delete(Key("k0")).ok());
  const uint64_t before = (*store)->file_bytes();
  EXPECT_GT((*store)->garbage_bytes(), before / 2);

  SSE_ASSERT_OK((*store)->Compact());
  EXPECT_EQ((*store)->garbage_bytes(), 0u);
  EXPECT_LT((*store)->file_bytes(), before / 5);
  EXPECT_EQ((*store)->live_keys(), 19u);
  // Contents intact after compaction...
  EXPECT_EQ(*(*store)->Get(Key("k7")), Bytes(200, 9));
  // ...and still work after compaction + new writes + reopen.
  SSE_ASSERT_OK((*store)->Put(Key("post"), Key("compact")));
  auto reopened = LogStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->live_keys(), 20u);
  EXPECT_EQ(*(*reopened)->Get(Key("k7")), Bytes(200, 9));
  EXPECT_EQ(BytesToString(*(*reopened)->Get(Key("post"))), "compact");
}

TEST(LogStoreTest, ForEachVisitsLiveRecords) {
  TempDir dir;
  auto store = LogStore::Open(dir.path() + "/data.log");
  ASSERT_TRUE(store.ok());
  SSE_ASSERT_OK((*store)->Put(Key("a"), Key("1")));
  SSE_ASSERT_OK((*store)->Put(Key("b"), Key("2")));
  ASSERT_TRUE((*store)->Delete(Key("a")).ok());
  std::map<std::string, std::string> seen;
  SSE_ASSERT_OK((*store)->ForEach([&](BytesView key, BytesView value) {
    seen[BytesToString(key)] = BytesToString(value);
    return Status::OK();
  }));
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen["b"], "2");
}

TEST(LogStoreTest, BinaryKeysAndLargeValues) {
  TempDir dir;
  auto store = LogStore::Open(dir.path() + "/data.log");
  ASSERT_TRUE(store.ok());
  Bytes key{0x00, 0xff, 0x00, 0x01};
  DeterministicRandom rng(5);
  Bytes value(1 << 20);
  ASSERT_TRUE(rng.Fill(value).ok());
  SSE_ASSERT_OK((*store)->Put(key, value));
  auto got = (*store)->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
  EXPECT_TRUE((*store)->Put(key, Bytes{}).ok());  // empty value allowed
  EXPECT_TRUE((*store)->Get(key)->empty());
}

TEST(LogStoreTest, RandomizedAgainstStdMap) {
  TempDir dir;
  const std::string path = dir.path() + "/data.log";
  std::map<std::string, Bytes> reference;
  DeterministicRandom rng(77);
  auto store_result = LogStore::Open(path);
  ASSERT_TRUE(store_result.ok());
  std::unique_ptr<LogStore> store = std::move(store_result).value();

  for (int op = 0; op < 2000; ++op) {
    const std::string key = "key" + std::to_string(rng.Next() % 100);
    const int action = rng.Next() % 10;
    if (action < 5) {
      Bytes value(rng.Next() % 300);
      ASSERT_TRUE(rng.Fill(value).ok());
      SSE_ASSERT_OK(store->Put(StringToBytes(key), value));
      reference[key] = value;
    } else if (action < 7) {
      auto deleted = store->Delete(StringToBytes(key));
      ASSERT_TRUE(deleted.ok());
      EXPECT_EQ(*deleted, reference.erase(key) > 0);
    } else if (action < 9) {
      auto got = store->Get(StringToBytes(key));
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    } else if (op % 500 == 499) {
      SSE_ASSERT_OK(store->Compact());
    }
    // Periodically crash-recover.
    if (op % 700 == 699) {
      store.reset();
      auto reopened = LogStore::Open(path);
      ASSERT_TRUE(reopened.ok());
      store = std::move(reopened).value();
    }
  }
  EXPECT_EQ(store->live_keys(), reference.size());
  for (const auto& [key, value] : reference) {
    auto got = store->Get(StringToBytes(key));
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

}  // namespace
}  // namespace sse::storage
