#ifndef SSE_CORE_SCHEME1_CLIENT_H_
#define SSE_CORE_SCHEME1_CLIENT_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/types.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/elgamal.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"

namespace sse::core {

/// The client of Scheme 1 (paper §5.2).
///
/// Holds the master key `K = (k_m, k_w)` and drives the two-round update
/// (Fig. 1) and two-round search (Fig. 2) protocols over a channel. The
/// client is nearly stateless: everything it needs per keyword (the nonce
/// `r`) is fetched from the server as `F(r)` and decrypted with the ElGamal
/// secret derived from `k_w`. Locally it only remembers which document ids
/// were already used, because the XOR-delta update would silently *remove*
/// an id that is added twice.
class Scheme1Client : public SseClientInterface {
 public:
  /// `channel` must outlive the client. `rng` supplies nonces and AEAD IVs.
  static Result<std::unique_ptr<Scheme1Client>> Create(
      const crypto::MasterKey& key, const SchemeOptions& options,
      net::Channel* channel, RandomSource* rng);

  Status Store(const std::vector<Document>& docs) override;
  Result<SearchOutcome> Search(std::string_view keyword) override;
  /// With SchemeOptions::batch_ops, runs all K two-round searches as two
  /// pipelined MultiCall rounds (round 2 only for found keywords) instead
  /// of 2·K sequential round trips. Without it, falls back to the loop.
  Result<std::vector<SearchOutcome>> MultiSearch(
      const std::vector<std::string>& keywords) override;
  Status FakeUpdate(const std::vector<std::string>& keywords) override;
  std::string name() const override { return "scheme1"; }

  /// Toggles membership of existing documents: removes each id that
  /// currently matches `keyword`-style postings. Exposed as the library's
  /// document-removal primitive (XOR makes add and remove the same
  /// operation; the paper's U(w) "alters the content of the documents").
  Status RemoveDocument(uint64_t id, const std::vector<std::string>& keywords);

  /// Trapdoor(w): the search token f_{k_w}(w). Public for tests and the
  /// security harness.
  Result<Bytes> Trapdoor(std::string_view keyword) const;

  /// Reconnects the client to a new channel (e.g. after a server restart).
  void set_channel(net::Channel* channel) { channel_ = channel; }

  /// Serializes the client's only local state: the set of used document
  /// ids (guarding the XOR toggle against double-adds). Persist between
  /// sessions.
  Bytes SerializeState() const override;
  Status RestoreState(BytesView data) override;

 private:
  Scheme1Client(crypto::Prf prf, crypto::ElGamal elgamal, crypto::Aead aead,
                const SchemeOptions& options, net::Channel* channel,
                RandomSource* rng);

  /// One keyword's pending posting delta.
  struct PendingUpdate {
    std::string keyword;
    std::vector<uint64_t> ids;  // positions to toggle in I(w)
  };

  /// Runs the two-round Fig. 1 protocol for `updates` plus `documents`.
  /// With SchemeOptions::batch_ops each round is K per-keyword ops through
  /// the channel's MultiCall (batched + pipelined over a RetryingChannel);
  /// otherwise each round is one monolithic message.
  Status RunUpdateProtocol(const std::vector<PendingUpdate>& updates,
                           const std::vector<Document>& documents);

  /// Decodes an S1SearchResult message into ids + decrypted documents.
  Result<SearchOutcome> ParseSearchResult(const net::Message& msg);

  crypto::Prf prf_;
  crypto::ElGamal elgamal_;
  crypto::Aead aead_;
  SchemeOptions options_;
  net::Channel* channel_;
  RandomSource* rng_;
  std::set<uint64_t> used_ids_;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME1_CLIENT_H_
