#ifndef SSE_INDEX_BTREE_H_
#define SSE_INDEX_BTREE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sse/util/bytes.h"

namespace sse::index {

/// In-memory B+-tree mapping byte-string keys to values of type `V`.
///
/// This is the "tree structure for the searchable representations" the paper
/// assumes in §5.1: the server keys every `S(w)` entry by the 32-byte PRF
/// token `f_{k_w}(w)`, and a search costs one root-to-leaf descent —
/// `O(log u)` comparisons in the number `u` of unique keywords.
///
/// The tree tracks a comparison counter so the Table 1 benches can report
/// the paper's complexity claim directly (comparisons per lookup vs. `u`)
/// independent of wall-clock noise.
///
/// Writes require exclusive access; concurrent const reads are safe (the
/// comparison counter is atomic). The engine enforces this with per-shard
/// reader-writer locks.
template <typename V>
class BTreeMap {
 public:
  /// `order` = max children per internal node (max keys per leaf). 8..1024.
  explicit BTreeMap(size_t order = 64)
      : order_(order < 8 ? 8 : (order > 1024 ? 1024 : order)) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  BTreeMap(const BTreeMap&) = delete;
  BTreeMap& operator=(const BTreeMap&) = delete;
  // Moves are hand-written because the atomic counter is not movable.
  // Moving concurrently with readers is not supported (the engine swaps
  // trees only under an exclusive shard lock).
  BTreeMap(BTreeMap&& other) noexcept
      : order_(other.order_),
        root_(std::move(other.root_)),
        size_(other.size_),
        comparisons_(other.comparisons_.load(std::memory_order_relaxed)) {
    other.root_ = std::make_unique<Node>(/*leaf=*/true);
    other.size_ = 0;
  }
  BTreeMap& operator=(BTreeMap&& other) noexcept {
    if (this != &other) {
      order_ = other.order_;
      root_ = std::move(other.root_);
      size_ = other.size_;
      comparisons_.store(other.comparisons_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      other.root_ = std::make_unique<Node>(/*leaf=*/true);
      other.size_ = 0;
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts `value` under `key`, replacing any existing value.
  /// Returns true if the key was new.
  bool Put(BytesView key, V value) {
    InsertResult r = InsertRecursive(root_.get(), key, std::move(value));
    if (r.split) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(std::move(r.split_key));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.right));
      root_ = std::move(new_root);
    }
    if (r.inserted) ++size_;
    return r.inserted;
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  const V* Get(BytesView key) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    const size_t i = LowerBound(node, key);
    if (i < node->keys.size() && Equal(node->keys[i], key)) {
      return &node->values[i];
    }
    return nullptr;
  }

  V* GetMutable(BytesView key) {
    return const_cast<V*>(static_cast<const BTreeMap*>(this)->Get(key));
  }

  bool Contains(BytesView key) const { return Get(key) != nullptr; }

  /// Removes `key`. Returns true if it was present. Uses lazy deletion at
  /// the leaf (no rebalancing); fine for our workloads where deletions are
  /// rare relative to inserts, and keeps lookups correct regardless.
  bool Erase(BytesView key) {
    Node* node = root_.get();
    while (!node->leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    const size_t i = LowerBound(node, key);
    if (i < node->keys.size() && Equal(node->keys[i], key)) {
      node->keys.erase(node->keys.begin() + i);
      node->values.erase(node->values.begin() + i);
      --size_;
      return true;
    }
    return false;
  }

  void Clear() {
    root_ = std::make_unique<Node>(/*leaf=*/true);
    size_ = 0;
  }

  /// In-order visit of all (key, value) pairs. `fn` returning false stops
  /// the scan early.
  void ForEach(const std::function<bool(const Bytes&, const V&)>& fn) const {
    const Node* leaf = LeftmostLeaf();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Mutable variant of ForEach.
  void ForEachMutable(const std::function<bool(const Bytes&, V&)>& fn) {
    Node* leaf = LeftmostLeafMutable();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Height of the tree (1 for a lone leaf).
  size_t Height() const {
    size_t h = 1;
    const Node* node = root_.get();
    while (!node->leaf) {
      ++h;
      node = node->children[0].get();
    }
    return h;
  }

  /// Key comparisons performed since the last ResetStats().
  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  void ResetStats() { comparisons_.store(0, std::memory_order_relaxed); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Bytes> keys;
    // Internal nodes: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaves only:
    std::vector<V> values;
    Node* next = nullptr;  // leaf chain for in-order scans
  };

  struct InsertResult {
    bool inserted = false;
    bool split = false;
    Bytes split_key;
    std::unique_ptr<Node> right;
  };

  bool Equal(const Bytes& a, BytesView b) const {
    BumpComparisons();
    return Compare(a, b) == 0;
  }

  /// First index i with keys[i] >= key (binary search).
  size_t LowerBound(const Node* node, BytesView key) const {
    size_t lo = 0;
    size_t hi = node->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      BumpComparisons();
      if (Compare(node->keys[mid], key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child to descend into for `key` in an internal node. Separator keys
  /// satisfy: child i holds keys < keys[i]; child i+1 holds keys >= keys[i].
  size_t ChildIndex(const Node* node, BytesView key) const {
    size_t lo = 0;
    size_t hi = node->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      BumpComparisons();
      if (Compare(key, node->keys[mid]) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  InsertResult InsertRecursive(Node* node, BytesView key, V value) {
    InsertResult result;
    if (node->leaf) {
      const size_t i = LowerBound(node, key);
      if (i < node->keys.size() && Equal(node->keys[i], key)) {
        node->values[i] = std::move(value);
        return result;  // replaced, no structural change
      }
      node->keys.insert(node->keys.begin() + i, ToBytes(key));
      node->values.insert(node->values.begin() + i, std::move(value));
      result.inserted = true;
      if (node->keys.size() >= order_) SplitLeaf(node, result);
      return result;
    }
    const size_t ci = ChildIndex(node, key);
    InsertResult child = InsertRecursive(node->children[ci].get(), key,
                                         std::move(value));
    result.inserted = child.inserted;
    if (child.split) {
      node->keys.insert(node->keys.begin() + ci, std::move(child.split_key));
      node->children.insert(node->children.begin() + ci + 1,
                            std::move(child.right));
      if (node->keys.size() >= order_) SplitInternal(node, result);
    }
    return result;
  }

  void SplitLeaf(Node* node, InsertResult& result) {
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>(/*leaf=*/true);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                       std::make_move_iterator(node->keys.end()));
    right->values.assign(std::make_move_iterator(node->values.begin() + mid),
                         std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    result.split = true;
    result.split_key = right->keys.front();  // copy: separator = first right key
    result.right = std::move(right);
  }

  void SplitInternal(Node* node, InsertResult& result) {
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>(/*leaf=*/false);
    // Middle key moves up; keys after it and children after mid move right.
    result.split_key = std::move(node->keys[mid]);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    result.split = true;
    result.right = std::move(right);
  }

  const Node* LeftmostLeaf() const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children[0].get();
    return node;
  }

  Node* LeftmostLeafMutable() {
    Node* node = root_.get();
    while (!node->leaf) node = node->children[0].get();
    return node;
  }

  size_t order_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  // Atomic so concurrent readers (const Get under a shared lock in the
  // engine) can keep counting without a data race; relaxed is enough for a
  // statistics counter.
  void BumpComparisons() const {
    comparisons_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable std::atomic<uint64_t> comparisons_{0};
};

}  // namespace sse::index

#endif  // SSE_INDEX_BTREE_H_
