#ifndef SSE_NET_TCP_H_
#define SSE_NET_TCP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sse/net/channel.h"
#include "sse/util/result.h"

namespace sse::net {

/// Loopback/network transport for the protocols: a real TCP server serving
/// any `MessageHandler`, and a matching `Channel` client. Framing is a
/// little-endian u32 length prefix around `Message::Encode()` bytes — the
/// same bytes the in-process channel counts, so measurements transfer.
///
/// Connections are served concurrently (thread per connection). By default
/// the handler — a single-writer state machine for the plain scheme
/// servers — is protected by a per-server mutex, so requests from
/// different clients serialize at the dispatch point. A thread-safe
/// handler (engine::ServerEngine) opts out via
/// Options::serialize_handler=false, and concurrent connections then reach
/// the handler in parallel.
///
/// Each connection is served *pipelined* (Options::pipelined, default on):
/// a reader thread decodes frames continuously and hands them to a small
/// per-connection dispatch pool, replies are written as each completes
/// under a per-connection write lock — so a client with many in-flight
/// submissions keeps the wire and the handler busy at the same time,
/// instead of the old strict request→reply lockstep. Error replies echo
/// the request's session stamp (when one can be recovered) so a pipelined
/// client can correlate them with the call they answer. With a concurrent
/// handler, replies to *different* requests may be written out of
/// submission order; session-stamped clients match by (client_id, seq),
/// and un-stamped clients should keep at most one call in flight.
class TcpServer {
 public:
  struct Options {
    /// Serialize all Handle() calls on one mutex. Leave on for handlers
    /// that are not internally synchronized. (Pipelining still overlaps
    /// socket reads/writes with handling even when serialized.)
    bool serialize_handler = true;
    /// listen(2) backlog.
    int listen_backlog = 64;
    /// Serve each connection with a continuous reader + dispatch pool.
    /// Off restores the one-request-at-a-time lockstep loop.
    bool pipelined = true;
    /// Dispatch threads per connection (only with pipelined).
    size_t pipeline_workers = 4;
    /// Max decoded requests queued per connection before the reader stops
    /// pulling frames off the socket (backpressure via TCP flow control).
    size_t pipeline_queue = 64;
    /// Answer kMsgStats admin requests in the server itself (from the
    /// process-wide metrics registry and span collector) instead of
    /// forwarding them to the handler.
    bool serve_stats = true;
  };

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving `handler`
  /// on a background thread. `handler` must outlive the server.
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port = 0);
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port,
                                                  Options options);

  /// The actually bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the service thread. Idempotent; also run by
  /// the destructor.
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  TcpServer(MessageHandler* handler, int listen_fd, uint16_t port,
            Options options);
  void Serve();
  void ServeConnection(int fd);
  void ServeConnectionPipelined(int fd);
  /// Decode + handle one frame, producing the reply frame to write. Error
  /// replies are addressed with the request's session stamp when possible.
  Message HandleFrame(const Bytes& frame);

  MessageHandler* handler_;
  int listen_fd_;
  uint16_t port_;
  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread thread_;
  std::mutex handler_mutex_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::set<int> open_conns_;
};

/// Client channel over a TCP connection. One `Call` = one request/response
/// round trip on the persistent connection; `Submit`/`Await` pipeline many
/// calls over it at once. Submit writes the request frame immediately and
/// records the call as in flight; Await reads frames until the awaited
/// reply arrives, matching session-stamped replies to their submission by
/// the (client_id, seq) echo and buffering out-of-order arrivals.
/// Un-stamped replies are matched to the oldest in-flight call (FIFO),
/// which is only reliable against servers that reply in order — stamp
/// sessions (net::RetryingChannel does) for real pipelining. A transport
/// failure mid-pipeline fails every in-flight call, since frames after the
/// failure point cannot be trusted.
///
/// Every blocking step is bounded: connect uses a non-blocking dial with a
/// poll(2) deadline, send/recv carry SO_SNDTIMEO/SO_RCVTIMEO. An expired
/// timeout surfaces as DEADLINE_EXCEEDED, other socket failures as
/// IO_ERROR — both retryable. After any failure the connection is in an
/// unknown mid-frame state, so the channel marks it broken and (with
/// auto_reconnect, the default) transparently dials a fresh one on the
/// next Call; Reset() forces the same teardown, which is how the retry
/// layer flushes a stream that may hold a stale reply.
class TcpChannel : public Channel {
 public:
  struct Options {
    /// Per-step deadlines in milliseconds; 0 = unbounded (old behavior).
    double connect_timeout_ms = 5000.0;
    double send_timeout_ms = 5000.0;
    double recv_timeout_ms = 5000.0;
    /// Redial automatically on the first Call after a failure or Reset().
    bool auto_reconnect = true;
  };

  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to 127.0.0.1:`port` (or `host`).
  static Result<std::unique_ptr<TcpChannel>> Connect(
      uint16_t port, const std::string& host = "127.0.0.1");
  static Result<std::unique_ptr<TcpChannel>> Connect(uint16_t port,
                                                     const std::string& host,
                                                     Options options);

  Result<Message> Call(const Message& request) override;
  CallId Submit(const Message& request) override;
  Result<Message> Await(CallId id) override;
  size_t pending_calls() const override {
    return inflight_.size() + buffered_.size();
  }

  /// Tears the connection down; with auto_reconnect the next Call redials.
  /// In-flight submissions fail with UNAVAILABLE.
  void Reset() override;

  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

  bool connected() const { return fd_ >= 0; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  /// A submitted call awaiting its reply.
  struct Inflight {
    bool has_session = false;
    uint64_t client_id = 0;
    uint64_t seq = 0;
  };

  TcpChannel(int fd, std::string host, uint16_t port, Options options)
      : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

  /// Dials host_:port_ under connect_timeout_ms and applies the IO
  /// timeouts to the new socket.
  static Result<int> Dial(const std::string& host, uint16_t port,
                          const Options& options);
  /// Redials if the connection is broken (or fails if reconnects are off).
  Status EnsureConnected();
  /// Closes the socket and marks the channel broken.
  void MarkBroken();
  /// Fails every in-flight submission with `status` (the stream is gone).
  void FailInflight(const Status& status);
  /// Buffers `reply` as the completed result for call `id`, converting an
  /// application-level kMsgError into its embedded status (as Call does).
  void Complete(CallId id, Result<Message> reply);
  /// The in-flight call a decoded (or undecodable) frame answers, or 0.
  CallId MatchReply(const Message& reply) const;

  int fd_;
  std::string host_;
  uint16_t port_;
  Options options_;
  uint64_t reconnects_ = 0;
  ChannelStats stats_;
  std::map<CallId, Inflight> inflight_;
  std::deque<CallId> inflight_order_;  // submission order, for FIFO matching
};

}  // namespace sse::net

#endif  // SSE_NET_TCP_H_
