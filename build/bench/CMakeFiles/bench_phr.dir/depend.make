# Empty dependencies file for bench_phr.
# This may be replaced when dependencies are built.
