# Empty dependencies file for vault_admin.
# This may be replaced when dependencies are built.
