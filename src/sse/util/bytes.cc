#include "sse/util/bytes.h"

#include <algorithm>
#include <cstring>

namespace sse {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes ToBytes(BytesView view) { return Bytes(view.begin(), view.end()); }

Bytes StringToBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s.data()),
               reinterpret_cast<const uint8_t*>(s.data()) + s.size());
}

std::string BytesToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string HexEncode(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes Concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes Concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

Status XorInPlace(Bytes& dst, BytesView src) {
  if (dst.size() != src.size()) {
    return Status::InvalidArgument("XOR operands differ in size");
  }
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
  return Status::OK();
}

Result<Bytes> Xor(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("XOR operands differ in size");
  }
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

int Compare(BytesView a, BytesView b) {
  const size_t n = std::min(a.size(), b.size());
  if (n != 0) {
    int c = std::memcmp(a.data(), b.data(), n);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace sse
