#ifndef SSE_ENGINE_METRICS_H_
#define SSE_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sse/obs/histogram.h"

namespace sse::engine {

/// The histogram implementation moved to sse/obs so the net and storage
/// layers can share it; the engine API is unchanged.
using LatencyHistogram = ::sse::obs::LatencyHistogram;

/// Per-shard request counters (relaxed atomics, written by worker threads).
struct ShardCounters {
  std::atomic<uint64_t> reads{0};       // shared-lock requests handled
  std::atomic<uint64_t> writes{0};      // exclusive-lock requests handled
  std::atomic<uint64_t> errors{0};      // sub-requests that returned non-OK
};

struct ShardSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
};

struct MetricsSnapshot {
  std::vector<ShardSnapshot> shards;
  LatencyHistogram::Snapshot handle_latency;  // whole-request engine latency
  LatencyHistogram::Snapshot lock_wait;       // per-sub-request lock waits
  uint64_t requests = 0;
  uint64_t scatters = 0;    // requests split across >1 shard
  uint64_t broadcasts = 0;  // requests sent to every shard
  uint64_t batches = 0;     // kMsgBatch envelopes unpacked
  uint64_t batch_ops = 0;   // sub-ops carried inside those envelopes
  uint64_t doc_puts = 0;
  uint64_t doc_fetches = 0;
  /// True once the storage layer fail-stopped this engine to read-only.
  bool degraded = false;
  /// Storage faults observed (currently 0 or 1: the fault that degraded us).
  uint64_t storage_faults = 0;

  uint64_t total_reads() const;
  uint64_t total_writes() const;
  /// Multi-line human-readable report for the CLI and benches.
  std::string ToString() const;
};

/// All engine-level counters. One instance per ServerEngine; every field is
/// safe to mutate from any worker thread.
class EngineMetrics {
 public:
  explicit EngineMetrics(size_t num_shards) : shards_(num_shards) {}

  ShardCounters& shard(size_t i) { return shards_[i]; }
  LatencyHistogram& handle_latency() { return handle_latency_; }
  LatencyHistogram& lock_wait() { return lock_wait_; }

  void AddRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void AddScatter() { scatters_.fetch_add(1, std::memory_order_relaxed); }
  void AddBroadcast() { broadcasts_.fetch_add(1, std::memory_order_relaxed); }
  void AddBatch(uint64_t ops) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_ops_.fetch_add(ops, std::memory_order_relaxed);
  }
  void AddDocPuts(uint64_t n) {
    doc_puts_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDocFetches(uint64_t n) {
    doc_fetches_.fetch_add(n, std::memory_order_relaxed);
  }
  void SetDegraded() {
    storage_faults_.fetch_add(1, std::memory_order_relaxed);
    degraded_.store(true, std::memory_order_release);
  }
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  MetricsSnapshot Snap() const;

 private:
  std::vector<ShardCounters> shards_;
  LatencyHistogram handle_latency_;
  LatencyHistogram lock_wait_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> scatters_{0};
  std::atomic<uint64_t> broadcasts_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_ops_{0};
  std::atomic<uint64_t> doc_puts_{0};
  std::atomic<uint64_t> doc_fetches_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> storage_faults_{0};
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_METRICS_H_
