#include "sse/util/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sse/util/result.h"

namespace sse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NOT_FOUND"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "ALREADY_EXISTS"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {Status::CryptoError("f"), StatusCode::kCryptoError, "CRYPTO_ERROR"},
      {Status::ProtocolError("g"), StatusCode::kProtocolError,
       "PROTOCOL_ERROR"},
      {Status::IoError("h"), StatusCode::kIoError, "IO_ERROR"},
      {Status::Corruption("i"), StatusCode::kCorruption, "CORRUPTION"},
      {Status::ResourceExhausted("j"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {Status::Unimplemented("k"), StatusCode::kUnimplemented,
       "UNIMPLEMENTED"},
      {Status::Internal("l"), StatusCode::kInternal, "INTERNAL"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "UNAVAILABLE"},
      {Status::DeadlineExceeded("n"), StatusCode::kDeadlineExceeded,
       "DEADLINE_EXCEEDED"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("missing token");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Corruption("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::IoError("disk gone");
  EXPECT_EQ(os.str(), "IO_ERROR: disk gone");
}

TEST(StatusTest, IsRetryableCoversTransientTransportFailures) {
  EXPECT_TRUE(Status::Unavailable("peer down").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("too slow").IsRetryable());
  EXPECT_TRUE(Status::IoError("socket reset").IsRetryable());
}

TEST(StatusTest, IsRetryableExcludesApplicationVerdicts) {
  // Re-sending identical bytes cannot fix any of these; a retry layer must
  // surface them instead of burning attempts.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsRetryable());
  EXPECT_FALSE(Status::CryptoError("x").IsRetryable());
  EXPECT_FALSE(Status::ProtocolError("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fail = []() -> Status { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    SSE_RETURN_IF_ERROR(fail());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("bad");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    int v = 0;
    SSE_ASSIGN_OR_RETURN(v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace sse
