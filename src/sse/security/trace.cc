#include "sse/security/trace.h"

#include <algorithm>
#include <set>

namespace sse::security {

bool Trace::operator==(const Trace& other) const {
  return ids == other.ids && lengths == other.lengths &&
         unique_keywords == other.unique_keywords && results == other.results &&
         search_pattern == other.search_pattern;
}

Trace ComputeTrace(const History& history) {
  Trace trace;
  trace.ids.reserve(history.documents.size());
  trace.lengths.reserve(history.documents.size());
  std::set<std::string> vocabulary;
  for (const core::Document& doc : history.documents) {
    trace.ids.push_back(doc.id);
    trace.lengths.push_back(doc.content.size());
    vocabulary.insert(doc.keywords.begin(), doc.keywords.end());
  }
  trace.unique_keywords = vocabulary.size();

  for (const std::string& query : history.queries) {
    std::vector<uint64_t> matches;
    for (const core::Document& doc : history.documents) {
      if (std::find(doc.keywords.begin(), doc.keywords.end(), query) !=
          doc.keywords.end()) {
        matches.push_back(doc.id);
      }
    }
    std::sort(matches.begin(), matches.end());
    trace.results.push_back(std::move(matches));
  }

  const size_t q = history.queries.size();
  trace.search_pattern.assign(q, std::vector<bool>(q, false));
  for (size_t i = 0; i < q; ++i) {
    for (size_t j = 0; j < q; ++j) {
      trace.search_pattern[i][j] = history.queries[i] == history.queries[j];
    }
  }
  return trace;
}

}  // namespace sse::security
