#ifndef SSE_NET_DEADLINE_H_
#define SSE_NET_DEADLINE_H_

#include <cstdint>

#include "sse/net/message.h"

namespace sse::net {

/// Server-side view of a caller's remaining time budget. Carried on the
/// wire as a *relative* remaining-milliseconds header (net::Message
/// has_deadline/deadline_ms, behind kMsgFlagDeadline) and in memory via a
/// thread-local "current deadline" so handler layers — dispatch, engine
/// fan-out, durable commit — can ask "is this work already pointless?"
/// without threading a parameter through every signature.
///
/// The absolute expiry is anchored to the local steady clock at the
/// moment the frame is *observed* (arrival or decode), never to any
/// remote clock, so skew between endpoints cannot create false expiry.
/// A default-constructed Deadline is "none": Expired() is always false
/// and RemainingMs() is effectively unbounded.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline expiring `remaining_ms` after `anchor_ns` (steady clock).
  static Deadline FromRemainingMs(uint32_t remaining_ms, uint64_t anchor_ns);

  /// The deadline carried by `msg`, anchored at `anchor_ns` — typically
  /// the frame's arrival timestamp, so queue wait counts against the
  /// budget. None when the message carries no deadline header.
  static Deadline FromMessage(const Message& msg, uint64_t anchor_ns);

  /// Local steady-clock now, in nanoseconds (the anchor currency).
  static uint64_t NowNs();

  bool has_deadline() const { return expires_ns_ != 0; }
  uint64_t expires_ns() const { return expires_ns_; }

  /// True once the budget is spent. Always false for "none".
  bool Expired() const { return Expired(NowNs()); }
  bool Expired(uint64_t now_ns) const {
    return expires_ns_ != 0 && now_ns >= expires_ns_;
  }

  /// Remaining budget in ms (0 when expired); UINT32_MAX for "none".
  uint32_t RemainingMs() const { return RemainingMs(NowNs()); }
  uint32_t RemainingMs(uint64_t now_ns) const;

  /// Re-stamps `msg`'s deadline header with this deadline's remaining
  /// budget (strips the header when "none"). Safe on session-stamped
  /// messages: the header sits outside the payload CRC.
  void StampMessage(Message* msg) const;

 private:
  explicit Deadline(uint64_t expires_ns) : expires_ns_(expires_ns) {}

  uint64_t expires_ns_ = 0;  // 0 = no deadline
};

/// The calling thread's current deadline ("none" when no ScopedDeadline
/// is open on this thread).
Deadline CurrentDeadline();

/// RAII propagation: makes `deadline` the thread's current deadline for
/// its scope and restores the previous one on destruction — the same
/// shape as obs::ScopedSpan, and like it safe to nest (an engine batch op
/// running under a server dispatch scope sees the innermost deadline).
/// Cross-thread hops (worker-pool lambdas) capture CurrentDeadline() by
/// value and open a new scope on the worker, exactly like trace contexts.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const Deadline& deadline);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline saved_;
};

/// The standard verdict for work found expired: retryable — the caller's
/// retry layer decides whether *its* budget still allows another attempt.
Status DeadlineExceededStatus(const char* where);

}  // namespace sse::net

#endif  // SSE_NET_DEADLINE_H_
