#include "sse/crypto/elgamal.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::crypto {
namespace {

TEST(ElGamalTest, RoundTripToyGroup) {
  DeterministicRandom rng(1);
  auto eg = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg.ok());
  Bytes nonce(32, 0x5a);
  auto ct = eg->Encrypt(nonce, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = eg->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, nonce);
}

TEST(ElGamalTest, RoundTripAllGroups) {
  DeterministicRandom rng(2);
  for (auto group : {ElGamalGroupId::kToy512, ElGamalGroupId::kModp1536,
                     ElGamalGroupId::kModp2048, ElGamalGroupId::kModp3072}) {
    auto eg = ElGamal::Generate(group, rng);
    ASSERT_TRUE(eg.ok());
    Bytes nonce(32);
    ASSERT_TRUE(rng.Fill(nonce).ok());
    auto ct = eg->Encrypt(nonce, rng);
    ASSERT_TRUE(ct.ok());
    auto pt = eg->Decrypt(*ct);
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(*pt, nonce);
  }
}

TEST(ElGamalTest, ShortMessagesPreserveLength) {
  DeterministicRandom rng(3);
  auto eg = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg.ok());
  for (size_t len : {0u, 1u, 16u, 31u, 32u}) {
    Bytes msg(len, 0x77);
    auto ct = eg->Encrypt(msg, rng);
    ASSERT_TRUE(ct.ok());
    auto pt = eg->Decrypt(*ct);
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(pt->size(), len);
    EXPECT_EQ(*pt, msg);
  }
}

TEST(ElGamalTest, OversizeMessageRejected) {
  DeterministicRandom rng(4);
  auto eg = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg.ok());
  EXPECT_FALSE(eg->Encrypt(Bytes(33, 0), rng).ok());
}

TEST(ElGamalTest, EncryptionIsRandomized) {
  DeterministicRandom rng(5);
  auto eg = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg.ok());
  Bytes msg(32, 0x01);
  auto a = eg->Encrypt(msg, rng);
  auto b = eg->Encrypt(msg, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // fresh ephemeral each time
}

TEST(ElGamalTest, FromSecretIsDeterministic) {
  DeterministicRandom rng(6);
  Bytes secret(32, 0x42);
  auto eg1 = ElGamal::FromSecret(ElGamalGroupId::kToy512, secret);
  auto eg2 = ElGamal::FromSecret(ElGamalGroupId::kToy512, secret);
  ASSERT_TRUE(eg1.ok());
  ASSERT_TRUE(eg2.ok());
  // Key pairs derived from the same secret must interoperate.
  Bytes nonce(32, 0x10);
  auto ct = eg1->Encrypt(nonce, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = eg2->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, nonce);
}

TEST(ElGamalTest, FromSecretRejectsShortSecret) {
  EXPECT_FALSE(ElGamal::FromSecret(ElGamalGroupId::kToy512, Bytes(8, 1)).ok());
}

TEST(ElGamalTest, WrongKeyDecryptsToGarbage) {
  DeterministicRandom rng(7);
  auto eg1 = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  auto eg2 = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg1.ok());
  ASSERT_TRUE(eg2.ok());
  Bytes nonce(32, 0x33);
  auto ct = eg1->Encrypt(nonce, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = eg2->Decrypt(*ct);
  // Hashed ElGamal has no integrity: decryption succeeds but yields noise.
  ASSERT_TRUE(pt.ok());
  EXPECT_NE(*pt, nonce);
}

TEST(ElGamalTest, MalformedCiphertextRejected) {
  DeterministicRandom rng(8);
  auto eg = ElGamal::Generate(ElGamalGroupId::kToy512, rng);
  ASSERT_TRUE(eg.ok());
  EXPECT_FALSE(eg->Decrypt(Bytes{}).ok());
  EXPECT_FALSE(eg->Decrypt(Bytes{0x01, 0x02}).ok());
  // c1 = 0 must be rejected (outside the group).
  auto good = eg->Encrypt(Bytes(32, 1), rng);
  ASSERT_TRUE(good.ok());
}

TEST(ElGamalTest, DeterministicFormatRegression) {
  // With a fixed secret and a deterministic RNG, the ciphertext bytes are
  // a pure function of the wire format. Pinning a digest of them catches
  // accidental format changes (padding, KDF label, framing) that would
  // silently strand every stored F(r).
  DeterministicRandom rng(1000);
  auto eg = ElGamal::FromSecret(ElGamalGroupId::kToy512, Bytes(32, 0x21));
  ASSERT_TRUE(eg.ok());
  auto ct = eg->Encrypt(Bytes(32, 0x42), rng);
  ASSERT_TRUE(ct.ok());
  // Self-consistency across process runs is what matters: re-derive.
  DeterministicRandom rng2(1000);
  auto eg2 = ElGamal::FromSecret(ElGamalGroupId::kToy512, Bytes(32, 0x21));
  ASSERT_TRUE(eg2.ok());
  auto ct2 = eg2->Encrypt(Bytes(32, 0x42), rng2);
  ASSERT_TRUE(ct2.ok());
  EXPECT_EQ(*ct, *ct2);
  // Layout: varint |c1| ‖ c1 (64 bytes for toy-512) ‖ varint |c2| ‖ c2.
  EXPECT_EQ(ct->size(), 1 + 64 + 1 + 32u);
  EXPECT_EQ((*ct)[0], 64);  // c1 length prefix
  EXPECT_EQ((*ct)[65], 32);  // c2 length prefix
}

TEST(ElGamalTest, CiphertextSizeMatchesActual) {
  DeterministicRandom rng(9);
  for (auto group : {ElGamalGroupId::kToy512, ElGamalGroupId::kModp2048}) {
    auto eg = ElGamal::Generate(group, rng);
    ASSERT_TRUE(eg.ok());
    auto ct = eg->Encrypt(Bytes(32, 0xaa), rng);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), eg->CiphertextSize());
  }
}

}  // namespace
}  // namespace sse::crypto
