#include "sse/phr/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

namespace sse::phr {

namespace {

constexpr std::array<std::string_view, 32> kStopwords = {
    "the", "and", "for", "with", "that", "this", "from", "was",
    "are", "has", "had", "have", "not", "but", "she", "him",
    "her", "his", "its", "were", "been", "they", "them", "their",
    "will", "would", "could", "should", "than", "then", "when", "who"};

}  // namespace

bool IsStopword(std::string_view word) {
  return std::find(kStopwords.begin(), kStopwords.end(), word) !=
         kStopwords.end();
}

std::string ToLowerAscii(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view text, size_t min_len) {
  std::vector<std::string> tokens;
  std::set<std::string> seen;
  std::string current;
  auto flush = [&] {
    if (current.size() >= min_len && !IsStopword(current) &&
        seen.insert(current).second) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::string Tag(std::string_view ns, std::string_view value) {
  std::string out(ns);
  out.push_back(':');
  bool last_dash = false;
  for (char c : value) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out.push_back(static_cast<char>(std::tolower(uc)));
      last_dash = false;
    } else if (!last_dash && !out.empty() && out.back() != ':') {
      out.push_back('-');
      last_dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace sse::phr
