#include "sse/phr/phr_store.h"

#include "sse/phr/tokenizer.h"

namespace sse::phr {

PhrStore::PhrStore(core::SseClientInterface* client) : client_(client) {}

Status PhrStore::AddRecords(const std::vector<PatientRecord>& records) {
  std::vector<core::Document> docs;
  docs.reserve(records.size());
  for (const PatientRecord& record : records) {
    docs.push_back(RecordToDocument(next_id_ + docs.size(), record));
  }
  SSE_RETURN_IF_ERROR(client_->Store(docs));
  next_id_ += docs.size();
  return Status::OK();
}

Status PhrStore::AddRecord(const PatientRecord& record) {
  return AddRecords({record});
}

Result<std::vector<PatientRecord>> PhrStore::SearchTag(std::string_view ns,
                                                       std::string_view value) {
  core::SearchOutcome outcome;
  SSE_ASSIGN_OR_RETURN(outcome, client_->Search(Tag(ns, value)));
  std::vector<PatientRecord> records;
  records.reserve(outcome.documents.size());
  for (const auto& [id, content] : outcome.documents) {
    PatientRecord record;
    SSE_ASSIGN_OR_RETURN(record, DocumentToRecord(content));
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<PatientRecord>> PhrStore::FindByPatient(
    std::string_view patient_id) {
  return SearchTag("patient", patient_id);
}

Result<std::vector<PatientRecord>> PhrStore::FindByCondition(
    std::string_view condition) {
  return SearchTag("condition", condition);
}

Result<std::vector<PatientRecord>> PhrStore::FindByMedication(
    std::string_view medication) {
  return SearchTag("med", medication);
}

Result<std::vector<PatientRecord>> PhrStore::FindByNoteTerm(
    std::string_view term) {
  core::SearchOutcome outcome;
  SSE_ASSIGN_OR_RETURN(outcome, client_->Search(ToLowerAscii(term)));
  std::vector<PatientRecord> records;
  records.reserve(outcome.documents.size());
  for (const auto& [id, content] : outcome.documents) {
    PatientRecord record;
    SSE_ASSIGN_OR_RETURN(record, DocumentToRecord(content));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace sse::phr
