#include "sse/core/scheme3_messages.h"

#include <string>

#include "sse/util/serde.h"

namespace sse::core {

namespace {

/// Names for this scheme's types; net::MessageTypeName knows nothing about
/// the 0x04xx range (net/ stays scheme-agnostic), so spell them out here.
std::string S3TypeName(uint16_t type) {
  switch (type) {
    case kMsgS3UpdateRequest:
      return "Scheme3.UpdateRequest";
    case kMsgS3UpdateAck:
      return "Scheme3.UpdateAck";
    case kMsgS3SearchRequest:
      return "Scheme3.SearchRequest";
    case kMsgS3SearchResult:
      return "Scheme3.SearchResult";
    default:
      return net::MessageTypeName(type);
  }
}

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected message type " + S3TypeName(want) +
                                 ", got " + S3TypeName(msg.type));
  }
  return Status::OK();
}

}  // namespace

net::Message S3UpdateRequest::ToMessage() const {
  BufferWriter w;
  w.PutVarint(entries.size());
  for (const S3UpdateEntry& e : entries) {
    w.PutBytes(e.address);
    w.PutBytes(e.ciphertext);
  }
  PutWireDocuments(w, documents);
  return net::Message{kMsgS3UpdateRequest, w.TakeData()};
}

Result<S3UpdateRequest> S3UpdateRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS3UpdateRequest));
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("entry count exceeds payload");
  }
  S3UpdateRequest out;
  out.entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    S3UpdateEntry e;
    SSE_ASSIGN_OR_RETURN(e.address, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(e.ciphertext, r.GetBytes());
    out.entries.push_back(std::move(e));
  }
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S3UpdateAck::ToMessage() const {
  BufferWriter w;
  w.PutVarint(entries_added);
  return net::Message{kMsgS3UpdateAck, w.TakeData()};
}

Result<S3UpdateAck> S3UpdateAck::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS3UpdateAck));
  BufferReader r(msg.payload);
  S3UpdateAck out;
  SSE_ASSIGN_OR_RETURN(out.entries_added, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S3SearchRequest::ToMessage() const {
  BufferWriter w;
  w.PutBytes(chain_element);
  w.PutU32(counter);
  return net::Message{kMsgS3SearchRequest, w.TakeData()};
}

Result<S3SearchRequest> S3SearchRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS3SearchRequest));
  BufferReader r(msg.payload);
  S3SearchRequest out;
  SSE_ASSIGN_OR_RETURN(out.chain_element, r.GetBytes());
  SSE_ASSIGN_OR_RETURN(out.counter, r.GetU32());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S3SearchResult::ToMessage() const {
  BufferWriter w;
  w.PutBool(found);
  PutIdList(w, ids);
  PutWireDocuments(w, documents);
  w.PutVarint(chain_steps);
  w.PutVarint(entries_decrypted);
  return net::Message{kMsgS3SearchResult, w.TakeData()};
}

Result<S3SearchResult> S3SearchResult::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS3SearchResult));
  BufferReader r(msg.payload);
  S3SearchResult out;
  SSE_ASSIGN_OR_RETURN(out.found, r.GetBool());
  SSE_ASSIGN_OR_RETURN(out.ids, GetIdList(r));
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_ASSIGN_OR_RETURN(out.chain_steps, r.GetVarint());
  SSE_ASSIGN_OR_RETURN(out.entries_decrypted, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace sse::core
