#ifndef SSE_SECURITY_SIMULATOR_H_
#define SSE_SECURITY_SIMULATOR_H_

#include <cstddef>

#include "sse/core/options.h"
#include "sse/security/trace.h"
#include "sse/util/random.h"

namespace sse::security {

/// The simulator S from the proof of Theorem 1 (paper §5.3), implemented
/// literally.
///
/// Given only the *trace* — never the history — the simulator fabricates a
/// view: random R_i with |R_i| shaped like the real ciphertext of a
/// |M_i|-byte document; a table of |W_D| random triples (A_i, B_i, C_i)
/// sized like (f_{k_w}(w), I(w) ⊕ G(r), F(r)); and trapdoors that respect
/// the search pattern Π (repeat queries reuse the same T, fresh queries
/// take an unused A_j).
///
/// The adaptive-security test is then: for every t, no distinguisher should
/// tell the simulated partial view from the real one. The statistical suite
/// (sse/security/stats.h) runs crude distinguishers over both; finding a
/// bias in the real view that the simulated view lacks would falsify the
/// scheme's security argument (and several tests try exactly that).
class Scheme1Simulator {
 public:
  Scheme1Simulator(const core::SchemeOptions& options, RandomSource* rng)
      : options_(options), rng_(rng) {}

  /// Produces a simulated view consistent with `trace`, covering the first
  /// `t` queries (t <= trace.results.size(); pass the full count for V_K^q).
  Result<View> SimulateView(const Trace& trace, size_t t) const;

  /// Wire size of the real E_{k_m}(M) ciphertext for a plaintext of
  /// `plain_len` bytes (AEAD framing is public knowledge).
  static size_t CiphertextSizeFor(size_t plain_len);

  /// Wire size of F(r) for the configured ElGamal group.
  size_t EncNonceSize() const;

 private:
  core::SchemeOptions options_;
  RandomSource* rng_;
};

}  // namespace sse::security

#endif  // SSE_SECURITY_SIMULATOR_H_
