#ifndef SSE_UTIL_LOGGING_H_
#define SSE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sse {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped. Default is
/// kWarning so library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style one-shot logger; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define SSE_LOG(level)                                                      \
  ::sse::internal_logging::LogMessage(::sse::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

}  // namespace sse

#endif  // SSE_UTIL_LOGGING_H_
