// Experiment E-store — the server storage substrate: WAL append/sync,
// snapshot write, LogStore put/get/compaction. These bound how fast a
// durable SSE server can acknowledge updates and how the spill-to-disk
// document backend behaves as ciphertext accumulates.

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sse/storage/log_store.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"
#include "sse/util/random.h"

namespace sse::storage {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/sse_bench_") + name + "." +
         std::to_string(::getpid());
}

// The WAL is a directory of segment files.
std::string TempWalDir(const char* name) {
  const std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveTree(const std::string& dir) {
  (void)std::system(("rm -rf " + dir).c_str());
}

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = TempWalDir("wal");
  auto wal = WriteAheadLog::Open(dir).value();
  DeterministicRandom rng(1);
  Bytes record(static_cast<size_t>(state.range(0)));
  (void)rng.Fill(record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(record));
  }
  (void)wal.Sync();
  state.SetBytesProcessed(state.iterations() * state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_WalAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_WalAppendSync(benchmark::State& state) {
  const std::string dir = TempWalDir("wal_sync");
  auto wal = WriteAheadLog::Open(dir).value();
  Bytes record(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(record));
    benchmark::DoNotOptimize(wal.Sync());
  }
  RemoveTree(dir);
}
BENCHMARK(BM_WalAppendSync);

void BM_SnapshotWrite(benchmark::State& state) {
  const std::string path = TempPath("snap");
  DeterministicRandom rng(2);
  Bytes payload(static_cast<size_t>(state.range(0)));
  (void)rng.Fill(payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Snapshot::Write(path, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotWrite)->Arg(1 << 16)->Arg(1 << 22);

void BM_LogStorePut(benchmark::State& state) {
  const std::string path = TempPath("log_put");
  auto store = LogStore::Open(path).value();
  DeterministicRandom rng(3);
  Bytes value(static_cast<size_t>(state.range(0)));
  (void)rng.Fill(value);
  uint64_t id = 0;
  for (auto _ : state) {
    Bytes key(8);
    for (int i = 0; i < 8; ++i) key[i] = static_cast<uint8_t>(id >> (8 * i));
    benchmark::DoNotOptimize(store->Put(key, value));
    ++id;
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  store.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_LogStorePut)->Arg(256)->Arg(4096);

void BM_LogStoreGet(benchmark::State& state) {
  const std::string path = TempPath("log_get");
  auto store = LogStore::Open(path).value();
  DeterministicRandom rng(4);
  const size_t keys = 4096;
  Bytes value(1024);
  (void)rng.Fill(value);
  for (size_t id = 0; id < keys; ++id) {
    Bytes key(8);
    for (int i = 0; i < 8; ++i) key[i] = static_cast<uint8_t>(id >> (8 * i));
    (void)store->Put(key, value);
  }
  uint64_t id = 0;
  for (auto _ : state) {
    Bytes key(8);
    for (int i = 0; i < 8; ++i) key[i] = static_cast<uint8_t>(id >> (8 * i));
    benchmark::DoNotOptimize(store->Get(key));
    id = (id + 97) % keys;
  }
  store.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_LogStoreGet);

void BM_LogStoreCompact(benchmark::State& state) {
  const std::string path = TempPath("log_compact");
  DeterministicRandom rng(5);
  Bytes value(1024);
  (void)rng.Fill(value);
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    auto store = LogStore::Open(path).value();
    // 8x overwrite churn -> ~87% garbage.
    for (int round = 0; round < 8; ++round) {
      for (uint64_t id = 0; id < 512; ++id) {
        Bytes key(8);
        for (int i = 0; i < 8; ++i) {
          key[i] = static_cast<uint8_t>(id >> (8 * i));
        }
        (void)store->Put(key, value);
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->Compact());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_LogStoreCompact);

}  // namespace
}  // namespace sse::storage

BENCHMARK_MAIN();
