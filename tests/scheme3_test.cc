// Scheme 3 (forward-private dynamic SSE) specifics that the shared
// conformance suite cannot express: the forward-privacy guarantee itself,
// per-keyword counter state round-trips, chain exhaustion, idempotent
// update replay, and the sharded-engine broadcast search.

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme3_client.h"
#include "sse/core/scheme3_messages.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;
using sse::testing::TestMasterKey;

Scheme3Client* ClientOf(SseSystem& sys) {
  return static_cast<Scheme3Client*>(sys.client.get());
}

TEST(Scheme3Test, ForwardPrivacy) {
  // THE property this scheme exists for: a trapdoor released at counter c
  // must not match updates made after it — the server walks the chain only
  // toward older keys.
  DeterministicRandom rng(41);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "old", {"kw"})}));

  auto trapdoor = ClientOf(sys)->MakeTrapdoor("kw");
  SSE_ASSERT_OK_RESULT(trapdoor);
  EXPECT_EQ(trapdoor->counter, 1u);

  // The update AFTER the trapdoor was released.
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "new", {"kw"})}));

  // Replay the stale trapdoor straight at the server: it opens exactly the
  // pre-update state, nothing newer.
  S3SearchRequest req;
  req.chain_element = trapdoor->chain_element;
  req.counter = trapdoor->counter;
  auto reply = sys.channel->Call(req.ToMessage());
  SSE_ASSERT_OK_RESULT(reply);
  auto stale = S3SearchResult::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(stale);
  EXPECT_EQ(stale->ids, std::vector<uint64_t>{0});
  EXPECT_EQ(stale->entries_decrypted, 1u);

  // A fresh trapdoor sees everything.
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
}

TEST(Scheme3Test, VirginKeywordResolvesLocally) {
  // A keyword with no updates has nothing searchable and releases no
  // trapdoor — the search must not even touch the wire.
  DeterministicRandom rng(42);
  SystemConfig config = FastTestConfig();
  config.channel.record_transcript = true;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);

  auto outcome = sys.client->Search("never-stored");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
  EXPECT_TRUE(sys.channel->transcript().empty());

  auto trapdoor = ClientOf(sys)->MakeTrapdoor("never-stored");
  EXPECT_EQ(trapdoor.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Scheme3Test, CountersAdvancePerKeyword) {
  DeterministicRandom rng(43);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"x", "y"})}));
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "b", {"x"})}));
  Scheme3Client* client = ClientOf(sys);
  EXPECT_EQ(client->counter("x").value(), 2u);
  EXPECT_EQ(client->counter("y").value(), 1u);
  EXPECT_EQ(client->counter("z").value(), 0u);
}

TEST(Scheme3Test, ClientStateRoundTrip) {
  // A second client restored from serialized state continues the counter
  // sequence instead of shadowing earlier updates.
  DeterministicRandom rng(44);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "b", {"kw"})}));
  const Bytes state = sys.client->SerializeState();

  DeterministicRandom rng2(45);
  auto restored = Scheme3Client::Create(TestMasterKey(), FastTestConfig().scheme,
                                        sys.channel.get(), &rng2);
  SSE_ASSERT_OK_RESULT(restored);
  SSE_ASSERT_OK((*restored)->RestoreState(state));
  EXPECT_EQ((*restored)->counter("kw").value(), 2u);

  // Continues where the first client stopped: the old postings survive.
  SSE_ASSERT_OK((*restored)->Store({Document::Make(2, "c", {"kw"})}));
  auto outcome = (*restored)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));

  // The used-id set restores too.
  Status dup = (*restored)->Store({Document::Make(0, "dup", {"kw"})});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(Scheme3Test, CorruptStateRejected) {
  DeterministicRandom rng(46);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng);
  EXPECT_FALSE(sys.client->RestoreState(Bytes{0xff, 0xff, 0xff}).ok());
}

TEST(Scheme3Test, ChainExhaustion) {
  DeterministicRandom rng(47);
  SystemConfig config = FastTestConfig();
  config.scheme.chain_length = 3;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);
  for (uint64_t i = 0; i < 3; ++i) {
    SSE_ASSERT_OK(sys.client->Store(
        {Document::Make(i, "doc" + std::to_string(i), {"kw"})}));
  }
  Status s = sys.client->Store({Document::Make(3, "one too many", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Existing postings still searchable after the refusal.
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(Scheme3Test, ReplayedUpdateIsIdempotent) {
  // A chain key is burned per logical update, so a re-delivered update
  // message carries the same address and delta; applying it twice must
  // not change what a search sees.
  DeterministicRandom rng(48);
  SystemConfig config = FastTestConfig();
  config.channel.record_transcript = true;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"kw"})}));
  const net::Message update = sys.channel->transcript().back().request;
  ASSERT_EQ(update.type, kMsgS3UpdateRequest);
  ASSERT_TRUE(sys.channel->Call(update).ok());
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST(Scheme3Test, BatchedUpdatesAndMultiSearch) {
  DeterministicRandom rng(49);
  SystemConfig config = FastTestConfig();
  config.scheme.batch_ops = true;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);
  SSE_ASSERT_OK(sys.client->Store({
      Document::Make(0, "d0", {"x", "shared"}),
      Document::Make(1, "d1", {"y", "shared"}),
  }));
  auto outcomes = sys.client->MultiSearch({"x", "virgin", "shared", "y"});
  SSE_ASSERT_OK_RESULT(outcomes);
  ASSERT_EQ(outcomes->size(), 4u);
  EXPECT_EQ((*outcomes)[0].ids, std::vector<uint64_t>{0});
  EXPECT_TRUE((*outcomes)[1].ids.empty());
  EXPECT_EQ((*outcomes)[2].ids, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ((*outcomes)[3].ids, std::vector<uint64_t>{1});
}

TEST(Scheme3Test, ShardedEngineBroadcastSearch) {
  // With engine shards the per-update addresses scatter across shards and
  // a search must union every shard's walk.
  DeterministicRandom rng(50);
  SystemConfig config = FastTestConfig();
  config.engine_shards = 4;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);
  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < 16; ++i) {
    SSE_ASSERT_OK(sys.client->Store({Document::Make(
        i, "doc" + std::to_string(i),
        {"all", "mod" + std::to_string(i % 3)})}));
    expected.push_back(i);
  }
  auto outcome = sys.client->Search("all");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, expected);
  ASSERT_EQ(outcome->documents.size(), 16u);
  auto mod1 = sys.client->Search("mod1");
  SSE_ASSERT_OK_RESULT(mod1);
  EXPECT_EQ(mod1->ids, (std::vector<uint64_t>{1, 4, 7, 10, 13}));
}

TEST(Scheme3Test, StaleTrapdoorIsForwardPrivateUnderEngine) {
  // Forward privacy holds through the sharded engine too: the broadcast
  // search merges per-shard walks that each stop at the trapdoor counter.
  DeterministicRandom rng(51);
  SystemConfig config = FastTestConfig();
  config.engine_shards = 2;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme3, &rng, config);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "old", {"kw"})}));
  auto trapdoor = ClientOf(sys)->MakeTrapdoor("kw");
  SSE_ASSERT_OK_RESULT(trapdoor);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "new", {"kw"})}));

  S3SearchRequest req;
  req.chain_element = trapdoor->chain_element;
  req.counter = trapdoor->counter;
  auto reply = sys.channel->Call(req.ToMessage());
  SSE_ASSERT_OK_RESULT(reply);
  auto stale = S3SearchResult::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(stale);
  EXPECT_EQ(stale->ids, std::vector<uint64_t>{0});
}

}  // namespace
}  // namespace sse::core
