#include "sse/baselines/swp.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::baselines {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::MakeTestSystem;

class SwpTest : public ::testing::Test {
 protected:
  SwpTest() : rng_(55), sys_(MakeTestSystem(SystemKind::kSwp, &rng_)) {}
  SwpServer* server() { return static_cast<SwpServer*>(sys_.server.get()); }

  DeterministicRandom rng_;
  core::SseSystem sys_;
};

TEST_F(SwpTest, SearchScansEveryBlock) {
  // 10 documents x 4 keywords = 40 blocks; a query for a keyword no
  // document has must scan all of them.
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 10; ++i) {
    docs.push_back(Document::Make(i, "d", {"a", "b", "c", "d"}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  const uint64_t before = server()->blocks_scanned();
  auto outcome = sys_.client->Search("missing");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(server()->blocks_scanned() - before, 40u);
}

TEST_F(SwpTest, MatchingDocShortCircuits) {
  // A document stops scanning at its first matching block.
  SSE_ASSERT_OK(
      sys_.client->Store({Document::Make(0, "d", {"hit", "x", "y"})}));
  const uint64_t before = server()->blocks_scanned();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("hit"));
  EXPECT_EQ(server()->blocks_scanned() - before, 1u);
}

TEST_F(SwpTest, ScanCostGrowsLinearly) {
  // Double the corpus, double the miss-scan cost — the O(n) behaviour the
  // paper's schemes avoid.
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 50; ++i) {
    docs.push_back(Document::Make(i, "d", {"k1", "k2"}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  server();  // silence clang-tidy
  uint64_t before = server()->blocks_scanned();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("zzz"));
  const uint64_t cost_small = server()->blocks_scanned() - before;

  std::vector<Document> more;
  for (uint64_t i = 50; i < 100; ++i) {
    more.push_back(Document::Make(i, "d", {"k1", "k2"}));
  }
  SSE_ASSERT_OK(sys_.client->Store(more));
  before = server()->blocks_scanned();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("zzz"));
  const uint64_t cost_large = server()->blocks_scanned() - before;
  EXPECT_EQ(cost_large, 2 * cost_small);
}

TEST_F(SwpTest, NoFalsePositivesAcrossManyKeywords) {
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 30; ++i) {
    docs.push_back(
        Document::Make(i, "d", {"kw" + std::to_string(i)}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  for (uint64_t i = 0; i < 30; ++i) {
    auto outcome = sys_.client->Search("kw" + std::to_string(i));
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, std::vector<uint64_t>{i});
  }
}

TEST_F(SwpTest, StateSerializationRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"x"}),
                                    Document::Make(1, "b", {"y"})}));
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);
  SwpServer restored;
  SSE_ASSERT_OK(restored.RestoreState(*state));
  EXPECT_EQ(restored.document_count(), 2u);
  auto state2 = restored.SerializeState();
  SSE_ASSERT_OK_RESULT(state2);
  EXPECT_EQ(*state, *state2);
}

TEST_F(SwpTest, MalformedMessagesRejected) {
  EXPECT_FALSE(sys_.channel->Call(net::Message{kMsgSwpStore, Bytes{9}}).ok());
  EXPECT_FALSE(
      sys_.channel->Call(net::Message{kMsgSwpSearch, Bytes{1, 2}}).ok());
  EXPECT_FALSE(sys_.channel->Call(net::Message{0x03f0, {}}).ok());
}

TEST_F(SwpTest, FakeUpdateUnsupported) {
  EXPECT_EQ(sys_.client->FakeUpdate({"x"}).code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace sse::baselines
