file(REMOVE_RECURSE
  "CMakeFiles/client_state_test.dir/client_state_test.cc.o"
  "CMakeFiles/client_state_test.dir/client_state_test.cc.o.d"
  "client_state_test"
  "client_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
