#ifndef SSE_CORE_PERSISTABLE_H_
#define SSE_CORE_PERSISTABLE_H_

#include <cstdint>

#include "sse/net/channel.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// A message handler whose full state can be checkpointed and which can
/// classify messages as mutating. DurableServer builds crash-safe servers
/// out of this: successfully applied mutating requests are journaled to a
/// WAL before the reply is released, snapshots capture SerializeState(),
/// and recovery is RestoreState(snapshot) + replay of the journaled
/// requests.
class PersistableHandler : public net::MessageHandler {
 public:
  /// Serializes the complete server state (index + document store).
  virtual Result<Bytes> SerializeState() const = 0;

  /// Replaces the server state with a previously serialized one.
  virtual Status RestoreState(BytesView data) = 0;

  /// True if handling a message of this type changes durable state.
  /// (Optimization-1 plaintext caches are soft state and do not count.)
  virtual bool IsMutating(uint16_t msg_type) const = 0;

  /// Called at most once when the DurableServer wrapping this handler
  /// fail-stops into read-only degraded mode after a storage fault (failed
  /// append or fsync). Handlers may surface the state in their metrics and
  /// start refusing mutations themselves; they must keep serving reads.
  virtual void OnStorageDegraded(const Status& cause) { (void)cause; }
};

}  // namespace sse::core

#endif  // SSE_CORE_PERSISTABLE_H_
