#include "sse/repl/receiver.h"

#include <utility>

#include "sse/util/logging.h"

namespace sse::repl {

Result<std::unique_ptr<ReplReceiver>> ReplReceiver::Open(
    const std::string& dir, HandlerFactory factory, uint64_t epoch) {
  return Open(dir, std::move(factory), epoch, Options());
}

Result<std::unique_ptr<ReplReceiver>> ReplReceiver::Open(
    const std::string& dir, HandlerFactory factory, uint64_t epoch,
    Options options) {
  if (!factory) {
    return Status::InvalidArgument("handler factory must be non-empty");
  }
  auto receiver = std::unique_ptr<ReplReceiver>(
      new ReplReceiver(dir, std::move(factory), options, epoch));
  receiver->view_ = receiver->factory_();
  receiver->cache_ = std::make_unique<core::ReplyCache>(options.reply_cache);
  const storage::WalOptions wal_options{options.env, options.wal_segment_bytes,
                                        options.wal_salvage};

  // Same recovery dance as DurableServer::Open: newest verifying snapshot
  // generation into the view, then replay the local log on top. The
  // follower's directory IS a DurableServer image, so the formats match.
  std::vector<uint64_t> generations;
  SSE_ASSIGN_OR_RETURN(generations, receiver->snapshots_.List());
  uint64_t min_seq = 1;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<Bytes> blob = storage::Snapshot::Read(
        receiver->snapshots_.PathFor(*it), options.env);
    if (!blob.ok()) continue;
    Result<core::DurableServer::SnapshotBlob> contents =
        core::DurableServer::DecodeSnapshot(*blob);
    if (!contents.ok()) continue;
    if (!receiver->view_->RestoreState(contents->state).ok()) continue;
    if (!contents->cache.empty()) {
      SSE_RETURN_IF_ERROR(receiver->cache_->Restore(contents->cache));
    }
    min_seq = contents->wal_seq;
    break;
  }

  storage::WalReplayReport report;
  Status replay = storage::WriteAheadLog::Replay(
      dir, wal_options, min_seq,
      [&](uint64_t /*seq*/, BytesView record) {
        return receiver->ApplyToView(record);
      },
      &report);
  SSE_RETURN_IF_ERROR(replay);
  if (report.lowest_seq != 0 && report.lowest_seq > min_seq) {
    return Status::Corruption(
        "follower WAL does not cover history since its snapshot (needs seq " +
        std::to_string(min_seq) + ", oldest segment starts at " +
        std::to_string(report.lowest_seq) + ")");
  }

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(dir, wal_options);
  if (!wal.ok()) return wal.status();
  receiver->wal_ =
      std::make_unique<storage::WriteAheadLog>(std::move(wal).value());
  if (receiver->wal_->next_seq() < min_seq) {
    // A crash between installing a shipped snapshot and resetting the log
    // leaves the WAL behind the snapshot cut; the snapshot is complete
    // state, so repairing is just restarting the log at the cut.
    SSE_RETURN_IF_ERROR(receiver->wal_->ResetAt(min_seq));
  }
  receiver->last_checkpoint_seq_ = min_seq;

  auto& registry = obs::MetricsRegistry::Global();
  ReplReceiver* raw = receiver.get();
  receiver->registrations_.push_back(registry.RegisterGauge(
      "sse_repl_follower_next_seq",
      [raw] { return static_cast<double>(raw->next_seq()); },
      "Sequence the follower's durable log expects next"));
  receiver->registrations_.push_back(registry.RegisterGauge(
      "sse_repl_follower_records_applied",
      [raw] { return static_cast<double>(raw->records_applied()); },
      "Shipped WAL records applied to the follower's read view"));
  return receiver;
}

Status ReplReceiver::ApplyToView(BytesView record) {
  Result<net::Message> msg = net::Message::Decode(record);
  if (!msg.ok()) return msg.status();
  Result<net::Message> reply = view_->Handle(*msg);
  if (!reply.ok()) return reply.status();
  if (msg->has_session) {
    // Mirror the primary's reply cache so a promoted follower dedups
    // client retries of pre-failover mutations, and so its own
    // checkpoints carry the table exactly like the primary's do.
    reply->EchoSession(*msg);
    cache_->Commit(msg->client_id, msg->seq, *reply);
  }
  ++records_applied_;
  return Status::OK();
}

Result<net::Message> ReplReceiver::HandleAppend(const net::Message& request) {
  ReplAppend append;
  SSE_ASSIGN_OR_RETURN(append, ReplAppend::FromMessage(request));
  std::lock_guard<std::mutex> lock(mutex_);
  ReplAck ack;
  if (append.epoch < epoch_) {
    // Fenced: a deposed primary from an older epoch may not touch the log.
    ack.epoch = epoch_;
    ack.next_seq = wal_->next_seq();
    ack.accepted = false;
    net::Message reply = ack.ToMessage();
    reply.EchoSession(request);
    return reply;
  }
  if (append.epoch > epoch_) epoch_ = append.epoch;

  bool accepted = true;
  bool any_appended = false;
  uint64_t seq = append.first_seq;
  for (const Bytes& record : append.records) {
    const uint64_t cursor = wal_->next_seq();
    if (seq < cursor) {
      // Duplicate of a record already durable here (sender rewound after a
      // lost ack); skipping keeps application exactly-once.
      ++seq;
      continue;
    }
    if (seq > cursor) {
      // Gap: the ack's cursor tells the sender where to rewind to.
      accepted = false;
      break;
    }
    const Status applied = ApplyToView(record);
    if (!applied.ok()) {
      // The primary accepted this record, so a rejecting view has
      // diverged. Refuse the append — the on-disk image stays consistent
      // for promotion — and fail-stop reads.
      SSE_LOG(Error) << "repl: shipped record " << seq
                     << " rejected by view: " << applied.ToString();
      view_ok_ = false;
      accepted = false;
      break;
    }
    const Status journaled = wal_->Append(record);
    if (!journaled.ok()) {
      accepted = false;
      break;
    }
    any_appended = true;
    ++seq;
  }
  if (any_appended) {
    // Ack only durable records: an acked sequence must survive a crash.
    const Status synced = wal_->Sync();
    if (!synced.ok()) accepted = false;
  }
  if (accepted && options_.checkpoint_every_records > 0) {
    records_since_checkpoint_ +=
        static_cast<uint64_t>(append.records.size());
    if (records_since_checkpoint_ >= options_.checkpoint_every_records) {
      const Status checkpointed = CheckpointLocked();
      if (!checkpointed.ok()) {
        SSE_LOG(Warning) << "repl: follower checkpoint failed: "
                      << checkpointed.ToString();
      }
    }
  }
  ack.epoch = epoch_;
  ack.next_seq = wal_->next_seq();
  ack.accepted = accepted;
  net::Message reply = ack.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Result<net::Message> ReplReceiver::HandleSnapshot(const net::Message& request) {
  ReplSnapshot snap;
  SSE_ASSIGN_OR_RETURN(snap, ReplSnapshot::FromMessage(request));
  std::lock_guard<std::mutex> lock(mutex_);
  ReplAck ack;
  ack.epoch = epoch_;
  ack.next_seq = wal_->next_seq();
  ack.accepted = false;
  if (snap.epoch < epoch_) {
    net::Message reply = ack.ToMessage();
    reply.EchoSession(request);
    return reply;
  }
  if (snap.epoch > epoch_) epoch_ = snap.epoch;
  ack.epoch = epoch_;

  if (snap.cut_seq <= wal_->next_seq()) {
    // Our log already covers the cut; shipping can resume at our cursor.
    ack.accepted = true;
    net::Message reply = ack.ToMessage();
    reply.EchoSession(request);
    return reply;
  }

  // Build the replacement view before touching anything durable, so a bad
  // blob leaves the current state untouched.
  Result<core::DurableServer::SnapshotBlob> contents =
      core::DurableServer::DecodeSnapshot(snap.blob);
  if (contents.ok()) {
    std::unique_ptr<core::PersistableHandler> fresh_view = factory_();
    auto fresh_cache =
        std::make_unique<core::ReplyCache>(options_.reply_cache);
    Status installed = fresh_view->RestoreState(contents->state);
    if (installed.ok() && !contents->cache.empty()) {
      installed = fresh_cache->Restore(contents->cache);
    }
    // Durable install: snapshot file first, then restart the log at the
    // cut. A crash in between is repaired at the next Open (the WAL is
    // reset forward to the cut).
    if (installed.ok()) installed = snapshots_.WriteNext(snap.blob);
    if (installed.ok()) installed = wal_->ResetAt(snap.cut_seq);
    if (installed.ok()) {
      view_ = std::move(fresh_view);
      cache_ = std::move(fresh_cache);
      last_checkpoint_seq_ = snap.cut_seq;
      records_since_checkpoint_ = 0;
      view_ok_ = true;
      ack.accepted = true;
    } else {
      SSE_LOG(Error) << "repl: snapshot install failed: "
                     << installed.ToString();
    }
  }
  ack.next_seq = wal_->next_seq();
  net::Message reply = ack.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Result<net::Message> ReplReceiver::HandleRead(const net::Message& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (view_->IsMutating(request.type)) {
    return Status::Unavailable(
        "not primary: this node is a replication follower");
  }
  if (!view_ok_) {
    return Status::Unavailable("follower read view diverged; awaiting resync");
  }
  Result<net::Message> reply = view_->Handle(request);
  if (reply.ok() && request.has_session && !reply->has_session) {
    reply->EchoSession(request);
  }
  return reply;
}

bool ReplReceiver::IsMutating(uint16_t msg_type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_->IsMutating(msg_type);
}

Status ReplReceiver::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  return CheckpointLocked();
}

Status ReplReceiver::CheckpointLocked() {
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, view_->SerializeState());
  core::DurableServer::SnapshotBlob blob;
  blob.wal_seq = wal_->next_seq();
  blob.state = std::move(state);
  blob.cache = cache_->Serialize();
  const uint64_t previous_cut = last_checkpoint_seq_;
  SSE_RETURN_IF_ERROR(
      snapshots_.WriteNext(core::DurableServer::EncodeSnapshot(blob)));
  SSE_RETURN_IF_ERROR(wal_->CompactBefore(previous_cut));
  last_checkpoint_seq_ = blob.wal_seq;
  records_since_checkpoint_ = 0;
  return Status::OK();
}

uint64_t ReplReceiver::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_->next_seq();
}

uint64_t ReplReceiver::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

uint64_t ReplReceiver::records_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_applied_;
}

bool ReplReceiver::view_ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_ok_;
}

}  // namespace sse::repl
