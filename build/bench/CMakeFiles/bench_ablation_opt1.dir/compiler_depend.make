# Empty compiler generated dependencies file for bench_ablation_opt1.
# This may be replaced when dependencies are built.
