#ifndef SSE_NET_REACTOR_H_
#define SSE_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sse/util/result.h"

namespace sse::net {

/// Event-driven network core: N epoll loop threads, each owning a set of
/// non-blocking fds, level-triggered. Everything that touches an fd's
/// state (epoll interest, buffers, lifecycle) runs on the loop thread
/// that owns it; other threads communicate exclusively through Post(),
/// which enqueues a closure under a mutex and wakes the loop via an
/// eventfd. That single-writer discipline is what keeps the per-
/// connection state machines lock-free and TSan-clean.
///
/// The reactor replaces thread-per-connection serving: however many
/// connections are registered, the thread budget stays `loops` here plus
/// whatever dispatch pool the owner runs handlers on.
class EventLoop {
 public:
  /// Receiver for readiness events on one registered fd. Dispatched by fd
  /// lookup (not by stored pointer), so a handler removed mid-batch is
  /// never invoked on a stale pointer.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void OnEvents(uint32_t events) = 0;  // EPOLL* bits
  };

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Call once.
  void Start();
  /// Asks the loop to exit, runs any still-pending posted closures once,
  /// and joins the thread. Idempotent.
  void Stop();

  /// Enqueues `fn` to run on the loop thread; wakes the loop. Safe from
  /// any thread, including the loop thread itself (runs this wake cycle).
  void Post(std::function<void()> fn);

  /// Runs `fn` on the loop thread roughly every `period_ms` (the loop
  /// trades its unbounded epoll_wait for a bounded one). Must be called
  /// before Start(); with no periodic tasks the wait stays unbounded.
  void SchedulePeriodic(uint64_t period_ms, std::function<void()> fn);

  /// Runs `fn` inline when already on the loop thread, else Post()s it.
  void RunInLoop(std::function<void()> fn);

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }

  /// fd registration; loop-thread-only (assert via InLoopThread).
  Status Add(int fd, uint32_t events, Handler* handler);
  Status Mod(int fd, uint32_t events);
  void Del(int fd);

  /// True once Stop() has been requested; connections draining on this
  /// loop can consult it.
  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

 private:
  struct PeriodicTask {
    uint64_t period_ms;
    std::function<void()> fn;
    std::chrono::steady_clock::time_point next_due;
  };

  void Run();
  void Wake();
  void DrainWakeFd();
  void RunPending();
  /// epoll_wait timeout until the earliest periodic task (-1 = none).
  int NextTimeoutMs() const;
  void RunDuePeriodics();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;

  /// fd -> handler, loop-thread-only after Start.
  std::map<int, Handler*> handlers_;

  /// Fixed at Start; fired and re-armed by the loop thread.
  std::vector<PeriodicTask> periodics_;
};

/// A fixed set of EventLoops plus round-robin placement for new
/// connections. Loop 0 conventionally carries the acceptor.
class Reactor {
 public:
  explicit Reactor(size_t loops);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void Start();
  void Stop();

  EventLoop* loop(size_t i) { return loops_[i].get(); }
  size_t loop_count() const { return loops_.size(); }

  /// The loop the next connection should land on (round-robin).
  EventLoop* NextLoop();

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_{0};
};

}  // namespace sse::net

#endif  // SSE_NET_REACTOR_H_
