#include "sse/obs/events.h"

#include <chrono>

#include "sse/util/logging.h"

namespace sse::obs {

namespace {

int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for event details (ASCII control chars,
/// quotes and backslashes; details are produced by our own hooks).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStorageDegraded:
      return "storage_degraded";
    case EventKind::kWalSalvage:
      return "wal_salvage";
    case EventKind::kWalCompaction:
      return "wal_compaction";
    case EventKind::kBrownoutEnter:
      return "brownout_enter";
    case EventKind::kBrownoutExit:
      return "brownout_exit";
    case EventKind::kBreakerOpen:
      return "breaker_open";
    case EventKind::kBreakerClose:
      return "breaker_close";
    case EventKind::kFailover:
      return "failover";
    case EventKind::kPromotion:
      return "promotion";
    case EventKind::kFenced:
      return "fenced";
  }
  return "unknown";
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

uint64_t EventJournal::Emit(EventKind kind, std::string detail) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    Event& slot = ring_[seq % capacity_];
    slot.seq = seq;
    slot.wall_ms = WallMillis();
    slot.kind = kind;
    slot.detail = detail;
  }
  // Log outside the lock: the sink may be slow, and the narrative should
  // reach the log stream even if nobody ever scrapes the journal.
  SSE_LOG(Info) << "event[" << seq << "] " << EventKindName(kind) << ": "
                << detail;
  return seq;
}

std::vector<Event> EventJournal::Tail(size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t newest = next_seq_ - 1;
  const uint64_t live = std::min<uint64_t>(newest, capacity_);
  const uint64_t take = std::min<uint64_t>(live, max_events);
  std::vector<Event> out;
  out.reserve(take);
  for (uint64_t seq = newest - take + 1; seq <= newest && take > 0; ++seq) {
    const Event& e = ring_[seq % capacity_];
    if (e.seq != seq) continue;  // cleared or never filled
    out.push_back(e);
  }
  return out;
}

uint64_t EventJournal::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Event& e : ring_) e = Event{};
}

std::string EventJournal::ToJson(const std::vector<Event>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out += ",";
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"wall_ms\":" + std::to_string(e.wall_ms) + ",\"kind\":\"" +
           EventKindName(e.kind) + "\",\"detail\":";
    AppendJsonString(&out, e.detail);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace sse::obs
