#include "sse/net/tcp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sse/core/registry.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "test_util.h"

namespace sse::net {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TestMasterKey;

class EchoHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    if (request.type == 99) return Status::Internal("boom");
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
};

TEST(TcpTest, RoundTripOverRealSockets) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);

  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  Message request{7, Bytes{1, 2, 3}};
  auto reply = (*channel)->Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, 8);
  EXPECT_EQ(reply->payload, request.payload);
  EXPECT_EQ((*channel)->stats().rounds, 1u);
  EXPECT_EQ((*server)->requests_served(), 1u);
}

TEST(TcpTest, HandlerErrorTravelsAsStatus) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(Message{99, {}});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
}

TEST(TcpTest, LargePayloads) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  DeterministicRandom rng(1);
  Bytes big(1 << 20);
  ASSERT_TRUE(rng.Fill(big).ok());
  auto reply = (*channel)->Call(Message{1, big});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, big);
}

TEST(TcpTest, ConcurrentClients) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  constexpr int kClients = 4;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto channel = TcpChannel::Connect((*server)->port());
      if (!channel.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        Bytes payload{static_cast<uint8_t>(c), static_cast<uint8_t>(i)};
        auto reply = (*channel)->Call(Message{1, payload});
        if (!reply.ok() || reply->payload != payload) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*server)->requests_served(),
            static_cast<uint64_t>(kClients * kCallsEach));
}

TEST(TcpTest, StopUnblocksIdleConnection) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->Call(Message{1, {}}).ok());
  // The connection stays open and idle; Stop must not hang on it.
  (*server)->Stop();
  EXPECT_FALSE((*channel)->Call(Message{1, {}}).ok());
}

TEST(TcpTest, SequentialConnections) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  for (int i = 0; i < 3; ++i) {
    auto channel = TcpChannel::Connect((*server)->port());
    ASSERT_TRUE(channel.ok()) << "connection " << i;
    auto reply = (*channel)->Call(Message{1, Bytes{static_cast<uint8_t>(i)}});
    ASSERT_TRUE(reply.ok());
  }
  EXPECT_EQ((*server)->requests_served(), 3u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab a port, then stop the server: connecting must fail cleanly.
  EchoHandler handler;
  uint16_t port = 0;
  {
    auto server = TcpServer::Start(&handler);
    ASSERT_TRUE(server.ok());
    port = (*server)->port();
  }
  auto channel = TcpChannel::Connect(port);
  EXPECT_FALSE(channel.ok());
}

TEST(TcpTest, StopIsIdempotent) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();
}

class SlowHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    if (slow_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
  std::atomic<bool> slow_{true};
};

TEST(TcpTest, RecvTimeoutSurfacesDeadlineExceeded) {
  SlowHandler handler;
  // Serve connections truly concurrently so the reconnect after the timeout
  // is not stuck behind the still-sleeping first request.
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  TcpChannel::Options opts;
  opts.recv_timeout_ms = 50.0;
  auto channel = TcpChannel::Connect((*server)->port(), "127.0.0.1", opts);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  auto reply = (*channel)->Call(Message{1, Bytes{1}});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(reply.status().IsRetryable());
  // The timed-out connection is torn down: the late reply can never be
  // mistaken for an answer to a later call.
  EXPECT_FALSE((*channel)->connected());

  // With the handler fast again, the next Call transparently redials.
  handler.slow_.store(false);
  auto retry = (*channel)->Call(Message{1, Bytes{2}});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->payload, Bytes{2});
  EXPECT_EQ((*channel)->reconnects(), 1u);
}

TEST(TcpTest, ResetForcesReconnectOnNextCall) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->Call(Message{1, Bytes{1}}).ok());

  (*channel)->Reset();
  EXPECT_FALSE((*channel)->connected());
  auto reply = (*channel)->Call(Message{1, Bytes{2}});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ((*channel)->reconnects(), 1u);
  EXPECT_EQ((*server)->connections_accepted(), 2u);
}

TEST(TcpTest, ReconnectDisabledFailsFastAfterReset) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  TcpChannel::Options opts;
  opts.auto_reconnect = false;
  auto channel = TcpChannel::Connect((*server)->port(), "127.0.0.1", opts);
  ASSERT_TRUE(channel.ok());
  (*channel)->Reset();
  auto reply = (*channel)->Call(Message{1, {}});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(TcpTest, SessionStampSurvivesTheWire) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  Message request{7, Bytes{1, 2, 3}};
  request.StampSession(1234, 56);
  auto reply = (*channel)->Call(request);
  // EchoHandler copies type+payload but not the stamp; what matters here
  // is that a stamped request framed over a real socket decodes cleanly.
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, request.payload);
}

TEST(TcpTest, FullSchemeOverTcp) {
  // The whole Scheme 2 stack over real sockets.
  const auto config = FastTestConfig();
  core::Scheme2Server scheme_server(config.scheme);
  auto server = TcpServer::Start(&scheme_server);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  DeterministicRandom rng(5);
  auto client = core::Scheme2Client::Create(TestMasterKey(), config.scheme,
                                            channel->get(), &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store({
      core::Document::Make(0, "over the wire", {"tcp", "net"}),
      core::Document::Make(1, "second doc", {"net"}),
  }));
  auto outcome = (*client)->Search("net");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(BytesToString(outcome->documents[0].second), "over the wire");
  EXPECT_EQ((*channel)->stats().rounds, 2u);  // 1 store + 1 search
}

}  // namespace
}  // namespace sse::net
