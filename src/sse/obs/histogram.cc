#include "sse/obs/histogram.h"

namespace sse::obs {

namespace {

size_t BucketFor(uint64_t nanos) {
  size_t b = 0;
  while (b + 1 < LatencyHistogram::kBuckets && (1ULL << (b + 1)) <= nanos) {
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(uint64_t nanos) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::mean_micros() const {
  if (count == 0) return 0.0;
  return static_cast<double>(total_nanos) / static_cast<double>(count) / 1e3;
}

double LatencyHistogram::Snapshot::quantile_micros(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Interpolate inside the bucket: samples are assumed uniform over
      // [lo, hi), and each of the k samples sits at the center of its
      // 1/k-slice, so the j-th sample (1-based) maps to (j - 0.5) / k.
      const double lo = static_cast<double>(lower_edge_nanos(i));
      const double hi = static_cast<double>(upper_edge_nanos(i));
      const double pos = (static_cast<double>(rank - seen) - 0.5) /
                         static_cast<double>(buckets[i]);
      return (lo + pos * (hi - lo)) / 1e3;
    }
    seen += buckets[i];
  }
  return static_cast<double>(upper_edge_nanos(buckets.size() - 1)) / 1e3;
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  count += other.count;
  total_nanos += other.total_nanos;
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

}  // namespace sse::obs
