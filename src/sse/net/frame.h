#ifndef SSE_NET_FRAME_H_
#define SSE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::net {

/// Wire framing: a little-endian u32 length prefix around
/// `Message::Encode()` bytes. Frames above this bound are rejected as
/// protocol errors before any allocation happens.
inline constexpr uint32_t kMaxFrameSize = 1u << 30;
inline constexpr size_t kFrameHeaderSize = 4;

/// Prepends the length header to `payload`, producing the exact bytes that
/// go on the wire.
Bytes EncodeFrame(const Bytes& payload);

/// Incremental reassembly of length-prefixed frames from an arbitrarily
/// chopped byte stream. This is the ONE framing state machine in the
/// repo: the server's reactor `Connection` feeds it whatever each
/// non-blocking read returns, and `TcpChannel` feeds it blocking-read
/// chunks — both sides therefore agree on torn-prefix, torn-payload and
/// oversize handling by construction.
///
/// Usage: Feed() raw bytes (any split, down to one byte at a time), then
/// Next() until it returns false. Feed rejects a frame whose decoded
/// length exceeds `max_frame` with PROTOCOL_ERROR; after an error the
/// assembler is poisoned and every further Feed fails (the stream cannot
/// be resynchronized).
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_frame = kMaxFrameSize)
      : max_frame_(max_frame) {}

  /// Appends `len` stream bytes, completing zero or more frames.
  Status Feed(const uint8_t* data, size_t len);
  Status Feed(BytesView data) { return Feed(data.data(), data.size()); }

  /// Pops the next fully reassembled frame payload into `*frame`.
  bool Next(Bytes* frame);

  /// True when the stream stopped inside a frame (torn length prefix or
  /// incomplete payload) — an EOF here is a protocol violation, while an
  /// EOF with mid_frame() == false is a clean close at a frame boundary.
  bool mid_frame() const { return header_filled_ > 0 || reading_payload_; }

  /// Complete frames waiting to be popped.
  size_t ready() const { return ready_.size(); }

  /// Bytes buffered for the frame currently being reassembled.
  size_t partial_bytes() const {
    return header_filled_ + (reading_payload_ ? partial_.size() : 0);
  }

  /// Drops all buffered state (channel reconnects reuse the assembler).
  void Reset();

 private:
  uint32_t max_frame_;
  bool poisoned_ = false;

  uint8_t header_[kFrameHeaderSize] = {};
  size_t header_filled_ = 0;
  bool reading_payload_ = false;
  uint32_t expected_ = 0;
  Bytes partial_;
  std::deque<Bytes> ready_;
};

}  // namespace sse::net

#endif  // SSE_NET_FRAME_H_
