#include "sse/crypto/stream_cipher.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::crypto {
namespace {

TEST(StreamCipherTest, RoundTrip) {
  DeterministicRandom rng(1);
  auto cipher = StreamCipher::Create(Bytes(32, 0x42));
  ASSERT_TRUE(cipher.ok());
  Bytes plain = StringToBytes("posting list segment");
  auto ct = cipher->Encrypt(plain, rng);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), plain.size() + kStreamOverhead);
  auto pt = cipher->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, plain);
}

TEST(StreamCipherTest, EmptyPlaintext) {
  DeterministicRandom rng(2);
  auto cipher = StreamCipher::Create(Bytes(32, 0x01));
  ASSERT_TRUE(cipher.ok());
  auto ct = cipher->Encrypt(Bytes{}, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = cipher->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->empty());
}

TEST(StreamCipherTest, RandomizedCiphertexts) {
  DeterministicRandom rng(3);
  auto cipher = StreamCipher::Create(Bytes(32, 0x05));
  ASSERT_TRUE(cipher.ok());
  auto a = cipher->Encrypt(StringToBytes("x"), rng);
  auto b = cipher->Encrypt(StringToBytes("x"), rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(StreamCipherTest, TamperDetection) {
  DeterministicRandom rng(4);
  auto cipher = StreamCipher::Create(Bytes(32, 0x07));
  ASSERT_TRUE(cipher.ok());
  auto ct = cipher->Encrypt(StringToBytes("sensitive ids"), rng);
  ASSERT_TRUE(ct.ok());
  for (size_t i = 0; i < ct->size(); i += 7) {
    Bytes corrupted = *ct;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(cipher->Decrypt(corrupted).ok()) << "byte " << i;
  }
}

TEST(StreamCipherTest, WrongKeyFailsMac) {
  DeterministicRandom rng(5);
  auto cipher1 = StreamCipher::Create(Bytes(32, 0x08));
  auto cipher2 = StreamCipher::Create(Bytes(32, 0x09));
  ASSERT_TRUE(cipher1.ok());
  ASSERT_TRUE(cipher2.ok());
  auto ct = cipher1->Encrypt(StringToBytes("data"), rng);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(cipher2->Decrypt(*ct).ok());
}

TEST(StreamCipherTest, TooShortCiphertextRejected) {
  auto cipher = StreamCipher::Create(Bytes(32, 0x0a));
  ASSERT_TRUE(cipher.ok());
  EXPECT_FALSE(cipher->Decrypt(Bytes(kStreamOverhead - 1, 0)).ok());
  EXPECT_FALSE(cipher->Decrypt(Bytes{}).ok());
}

TEST(StreamCipherTest, KeyLengthValidation) {
  EXPECT_FALSE(StreamCipher::Create(Bytes(8, 1)).ok());
  EXPECT_TRUE(StreamCipher::Create(Bytes(16, 1)).ok());
  EXPECT_TRUE(StreamCipher::Create(Bytes(64, 1)).ok());
}

TEST(StreamCipherTest, DistinctKeysFromChainElements) {
  // Scheme 2 derives one cipher per chain element; neighboring elements
  // must produce unrelated ciphers.
  DeterministicRandom rng(6);
  auto c1 = StreamCipher::Create(Bytes(32, 0xaa));
  auto c2 = StreamCipher::Create(Bytes(32, 0xab));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto ct = c1->Encrypt(StringToBytes("segment"), rng);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(c2->Decrypt(*ct).ok());
}

}  // namespace
}  // namespace sse::crypto
