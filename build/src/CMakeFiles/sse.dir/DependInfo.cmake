
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sse/baselines/cgko_sse1.cc" "src/CMakeFiles/sse.dir/sse/baselines/cgko_sse1.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/baselines/cgko_sse1.cc.o.d"
  "/root/repo/src/sse/baselines/goh_zidx.cc" "src/CMakeFiles/sse.dir/sse/baselines/goh_zidx.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/baselines/goh_zidx.cc.o.d"
  "/root/repo/src/sse/baselines/swp.cc" "src/CMakeFiles/sse.dir/sse/baselines/swp.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/baselines/swp.cc.o.d"
  "/root/repo/src/sse/core/durable_server.cc" "src/CMakeFiles/sse.dir/sse/core/durable_server.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/durable_server.cc.o.d"
  "/root/repo/src/sse/core/padding.cc" "src/CMakeFiles/sse.dir/sse/core/padding.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/padding.cc.o.d"
  "/root/repo/src/sse/core/query.cc" "src/CMakeFiles/sse.dir/sse/core/query.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/query.cc.o.d"
  "/root/repo/src/sse/core/registry.cc" "src/CMakeFiles/sse.dir/sse/core/registry.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/registry.cc.o.d"
  "/root/repo/src/sse/core/scheme1_client.cc" "src/CMakeFiles/sse.dir/sse/core/scheme1_client.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme1_client.cc.o.d"
  "/root/repo/src/sse/core/scheme1_messages.cc" "src/CMakeFiles/sse.dir/sse/core/scheme1_messages.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme1_messages.cc.o.d"
  "/root/repo/src/sse/core/scheme1_server.cc" "src/CMakeFiles/sse.dir/sse/core/scheme1_server.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme1_server.cc.o.d"
  "/root/repo/src/sse/core/scheme2_client.cc" "src/CMakeFiles/sse.dir/sse/core/scheme2_client.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme2_client.cc.o.d"
  "/root/repo/src/sse/core/scheme2_messages.cc" "src/CMakeFiles/sse.dir/sse/core/scheme2_messages.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme2_messages.cc.o.d"
  "/root/repo/src/sse/core/scheme2_server.cc" "src/CMakeFiles/sse.dir/sse/core/scheme2_server.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/scheme2_server.cc.o.d"
  "/root/repo/src/sse/core/types.cc" "src/CMakeFiles/sse.dir/sse/core/types.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/types.cc.o.d"
  "/root/repo/src/sse/core/wire_common.cc" "src/CMakeFiles/sse.dir/sse/core/wire_common.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/core/wire_common.cc.o.d"
  "/root/repo/src/sse/crypto/aead.cc" "src/CMakeFiles/sse.dir/sse/crypto/aead.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/aead.cc.o.d"
  "/root/repo/src/sse/crypto/elgamal.cc" "src/CMakeFiles/sse.dir/sse/crypto/elgamal.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/elgamal.cc.o.d"
  "/root/repo/src/sse/crypto/hash_chain.cc" "src/CMakeFiles/sse.dir/sse/crypto/hash_chain.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/hash_chain.cc.o.d"
  "/root/repo/src/sse/crypto/hkdf.cc" "src/CMakeFiles/sse.dir/sse/crypto/hkdf.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/hkdf.cc.o.d"
  "/root/repo/src/sse/crypto/keys.cc" "src/CMakeFiles/sse.dir/sse/crypto/keys.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/keys.cc.o.d"
  "/root/repo/src/sse/crypto/prf.cc" "src/CMakeFiles/sse.dir/sse/crypto/prf.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/prf.cc.o.d"
  "/root/repo/src/sse/crypto/prg.cc" "src/CMakeFiles/sse.dir/sse/crypto/prg.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/prg.cc.o.d"
  "/root/repo/src/sse/crypto/sha256.cc" "src/CMakeFiles/sse.dir/sse/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/sha256.cc.o.d"
  "/root/repo/src/sse/crypto/stream_cipher.cc" "src/CMakeFiles/sse.dir/sse/crypto/stream_cipher.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/crypto/stream_cipher.cc.o.d"
  "/root/repo/src/sse/index/bloom.cc" "src/CMakeFiles/sse.dir/sse/index/bloom.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/index/bloom.cc.o.d"
  "/root/repo/src/sse/index/posting.cc" "src/CMakeFiles/sse.dir/sse/index/posting.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/index/posting.cc.o.d"
  "/root/repo/src/sse/net/channel.cc" "src/CMakeFiles/sse.dir/sse/net/channel.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/net/channel.cc.o.d"
  "/root/repo/src/sse/net/message.cc" "src/CMakeFiles/sse.dir/sse/net/message.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/net/message.cc.o.d"
  "/root/repo/src/sse/net/tcp.cc" "src/CMakeFiles/sse.dir/sse/net/tcp.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/net/tcp.cc.o.d"
  "/root/repo/src/sse/phr/phr_store.cc" "src/CMakeFiles/sse.dir/sse/phr/phr_store.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/phr/phr_store.cc.o.d"
  "/root/repo/src/sse/phr/record.cc" "src/CMakeFiles/sse.dir/sse/phr/record.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/phr/record.cc.o.d"
  "/root/repo/src/sse/phr/tokenizer.cc" "src/CMakeFiles/sse.dir/sse/phr/tokenizer.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/phr/tokenizer.cc.o.d"
  "/root/repo/src/sse/phr/workload.cc" "src/CMakeFiles/sse.dir/sse/phr/workload.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/phr/workload.cc.o.d"
  "/root/repo/src/sse/security/game.cc" "src/CMakeFiles/sse.dir/sse/security/game.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/security/game.cc.o.d"
  "/root/repo/src/sse/security/leakage.cc" "src/CMakeFiles/sse.dir/sse/security/leakage.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/security/leakage.cc.o.d"
  "/root/repo/src/sse/security/simulator.cc" "src/CMakeFiles/sse.dir/sse/security/simulator.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/security/simulator.cc.o.d"
  "/root/repo/src/sse/security/stats.cc" "src/CMakeFiles/sse.dir/sse/security/stats.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/security/stats.cc.o.d"
  "/root/repo/src/sse/security/trace.cc" "src/CMakeFiles/sse.dir/sse/security/trace.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/security/trace.cc.o.d"
  "/root/repo/src/sse/storage/document_store.cc" "src/CMakeFiles/sse.dir/sse/storage/document_store.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/storage/document_store.cc.o.d"
  "/root/repo/src/sse/storage/log_store.cc" "src/CMakeFiles/sse.dir/sse/storage/log_store.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/storage/log_store.cc.o.d"
  "/root/repo/src/sse/storage/snapshot.cc" "src/CMakeFiles/sse.dir/sse/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/storage/snapshot.cc.o.d"
  "/root/repo/src/sse/storage/wal.cc" "src/CMakeFiles/sse.dir/sse/storage/wal.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/storage/wal.cc.o.d"
  "/root/repo/src/sse/util/bitvec.cc" "src/CMakeFiles/sse.dir/sse/util/bitvec.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/bitvec.cc.o.d"
  "/root/repo/src/sse/util/bytes.cc" "src/CMakeFiles/sse.dir/sse/util/bytes.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/bytes.cc.o.d"
  "/root/repo/src/sse/util/crc32.cc" "src/CMakeFiles/sse.dir/sse/util/crc32.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/crc32.cc.o.d"
  "/root/repo/src/sse/util/logging.cc" "src/CMakeFiles/sse.dir/sse/util/logging.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/logging.cc.o.d"
  "/root/repo/src/sse/util/random.cc" "src/CMakeFiles/sse.dir/sse/util/random.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/random.cc.o.d"
  "/root/repo/src/sse/util/serde.cc" "src/CMakeFiles/sse.dir/sse/util/serde.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/serde.cc.o.d"
  "/root/repo/src/sse/util/status.cc" "src/CMakeFiles/sse.dir/sse/util/status.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/status.cc.o.d"
  "/root/repo/src/sse/util/timer.cc" "src/CMakeFiles/sse.dir/sse/util/timer.cc.o" "gcc" "src/CMakeFiles/sse.dir/sse/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
