#ifndef SSE_INDEX_BLOOM_H_
#define SSE_INDEX_BLOOM_H_

#include <cstddef>
#include <cstdint>

#include "sse/util/bitvec.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::index {

/// Standard Bloom filter over byte-string items, used by the Goh Z-IDX
/// baseline (one filter per document). Double hashing: two 64-bit values
/// are derived from SHA-256(item) and combined as h1 + i*h2 (Kirsch &
/// Mitzenmacher), so `num_hashes` probes cost one hash computation.
class BloomFilter {
 public:
  /// `num_bits` >= 8, `num_hashes` in [1, 32].
  static Result<BloomFilter> Create(size_t num_bits, size_t num_hashes);

  /// Chooses (m, k) for an expected `capacity` items at the given false
  /// positive rate.
  static Result<BloomFilter> CreateForCapacity(size_t capacity,
                                               double false_positive_rate);

  /// Reconstructs a filter from serialized bits (e.g. off the wire).
  static Result<BloomFilter> FromBits(BitVec bits, size_t num_hashes);

  Status Insert(BytesView item);
  /// May return false positives; never false negatives.
  Result<bool> Contains(BytesView item) const;

  size_t num_bits() const { return bits_.size(); }
  size_t num_hashes() const { return num_hashes_; }
  size_t inserted_count() const { return inserted_; }
  const BitVec& bits() const { return bits_; }

  /// Estimated false-positive probability at the current fill level.
  double EstimatedFalsePositiveRate() const;

 private:
  BloomFilter(BitVec bits, size_t num_hashes)
      : bits_(std::move(bits)), num_hashes_(num_hashes) {}

  BitVec bits_;
  size_t num_hashes_;
  size_t inserted_ = 0;
};

}  // namespace sse::index

#endif  // SSE_INDEX_BLOOM_H_
