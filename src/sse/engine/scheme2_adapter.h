#ifndef SSE_ENGINE_SCHEME2_ADAPTER_H_
#define SSE_ENGINE_SCHEME2_ADAPTER_H_

#include "sse/core/options.h"
#include "sse/core/scheme2_server.h"
#include "sse/engine/scheme_shard.h"

namespace sse::engine {

/// Sharding policy for Scheme 2 (paper §5.5–5.6).
///
/// Updates scatter their per-keyword segments by token; the one-round
/// search (Fig. 4) routes to a single shard, which walks the hash chain for
/// just its own keyword. Chain re-initialization broadcasts: FetchAll
/// concatenates every shard's dump, Reinit clears all shards and re-seeds
/// each with its slice of the new epoch's segments.
///
/// Lock discipline caveat: a Scheme 2 *search* refreshes the server's
/// Optimization-1 plaintext cache, so with the cache enabled searches take
/// the shard lock exclusively; disable the cache to make searches shared.
class Scheme2Adapter : public SchemeAdapter {
 public:
  explicit Scheme2Adapter(const core::SchemeOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "scheme2"; }
  std::unique_ptr<SchemeShard> CreateShard() const override;
  bool IsMutating(uint16_t msg_type) const override;
  LockMode LockModeFor(uint16_t msg_type) const override;
  Result<RequestPlan> Route(const net::Message& request,
                            size_t num_shards) const override;
  Result<net::Message> Merge(const net::Message& request,
                             const RequestPlan& plan,
                             std::vector<net::Message> replies,
                             const DocumentFetcher& fetch_docs) const override;

 private:
  core::SchemeOptions options_;
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_SCHEME2_ADAPTER_H_
