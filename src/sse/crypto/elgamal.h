#ifndef SSE_CRYPTO_ELGAMAL_H_
#define SSE_CRYPTO_ELGAMAL_H_

#include <cstddef>
#include <memory>

#include "sse/util/bytes.h"
#include "sse/util/random.h"
#include "sse/util/result.h"

namespace sse::crypto {

/// Named groups for the ElGamal instantiation of the paper's trapdoor
/// function F. The MODP groups are the safe-prime groups from RFC 3526;
/// kToy512 is a 512-bit safe prime for fast unit tests ONLY (insecure).
enum class ElGamalGroupId : int {
  kToy512 = 0,
  kModp1536 = 1,
  kModp2048 = 2,
  kModp3072 = 3,
};

/// Hashed-ElGamal public-key encryption over a safe-prime group.
///
/// This is the paper's `F(.)`: an IND-CPA public-key primitive that lets
/// the client — holder of the secret key — recover the per-keyword nonce
/// `r = F^{-1}(F(r))` that masks the posting bitmap in Scheme 1. The paper
/// calls F a "trapdoor permutation (e.g. an ElGamal encryption)"; we follow
/// its own suggestion and use ElGamal in KEM/DEM form:
///
///   F(r):  y ←R [1, q),  c1 = g^y,  k = SHA-256("sse.elgamal.kdf" ‖ h^y),
///          c2 = k ⊕ r          (r padded/limited to 32 bytes)
///   F^-1:  k = SHA-256("sse.elgamal.kdf" ‖ c1^x),  r = c2 ⊕ k
///
/// Exponents are drawn with 256 bits (the "short exponent" optimization
/// standard for MODP groups), which keeps Scheme 1 searches at two modular
/// exponentiations.
class ElGamal {
 public:
  ElGamal(ElGamal&&) noexcept;
  ElGamal& operator=(ElGamal&&) noexcept;
  ElGamal(const ElGamal&) = delete;
  ElGamal& operator=(const ElGamal&) = delete;
  ~ElGamal();

  /// Generates a fresh key pair in the given group.
  static Result<ElGamal> Generate(ElGamalGroupId group, RandomSource& rng);

  /// Deterministically derives the key pair from a 32-byte secret (used so
  /// the SSE client can reconstruct its ElGamal key from the master key
  /// without storing extra state).
  static Result<ElGamal> FromSecret(ElGamalGroupId group, BytesView secret);

  /// Encrypts a message of at most 32 bytes. Output layout:
  /// varint |c1| ‖ c1 ‖ varint |c2| ‖ c2.
  Result<Bytes> Encrypt(BytesView message, RandomSource& rng) const;

  /// Decrypts a ciphertext produced by Encrypt.
  Result<Bytes> Decrypt(BytesView ciphertext) const;

  /// Size in bytes of a ciphertext for a 32-byte message (fixed per group);
  /// the benches use it to report Scheme 1 storage overhead.
  size_t CiphertextSize() const;

  ElGamalGroupId group_id() const { return group_id_; }

  /// Maximum message length Encrypt accepts.
  static constexpr size_t kMaxMessageSize = 32;

  /// Opaque implementation (BIGNUM state); public only so the .cc file's
  /// free helpers can name it.
  struct Impl;

 private:
  explicit ElGamal(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
  ElGamalGroupId group_id_;
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_ELGAMAL_H_
