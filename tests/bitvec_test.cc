#include "sse/util/bitvec.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse {
namespace {

TEST(BitVecTest, StartsAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVecTest, SetGetFlip) {
  BitVec v(70);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(69);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(69));
  EXPECT_EQ(v.Count(), 4u);
  v.Flip(63);
  EXPECT_FALSE(v.Get(63));
  v.Set(0, false);
  EXPECT_FALSE(v.Get(0));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVecTest, OnesAscending) {
  BitVec v(130);
  v.Set(5);
  v.Set(64);
  v.Set(129);
  EXPECT_EQ(v.Ones(), (std::vector<uint64_t>{5, 64, 129}));
}

TEST(BitVecTest, FromPositions) {
  auto v = BitVec::FromPositions(16, {1, 3, 15});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Count(), 3u);
  EXPECT_TRUE(v->Get(15));
}

TEST(BitVecTest, FromPositionsRejectsOutOfRange) {
  EXPECT_FALSE(BitVec::FromPositions(16, {16}).ok());
}

TEST(BitVecTest, BytesRoundTripOddSizes) {
  for (size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 100u, 256u}) {
    BitVec v(bits);
    v.Set(0);
    if (bits > 2) v.Set(bits - 1);
    Bytes serialized = v.ToBytes();
    EXPECT_EQ(serialized.size(), (bits + 7) / 8);
    auto restored = BitVec::FromBytes(bits, serialized);
    ASSERT_TRUE(restored.ok()) << "bits=" << bits;
    EXPECT_EQ(*restored, v);
  }
}

TEST(BitVecTest, FromBytesRejectsWrongSize) {
  EXPECT_FALSE(BitVec::FromBytes(16, Bytes{0xff}).ok());
  EXPECT_FALSE(BitVec::FromBytes(16, Bytes{0, 0, 0}).ok());
}

TEST(BitVecTest, FromBytesRejectsDirtyPadding) {
  // 12 bits -> 2 bytes; the high 4 bits of byte 1 are padding.
  EXPECT_FALSE(BitVec::FromBytes(12, Bytes{0x00, 0xf0}).ok());
  EXPECT_TRUE(BitVec::FromBytes(12, Bytes{0x00, 0x0f}).ok());
}

TEST(BitVecTest, XorWith) {
  BitVec a(10);
  BitVec b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  ASSERT_TRUE(a.XorWith(b).ok());
  EXPECT_EQ(a.Ones(), (std::vector<uint64_t>{1, 3}));
}

TEST(BitVecTest, XorWithSizeMismatchFails) {
  BitVec a(10);
  BitVec b(11);
  EXPECT_FALSE(a.XorWith(b).ok());
}

TEST(BitVecTest, ResizeGrowAndShrink) {
  BitVec v(8);
  v.Set(7);
  v.Resize(16);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_TRUE(v.Get(7));
  EXPECT_FALSE(v.Get(15));
  v.Resize(4);
  EXPECT_EQ(v.Count(), 0u);  // bit 7 discarded
  v.Resize(8);
  EXPECT_FALSE(v.Get(7));  // stays cleared after shrink
}

TEST(BitVecTest, ClearResetsAllBits) {
  BitVec v(100);
  for (size_t i = 0; i < 100; i += 3) v.Set(i);
  v.Clear();
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVecTest, ToStringSmall) {
  BitVec v(4);
  v.Set(1);
  EXPECT_EQ(v.ToString(), "0100");
}

TEST(BitVecTest, FuzzAgainstStdVectorBool) {
  DeterministicRandom rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t bits = 1 + rng.Next() % 500;
    BitVec vec(bits);
    std::vector<bool> reference(bits, false);
    for (int op = 0; op < 300; ++op) {
      const size_t i = rng.Next() % bits;
      switch (rng.Next() % 4) {
        case 0:
          vec.Set(i);
          reference[i] = true;
          break;
        case 1:
          vec.Set(i, false);
          reference[i] = false;
          break;
        case 2:
          vec.Flip(i);
          reference[i] = !reference[i];
          break;
        case 3:
          ASSERT_EQ(vec.Get(i), reference[i]);
          break;
      }
    }
    size_t expected_count = 0;
    for (size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(vec.Get(i), reference[i]) << "bit " << i;
      if (reference[i]) ++expected_count;
    }
    EXPECT_EQ(vec.Count(), expected_count);
    // Serialization round-trips the exact state.
    auto restored = BitVec::FromBytes(bits, vec.ToBytes());
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, vec);
  }
}

TEST(BitVecTest, XorRandomizedSelfInverse) {
  DeterministicRandom rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t bits = 1 + rng.Next() % 300;
    BitVec data(bits);
    BitVec mask(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.Next() % 2) data.Set(i);
      if (rng.Next() % 2) mask.Set(i);
    }
    BitVec original = data;
    ASSERT_TRUE(data.XorWith(mask).ok());
    ASSERT_TRUE(data.XorWith(mask).ok());
    EXPECT_EQ(data, original);
  }
}

}  // namespace
}  // namespace sse
