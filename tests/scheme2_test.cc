#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;
using sse::testing::TestMasterKey;

class Scheme2Test : public ::testing::Test {
 protected:
  explicit Scheme2Test(core::SystemConfig config)
      : config_(config),
        rng_(99),
        sys_(MakeTestSystem(SystemKind::kScheme2, &rng_, config)) {}
  Scheme2Test() : Scheme2Test(FastTestConfig()) {}

  Scheme2Client* client() {
    return static_cast<Scheme2Client*>(sys_.client.get());
  }
  Scheme2Server* server() {
    return static_cast<Scheme2Server*>(sys_.server.get());
  }

  core::SystemConfig config_;
  DeterministicRandom rng_;
  SseSystem sys_;
};

TEST_F(Scheme2Test, StoreAndSearchSingleDocument) {
  SSE_ASSERT_OK(sys_.client->Store(
      {Document::Make(0, "record body", {"asthma", "gp2"})}));
  auto outcome = sys_.client->Search("asthma");
  SSE_ASSERT_OK_RESULT(outcome);
  ASSERT_EQ(outcome->ids, std::vector<uint64_t>{0});
  EXPECT_EQ(BytesToString(outcome->documents[0].second), "record body");
}

TEST_F(Scheme2Test, SearchIsOneRound) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  sys_.channel->ResetStats();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw"));
  EXPECT_EQ(sys_.channel->stats().rounds, 1u);  // Table 1: one round
}

TEST_F(Scheme2Test, UpdateIsOneRound) {
  sys_.channel->ResetStats();
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"k1", "k2"})}));
  EXPECT_EQ(sys_.channel->stats().rounds, 1u);  // Fig. 3: one message + ack
}

TEST_F(Scheme2Test, SearchUnknownKeywordIsEmpty) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  auto outcome = sys_.client->Search("other");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
}

TEST_F(Scheme2Test, SearchBeforeAnyStoreIsEmpty) {
  auto outcome = sys_.client->Search("anything");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
}

TEST_F(Scheme2Test, MultipleUpdatesAccumulateSegments) {
  // Interleave searches so each update takes a fresh chain element.
  for (uint64_t i = 0; i < 5; ++i) {
    SSE_ASSERT_OK(sys_.client->Store({Document::Make(i, "d", {"kw"})}));
    auto outcome = sys_.client->Search("kw");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids.size(), i + 1);
  }
  EXPECT_EQ(client()->counter(), 5u);
}

TEST_F(Scheme2Test, CounterReuseWithoutInterveningSearch) {
  // Optimization 2: consecutive updates share a chain element.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(1, "b", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(2, "c", {"kw"})}));
  EXPECT_EQ(client()->counter(), 1u);  // one element spent, not three
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
  // Next update after the search must advance the counter.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(3, "d", {"kw"})}));
  EXPECT_EQ(client()->counter(), 2u);
  auto again = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(again);
  EXPECT_EQ(again->ids.size(), 4u);
}

TEST_F(Scheme2Test, StaleKeywordSearchWalksChainForward) {
  // Update keyword A early, then advance the counter with other keywords;
  // searching A later must still work (server walks forward).
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"early"})}));
  for (uint64_t i = 1; i <= 6; ++i) {
    SSE_ASSERT_OK_RESULT(sys_.client->Search("early"));
    SSE_ASSERT_OK(sys_.client->Store(
        {Document::Make(i, "x", {"filler" + std::to_string(i)})}));
  }
  EXPECT_GT(client()->counter(), 3u);
  auto outcome = sys_.client->Search("early");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST_F(Scheme2Test, ChainExhaustionSurfacesCleanly) {
  core::SystemConfig tiny = FastTestConfig();
  tiny.scheme.chain_length = 3;
  DeterministicRandom rng(5);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng, tiny);
  auto* cl = static_cast<Scheme2Client*>(sys.client.get());

  for (uint64_t i = 0; i < 3; ++i) {
    SSE_ASSERT_OK(sys.client->Store(
        {Document::Make(i, "d", {"kw" + std::to_string(i)})}));
    SSE_ASSERT_OK_RESULT(sys.client->Search("kw0"));
  }
  EXPECT_EQ(cl->remaining_updates(), 0u);
  Status s = sys.client->Store({Document::Make(10, "d", {"overflow"})});
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(Scheme2Test, ReinitializeRestoresCapacityAndData) {
  core::SystemConfig tiny = FastTestConfig();
  tiny.scheme.chain_length = 4;
  DeterministicRandom rng(6);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng, tiny);
  auto* cl = static_cast<Scheme2Client*>(sys.client.get());

  for (uint64_t i = 0; i < 4; ++i) {
    SSE_ASSERT_OK(sys.client->Store(
        {Document::Make(i, "doc" + std::to_string(i), {"kw", "u" + std::to_string(i)})}));
    SSE_ASSERT_OK_RESULT(sys.client->Search("kw"));
  }
  ASSERT_EQ(sys.client->Store({Document::Make(99, "x", {"kw"})}).code(),
            StatusCode::kResourceExhausted);

  SSE_ASSERT_OK(cl->Reinitialize());
  EXPECT_EQ(cl->epoch(), 1u);
  EXPECT_GT(cl->remaining_updates(), 0u);

  // Old data is still searchable under the new epoch.
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2, 3}));
  auto unique = sys.client->Search("u2");
  SSE_ASSERT_OK_RESULT(unique);
  EXPECT_EQ(unique->ids, std::vector<uint64_t>{2});

  // And new updates fit again.
  SSE_ASSERT_OK(sys.client->Store({Document::Make(99, "x", {"kw"})}));
  auto grown = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(grown);
  EXPECT_EQ(grown->ids.size(), 5u);
}

TEST_F(Scheme2Test, ServerCacheReducesDecryptionWork) {
  // With the Optimization 1 cache, a repeat search decrypts nothing new.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw"));
  const uint64_t after_first = server()->total_segments_decrypted();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw"));
  EXPECT_EQ(server()->total_segments_decrypted(), after_first);
}

TEST_F(Scheme2Test, CacheDisabledDecryptsEveryTime) {
  core::SystemConfig config = FastTestConfig();
  config.scheme.server_plaintext_cache = false;
  DeterministicRandom rng(7);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng, config);
  auto* srv = static_cast<Scheme2Server*>(sys.server.get());

  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK_RESULT(sys.client->Search("kw"));
  const uint64_t after_first = srv->total_segments_decrypted();
  SSE_ASSERT_OK_RESULT(sys.client->Search("kw"));
  EXPECT_EQ(srv->total_segments_decrypted(), 2 * after_first);
  // Results stay correct either way.
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST_F(Scheme2Test, CounterAlwaysIncrementsWithoutOptimization2) {
  core::SystemConfig config = FastTestConfig();
  config.scheme.counter_after_search_only = false;
  DeterministicRandom rng(8);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng, config);
  auto* cl = static_cast<Scheme2Client*>(sys.client.get());

  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "b", {"kw"})}));
  SSE_ASSERT_OK(sys.client->Store({Document::Make(2, "c", {"kw"})}));
  EXPECT_EQ(cl->counter(), 3u);  // every update spends an element
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(Scheme2Test, FakeUpdateAddsDecoySegments) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->FakeUpdate({"kw", "ghost"}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  auto ghost = sys_.client->Search("ghost");
  SSE_ASSERT_OK_RESULT(ghost);
  EXPECT_TRUE(ghost->ids.empty());
}

TEST_F(Scheme2Test, DuplicateIdRejected) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"x"})}));
  EXPECT_EQ(sys_.client->Store({Document::Make(0, "b", {"x"})}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(Scheme2Test, TrapdoorDeterministicPerCounter) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"w"})}));
  auto t1 = client()->MakeTrapdoor("w");
  auto t2 = client()->MakeTrapdoor("w");
  SSE_ASSERT_OK_RESULT(t1);
  SSE_ASSERT_OK_RESULT(t2);
  EXPECT_EQ(t1->token, t2->token);
  EXPECT_EQ(t1->chain_element, t2->chain_element);
}

TEST_F(Scheme2Test, ServerStateSerializationRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "alpha", {"k1"}),
                                    Document::Make(1, "beta", {"k1", "k2"})}));
  SSE_ASSERT_OK_RESULT(sys_.client->Search("k1"));
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);

  Scheme2Server restored(FastTestConfig().scheme);
  SSE_ASSERT_OK(restored.RestoreState(*state));
  EXPECT_EQ(restored.unique_keywords(), 2u);
  EXPECT_EQ(restored.document_count(), 2u);

  // Important: the client state (counter) lives client-side. A fresh client
  // would be out of sync; reuse the existing one by pointing its channel at
  // the restored server — instead, simply verify the serialized bytes are
  // stable under a second round trip.
  auto state2 = restored.SerializeState();
  SSE_ASSERT_OK_RESULT(state2);
  EXPECT_EQ(*state, *state2);
}

TEST_F(Scheme2Test, MalformedMessagesRejected) {
  for (uint16_t type : {kMsgS2UpdateRequest, kMsgS2SearchRequest,
                        kMsgS2ReinitRequest}) {
    auto reply = sys_.channel->Call(net::Message{type, Bytes{0xde, 0xad}});
    EXPECT_FALSE(reply.ok()) << "type " << type;
  }
  EXPECT_FALSE(sys_.channel->Call(net::Message{0x02f0, {}}).ok());
}

TEST_F(Scheme2Test, TamperedSegmentFailsSearchLoudly) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  // Corrupt the stored segment through the persistence interface.
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);
  // Flip a byte near the end (inside the segment ciphertext/tag region).
  Bytes corrupted = *state;
  corrupted[corrupted.size() / 2] ^= 0x01;
  // Restoring may fail outright (structure damage) or succeed with a
  // corrupted segment; in the latter case the search must fail with a
  // crypto error, never return wrong ids silently.
  Scheme2Server victim(FastTestConfig().scheme);
  Status restore = victim.RestoreState(corrupted);
  if (restore.ok()) {
    net::InProcessChannel channel(&victim);
    DeterministicRandom rng(11);
    auto client = Scheme2Client::Create(TestMasterKey(),
                                        FastTestConfig().scheme, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    // Mirror the original client's counter so the trapdoor matches.
    SSE_ASSERT_OK((*client)->Store({Document::Make(50, "x", {"other"})}));
    auto outcome = (*client)->Search("kw");
    if (outcome.ok()) {
      EXPECT_TRUE(outcome->ids.empty() ||
                  outcome->ids == std::vector<uint64_t>{0});
    }
  }
}

TEST_F(Scheme2Test, ManyKeywordsPerDocument) {
  std::vector<std::string> keywords;
  for (int i = 0; i < 50; ++i) keywords.push_back("kw" + std::to_string(i));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "fat doc", keywords)}));
  EXPECT_EQ(server()->unique_keywords(), 50u);
  for (int i = 0; i < 50; i += 7) {
    auto outcome = sys_.client->Search("kw" + std::to_string(i));
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  }
}

}  // namespace
}  // namespace sse::core
