#include "sse/obs/stats_logger.h"

#include <sstream>

#include "sse/obs/metrics_registry.h"
#include "sse/obs/slo.h"
#include "sse/obs/trace.h"
#include "sse/util/logging.h"

namespace sse::obs {

StatsLogger::StatsLogger(std::chrono::milliseconds period) {
  thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      lock.unlock();
      LogOnce();
      lock.lock();
    }
  });
}

StatsLogger::~StatsLogger() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void StatsLogger::LogOnce() {
  // Digest: every plain counter/gauge sample line from the Prometheus
  // rendering, comma-joined. Bucket lines are skipped to keep it one line.
  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  std::istringstream in(text);
  std::string line;
  std::string digest;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find("_bucket{") != std::string::npos) continue;
    if (!digest.empty()) digest += ", ";
    digest += line;
  }
  SSE_LOG(Info) << "stats: " << (digest.empty() ? "(no metrics)" : digest)
                << "; spans_recorded="
                << SpanCollector::Global().recorded();
  // One SLO line per period: per-class attainment and burn rate, the
  // operator's quickest "is the error budget on fire" glance.
  SSE_LOG(Info) << "slo: " << SloTracker::Global().Summary();
}

}  // namespace sse::obs
