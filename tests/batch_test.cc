// Batch envelope coverage: wire codec round-trips and rejection of
// malformed frames, engine fan-out with per-op replies, end-to-end
// equivalence of the batched client against the monolithic wire format,
// and the durable exactly-once guarantees — per-op dedup across full and
// partial envelope retries, including a WAL torn mid-batch by a crash.

#include "sse/net/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/wire_common.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/retry.h"
#include "sse/util/serde.h"
#include "test_util.h"

namespace sse {
namespace {

using ::sse::testing::FastTestConfig;
using ::sse::testing::TempDir;
using ::sse::testing::TestMasterKey;

TEST(BatchCodecTest, RequestRoundTrip) {
  net::BatchRequest batch;
  batch.ops.push_back({101, 0x0101, Bytes{1, 2, 3}});
  batch.ops.push_back({102, 0x0203, Bytes{}});
  batch.ops.push_back({1ull << 40, 0xffff, Bytes{9}});
  const net::Message msg = batch.ToMessage();
  EXPECT_EQ(msg.type, net::kMsgBatch);

  auto decoded = net::BatchRequest::FromMessage(msg);
  SSE_ASSERT_OK_RESULT(decoded);
  ASSERT_EQ(decoded->ops.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->ops[i].seq, batch.ops[i].seq);
    EXPECT_EQ(decoded->ops[i].type, batch.ops[i].type);
    EXPECT_EQ(decoded->ops[i].payload, batch.ops[i].payload);
  }
}

TEST(BatchCodecTest, ReplyRoundTrip) {
  net::BatchReply reply;
  reply.entries.push_back({0x0102, Bytes{4, 5}});
  reply.entries.push_back({net::kMsgError, Bytes{6}});
  const net::Message msg = reply.ToMessage();
  EXPECT_EQ(msg.type, net::kMsgBatchReply);

  auto decoded = net::BatchReply::FromMessage(msg);
  SSE_ASSERT_OK_RESULT(decoded);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].type, 0x0102);
  EXPECT_EQ(decoded->entries[0].payload, (Bytes{4, 5}));
  EXPECT_EQ(decoded->entries[1].type, net::kMsgError);
}

TEST(BatchCodecTest, EmptyBatchRoundTrips) {
  auto request = net::BatchRequest::FromMessage(net::BatchRequest{}.ToMessage());
  SSE_ASSERT_OK_RESULT(request);
  EXPECT_TRUE(request->ops.empty());
  auto reply = net::BatchReply::FromMessage(net::BatchReply{}.ToMessage());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_TRUE(reply->entries.empty());
}

TEST(BatchCodecTest, WrongMessageTypeRejected) {
  net::Message msg = net::BatchRequest{}.ToMessage();
  msg.type = net::kMsgError;
  EXPECT_FALSE(net::BatchRequest::FromMessage(msg).ok());
  net::Message reply = net::BatchReply{}.ToMessage();
  reply.type = net::kMsgBatch;
  EXPECT_FALSE(net::BatchReply::FromMessage(reply).ok());
}

TEST(BatchCodecTest, TruncatedPayloadRejected) {
  net::BatchRequest batch;
  batch.ops.push_back({7, 0x0101, Bytes{1, 2, 3, 4, 5, 6, 7, 8}});
  net::Message msg = batch.ToMessage();
  msg.payload.resize(msg.payload.size() - 3);
  EXPECT_FALSE(net::BatchRequest::FromMessage(msg).ok());
}

TEST(BatchCodecTest, AbsurdOpCountRejectedBeforeAllocation) {
  // A hostile frame claiming 2^40 ops must fail the plausibility check
  // (count > payload bytes), not attempt a giant reserve.
  BufferWriter w;
  w.PutVarint(1ull << 40);
  net::Message msg;
  msg.type = net::kMsgBatch;
  msg.payload = w.TakeData();
  EXPECT_FALSE(net::BatchRequest::FromMessage(msg).ok());
}

TEST(BatchCodecTest, TrailingGarbageRejected) {
  net::BatchRequest batch;
  batch.ops.push_back({1, 0x0101, Bytes{1}});
  net::Message msg = batch.ToMessage();
  msg.payload.push_back(0x00);
  EXPECT_FALSE(net::BatchRequest::FromMessage(msg).ok());
}

// ---------------------------------------------------------------------------
// Engine fan-out.

net::Message FetchOp(const std::vector<uint64_t>& ids) {
  net::Message msg;
  msg.type = net::kMsgFetchDocuments;
  BufferWriter w;
  core::PutIdList(w, ids);
  msg.payload = w.TakeData();
  return msg;
}

/// Engine with a few documents stored through a plain (monolithic) client.
struct LoadedEngine {
  LoadedEngine() : rng(31) {
    auto created = engine::ServerEngine::Create(
        std::make_unique<engine::Scheme1Adapter>(FastTestConfig().scheme),
        engine::EngineOptions{});
    EXPECT_TRUE(created.ok());
    engine = std::move(created).value();
    net::InProcessChannel channel(engine.get());
    auto client = core::Scheme1Client::Create(
        TestMasterKey(), FastTestConfig().scheme, &channel, &rng);
    EXPECT_TRUE(client.ok());
    SSE_EXPECT_OK((*client)->Store(
        {core::Document::Make(1, "alpha text", {"alpha", "common"}),
         core::Document::Make(2, "beta text", {"beta", "common"})}));
  }
  DeterministicRandom rng;
  std::unique_ptr<engine::ServerEngine> engine;
};

TEST(EngineBatchTest, FanOutReturnsAlignedPerOpReplies) {
  LoadedEngine loaded;
  net::BatchRequest batch;
  batch.ops.push_back({10, FetchOp({1}).type, FetchOp({1}).payload});
  batch.ops.push_back({11, FetchOp({2}).type, FetchOp({2}).payload});
  // Garbage payload for a real message type: fails as an error ENTRY, not
  // as an envelope failure — its neighbors' outcomes stand.
  batch.ops.push_back({12, core::kMsgS1SearchRequest, Bytes{0xde, 0xad}});
  net::Message envelope = batch.ToMessage();
  envelope.StampSession(77, 1000);

  auto reply = loaded.engine->Handle(envelope);
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(reply->type, net::kMsgBatchReply);
  // The envelope's own session is echoed so a pipelined transport can
  // correlate the frame.
  EXPECT_TRUE(reply->has_session);
  EXPECT_EQ(reply->client_id, 77u);
  EXPECT_EQ(reply->seq, 1000u);

  auto decoded = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(decoded);
  ASSERT_EQ(decoded->entries.size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded->entries[i].type, net::kMsgFetchDocumentsResult);
    BufferReader r(decoded->entries[i].payload);
    auto docs = core::GetWireDocuments(r);
    SSE_ASSERT_OK_RESULT(docs);
    ASSERT_EQ(docs->size(), 1u);
    EXPECT_EQ((*docs)[0].id, i + 1);
  }
  EXPECT_EQ(decoded->entries[2].type, net::kMsgError);
  const net::Message bad{decoded->entries[2].type,
                         decoded->entries[2].payload};
  EXPECT_FALSE(net::DecodeErrorMessage(bad).ok());

  const engine::MetricsSnapshot snap = loaded.engine->Metrics();
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.batch_ops, 3u);
}

TEST(EngineBatchTest, NestedEnvelopeRejectedPerOp) {
  LoadedEngine loaded;
  net::BatchRequest inner;
  inner.ops.push_back({1, net::kMsgFetchDocuments, FetchOp({1}).payload});
  const net::Message inner_msg = inner.ToMessage();

  net::BatchRequest batch;
  batch.ops.push_back({20, FetchOp({1}).type, FetchOp({1}).payload});
  batch.ops.push_back({21, net::kMsgBatch, inner_msg.payload});
  net::Message envelope = batch.ToMessage();
  envelope.StampSession(77, 2000);

  auto reply = loaded.engine->Handle(envelope);
  SSE_ASSERT_OK_RESULT(reply);
  auto decoded = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(decoded);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].type, net::kMsgFetchDocumentsResult);
  EXPECT_EQ(decoded->entries[1].type, net::kMsgError);
  const net::Message err{decoded->entries[1].type,
                         decoded->entries[1].payload};
  EXPECT_EQ(net::DecodeErrorMessage(err).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineBatchTest, MalformedEnvelopeFailsWhole) {
  LoadedEngine loaded;
  net::Message envelope;
  envelope.type = net::kMsgBatch;
  envelope.payload = Bytes{0xff, 0xff, 0xff};
  EXPECT_FALSE(loaded.engine->Handle(envelope).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: the batched client against the monolithic wire format.

/// One system under each wire format, same key, same corpus.
template <typename Client, typename Adapter>
struct Pair {
  Pair() : plain_rng(7), batched_rng(7) {
    core::SchemeOptions plain_opts = FastTestConfig().scheme;
    core::SchemeOptions batched_opts = plain_opts;
    batched_opts.batch_ops = true;

    auto mk_engine = [](const core::SchemeOptions& o) {
      auto created = engine::ServerEngine::Create(
          std::make_unique<Adapter>(o), engine::EngineOptions{});
      EXPECT_TRUE(created.ok());
      return std::move(created).value();
    };
    plain_engine = mk_engine(plain_opts);
    batched_engine = mk_engine(batched_opts);

    plain_channel =
        std::make_unique<net::InProcessChannel>(plain_engine.get());
    batched_channel =
        std::make_unique<net::InProcessChannel>(batched_engine.get());
    net::RetryOptions retry_opts;
    retry_opts.batch_size = 8;
    retry_opts.max_inflight = 4;
    retry = std::make_unique<net::RetryingChannel>(batched_channel.get(),
                                                   retry_opts, &batched_rng);

    auto plain_created = Client::Create(TestMasterKey(), plain_opts,
                                        plain_channel.get(), &plain_rng);
    EXPECT_TRUE(plain_created.ok());
    plain = std::move(plain_created).value();
    auto batched_created =
        Client::Create(TestMasterKey(), batched_opts, retry.get(),
                       &batched_rng);
    EXPECT_TRUE(batched_created.ok());
    batched = std::move(batched_created).value();
  }

  DeterministicRandom plain_rng;
  DeterministicRandom batched_rng;
  std::unique_ptr<engine::ServerEngine> plain_engine;
  std::unique_ptr<engine::ServerEngine> batched_engine;
  std::unique_ptr<net::InProcessChannel> plain_channel;
  std::unique_ptr<net::InProcessChannel> batched_channel;
  std::unique_ptr<net::RetryingChannel> retry;
  std::unique_ptr<Client> plain;
  std::unique_ptr<Client> batched;
};

std::vector<core::Document> Corpus() {
  return {core::Document::Make(1, "alpha text", {"alpha", "common"}),
          core::Document::Make(2, "beta text", {"beta", "common"}),
          core::Document::Make(3, "gamma text", {"gamma"}),
          core::Document::Make(4, "delta text", {"delta", "alpha"})};
}

const std::vector<std::string>& Keywords() {
  static const std::vector<std::string> kws{
      "alpha", "beta", "gamma", "delta", "common", "missing"};
  return kws;
}

template <typename Client, typename Adapter>
void ExpectBatchedMatchesPlain() {
  Pair<Client, Adapter> pair;
  SSE_ASSERT_OK(pair.plain->Store(Corpus()));
  SSE_ASSERT_OK(pair.batched->Store(Corpus()));
  // The batched store really used the batch path.
  EXPECT_GT(pair.retry->retry_stats().batches, 0u);
  EXPECT_GT(pair.batched_engine->Metrics().batches, 0u);

  for (const std::string& kw : Keywords()) {
    auto plain_result = pair.plain->Search(kw);
    auto batched_result = pair.batched->Search(kw);
    SSE_ASSERT_OK_RESULT(plain_result);
    SSE_ASSERT_OK_RESULT(batched_result);
    EXPECT_EQ(plain_result->ids, batched_result->ids) << "keyword: " << kw;
  }

  // MultiSearch resolves every keyword in pipelined envelopes and returns
  // outcomes aligned with the input; they must match per-keyword searches.
  auto multi = pair.batched->MultiSearch(Keywords());
  SSE_ASSERT_OK_RESULT(multi);
  ASSERT_EQ(multi->size(), Keywords().size());
  for (size_t i = 0; i < Keywords().size(); ++i) {
    auto single = pair.plain->Search(Keywords()[i]);
    SSE_ASSERT_OK_RESULT(single);
    EXPECT_EQ((*multi)[i].ids, single->ids)
        << "keyword: " << Keywords()[i];
    EXPECT_EQ((*multi)[i].documents.size(), single->documents.size());
  }
}

TEST(BatchEndToEndTest, Scheme1BatchedClientMatchesMonolithic) {
  ExpectBatchedMatchesPlain<core::Scheme1Client, engine::Scheme1Adapter>();
}

TEST(BatchEndToEndTest, Scheme2BatchedClientMatchesMonolithic) {
  ExpectBatchedMatchesPlain<core::Scheme2Client, engine::Scheme2Adapter>();
}

TEST(BatchEndToEndTest, MultiSearchFallsBackWithoutBatchOps) {
  // batch_ops off: MultiSearch must still work (sequential Search loop).
  DeterministicRandom rng(41);
  auto created = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(FastTestConfig().scheme),
      engine::EngineOptions{});
  SSE_ASSERT_OK_RESULT(created);
  net::InProcessChannel channel(created->get());
  auto client = core::Scheme1Client::Create(
      TestMasterKey(), FastTestConfig().scheme, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store(Corpus()));
  auto multi = (*client)->MultiSearch({"alpha", "missing", "common"});
  SSE_ASSERT_OK_RESULT(multi);
  ASSERT_EQ(multi->size(), 3u);
  EXPECT_EQ((*multi)[0].ids, (std::vector<uint64_t>{1, 4}));
  EXPECT_TRUE((*multi)[1].ids.empty());
  EXPECT_EQ((*multi)[2].ids, (std::vector<uint64_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// Durable batches: group commit, recovery, per-op exactly-once.

TEST(DurableBatchTest, BatchedStoreSurvivesRestartViaWalReplay) {
  TempDir dir;
  DeterministicRandom rng(51);
  core::SchemeOptions options = FastTestConfig().scheme;
  options.batch_ops = true;

  {
    core::Scheme1Server inner(options);
    auto durable = core::DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    net::RetryOptions retry_opts;
    retry_opts.batch_size = 8;
    net::RetryingChannel retry(&channel, retry_opts, &rng);
    auto client =
        core::Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK(
        (*client)->Store({core::Document::Make(0, "alpha", {"ka"}),
                          core::Document::Make(1, "beta", {"kb"})}));
    EXPECT_GT(retry.retry_stats().batches, 0u);
    EXPECT_GT((*durable)->wal_records(), 0u);
    // The whole update round cost at most a couple of group syncs, not one
    // fsync per journaled sub-op.
    EXPECT_LT((*durable)->wal_syncs(), (*durable)->wal_records());
  }

  // Recovery replays the individually journaled sub-ops.
  core::Scheme1Server inner(options);
  auto durable = core::DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  EXPECT_EQ(inner.document_count(), 2u);
  net::InProcessChannel channel(durable->get());
  DeterministicRandom rng2(52);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &channel, &rng2);
  SSE_ASSERT_OK_RESULT(client);
  auto outcome = (*client)->Search("ka");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0}));
}

/// Runs a batched two-keyword store against a durable Scheme 1 server and
/// returns the update-round kMsgBatch envelope exactly as it crossed the
/// wire (stamped, mutating sub-ops inside).
net::Message RecordUpdateEnvelope(const std::string& dir,
                                  core::Scheme1Server* inner,
                                  const core::SchemeOptions& options) {
  DeterministicRandom rng(61);
  auto durable = core::DurableServer::Open(dir, inner);
  EXPECT_TRUE(durable.ok());
  net::InProcessChannel::Options record;
  record.record_transcript = true;
  net::InProcessChannel channel(durable->get(), record);
  net::RetryOptions retry_opts;
  retry_opts.batch_size = 8;
  net::RetryingChannel retry(&channel, retry_opts, &rng);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
  EXPECT_TRUE(client.ok());
  SSE_EXPECT_OK((*client)->Store({core::Document::Make(0, "alpha", {"ka"}),
                                  core::Document::Make(1, "beta", {"kb"})}));
  net::Message envelope;
  for (const net::Exchange& ex : channel.transcript()) {
    if (ex.request.type != net::kMsgBatch) continue;
    auto batch = net::BatchRequest::FromMessage(ex.request);
    EXPECT_TRUE(batch.ok());
    if (!batch->ops.empty() &&
        batch->ops[0].type == core::kMsgS1UpdateRequest) {
      envelope = ex.request;
    }
  }
  EXPECT_EQ(envelope.type, net::kMsgBatch);
  EXPECT_TRUE(envelope.has_session);
  return envelope;
}

TEST(DurableBatchTest, RetriedEnvelopeDedupsEverySubOp) {
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;
  options.batch_ops = true;
  core::Scheme1Server inner(options);
  const net::Message envelope =
      RecordUpdateEnvelope(dir.path(), &inner, options);

  // Replay the exact envelope against a recovered server: every mutating
  // sub-op is served from the reply cache, nothing is re-applied.
  core::Scheme1Server inner2(options);
  auto durable = core::DurableServer::Open(dir.path(), &inner2);
  SSE_ASSERT_OK_RESULT(durable);
  const uint64_t docs_before = inner2.document_count();
  const uint64_t wal_before = (*durable)->wal_records();
  auto reply = (*durable)->Handle(envelope);
  SSE_ASSERT_OK_RESULT(reply);
  auto decoded = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(decoded);
  for (const auto& entry : decoded->entries) {
    const net::Message op_reply{entry.type, entry.payload};
    SSE_EXPECT_OK(net::DecodeErrorMessage(op_reply));
  }
  EXPECT_EQ(inner2.document_count(), docs_before);
  EXPECT_EQ((*durable)->wal_records(), wal_before);  // nothing re-journaled
  ASSERT_NE((*durable)->reply_cache(), nullptr);
  EXPECT_GT((*durable)->reply_cache()->hits(), 0u);

  // A PARTIAL retry — a fresh envelope carrying a subset of the ops under
  // their original seqs, as the client sends after a torn batch — dedups
  // the same way.
  auto batch = net::BatchRequest::FromMessage(envelope);
  SSE_ASSERT_OK_RESULT(batch);
  ASSERT_GE(batch->ops.size(), 2u);
  net::BatchRequest partial;
  partial.ops.push_back(batch->ops[1]);
  net::Message partial_env = partial.ToMessage();
  partial_env.StampSession(envelope.client_id, envelope.seq + 1000);
  auto partial_reply = (*durable)->Handle(partial_env);
  SSE_ASSERT_OK_RESULT(partial_reply);
  EXPECT_EQ(inner2.document_count(), docs_before);
  EXPECT_EQ((*durable)->wal_records(), wal_before);
}

TEST(DurableBatchTest, TornBatchRetryAppliesEachSubOpExactlyOnce) {
  // Crash tears the WAL inside the batch: the last journaled sub-op record
  // is lost. A client retry of the WHOLE envelope (op seqs unchanged) must
  // re-execute only the torn sub-op; the surviving ones are served from
  // the recovered cache. The index then agrees with an honest client.
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;
  options.batch_ops = true;
  core::Scheme1Server inner(options);
  const net::Message envelope =
      RecordUpdateEnvelope(dir.path(), &inner, options);

  // Tear into the tail record, as a crash mid-append would.
  const std::string wal_path = dir.path() + "/wal.000001.log";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 7), 0);
  std::fclose(f);

  core::Scheme1Server inner2(options);
  auto durable = core::DurableServer::Open(dir.path(), &inner2);
  SSE_ASSERT_OK_RESULT(durable);

  auto reply = (*durable)->Handle(envelope);
  SSE_ASSERT_OK_RESULT(reply);
  auto decoded = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(decoded);
  for (const auto& entry : decoded->entries) {
    const net::Message op_reply{entry.type, entry.payload};
    SSE_EXPECT_OK(net::DecodeErrorMessage(op_reply));
  }
  ASSERT_NE((*durable)->reply_cache(), nullptr);
  EXPECT_GT((*durable)->reply_cache()->hits(), 0u);  // survivors deduped

  // A second retry of the envelope is now fully cached.
  const uint64_t wal_after = (*durable)->wal_records();
  SSE_ASSERT_OK_RESULT((*durable)->Handle(envelope));
  EXPECT_EQ((*durable)->wal_records(), wal_after);
  EXPECT_EQ(inner2.document_count(), 2u);

  // Both keywords resolve: each sub-op's XOR delta was applied exactly
  // once despite the torn journal and the double retry.
  net::InProcessChannel channel(durable->get());
  DeterministicRandom rng(62);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  auto ka = (*client)->Search("ka");
  SSE_ASSERT_OK_RESULT(ka);
  EXPECT_EQ(ka->ids, (std::vector<uint64_t>{0}));
  auto kb = (*client)->Search("kb");
  SSE_ASSERT_OK_RESULT(kb);
  EXPECT_EQ(kb->ids, (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace sse
