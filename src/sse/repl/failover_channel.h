#ifndef SSE_REPL_FAILOVER_CHANNEL_H_
#define SSE_REPL_FAILOVER_CHANNEL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sse/net/channel.h"
#include "sse/net/tcp.h"
#include "sse/repl/sender.h"
#include "sse/util/result.h"

namespace sse::repl {

/// Scans Prometheus text for a `name value` sample at line start; returns
/// false when the series is absent. This is how the client side reads
/// replication role out of the kMsgStats scrape.
bool FindMetricValue(const std::string& prometheus_text,
                     const std::string& name, double* value);

/// Client-side endpoint router: one Channel facade over a replicated
/// node set. Mutations go to the current primary — discovered by probing
/// endpoints with the stats RPC and reading the node-injected
/// `sse_repl_is_primary` gauge — and the learned role is cached until it
/// stops working. Non-mutating calls can optionally fan out to followers
/// (explicitly stale reads).
///
/// This layer performs exactly ONE routing attempt per call: failures
/// surface as retryable statuses and a demoted role cache. Stack a
/// RetryingChannel on top for retries — its inner Reset() between
/// attempts lands here and forces a fresh primary probe, and its session
/// stamping keeps re-routed mutations exactly-once at the server's
/// ReplyCache even when an attempt switches endpoints mid-flight.
///
/// Like every Channel, a FailoverChannel is a single-caller object.
class FailoverChannel : public net::Channel {
 public:
  struct Options {
    /// Transport knobs for every per-endpoint TcpChannel.
    net::TcpChannel::Options channel;
    /// Serve non-mutating requests from any reachable endpoint (follower
    /// read views are stale by up to the replication lag). Off = every
    /// call routes to the primary.
    bool read_from_followers = false;
    /// Classifies requests for routing. Unset = treat everything as
    /// mutating (safe: all traffic goes to the primary).
    std::function<bool(const net::Message&)> is_mutating;
    /// Redial gate per endpoint after a failed dial.
    uint64_t backoff_initial_ms = 100;
    uint64_t backoff_max_ms = 2000;
    /// Per-endpoint circuit breaker: after this many *consecutive*
    /// retryable failures the endpoint is held open (refused without a
    /// wire attempt) for `breaker_open_ms`, then given one half-open
    /// trial. A server-side shed (RESOURCE_EXHAUSTED) opens the breaker
    /// immediately for the server's retry-after hint — the node is alive,
    /// it asked to be left alone. 0 disables the breaker.
    int breaker_failure_threshold = 5;
    uint64_t breaker_open_ms = 1000;
  };

  /// Circuit state of one endpoint, oldest pattern in the book: closed =
  /// traffic flows, open = refuse until a deadline, half-open = one probe
  /// in flight decides which way to settle.
  enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit FailoverChannel(std::vector<ReplSender::Endpoint> endpoints);
  FailoverChannel(std::vector<ReplSender::Endpoint> endpoints,
                  Options options);
  ~FailoverChannel() override;

  Result<net::Message> Call(const net::Message& request) override;
  CallId Submit(const net::Message& request) override;
  Result<net::Message> Await(CallId id) override;
  size_t pending_calls() const override;

  /// Drops the cached primary and resets every endpoint transport; the
  /// next call re-probes. RetryingChannel calls this between attempts.
  void Reset() override;

  /// Forwards the IO-deadline cap to every endpoint transport (current
  /// and future — late-dialed nodes inherit it on connect).
  void SetIoDeadlineMs(double ms) override;

  const net::ChannelStats& stats() const override;
  void ResetStats() override;

  /// Index into the endpoint list of the cached primary, -1 if unknown.
  int primary_index() const { return primary_; }
  /// Times the cached primary was demoted (a failover as the client saw it).
  uint64_t failovers() const { return failovers_; }
  /// Times any endpoint's breaker transitioned closed/half-open -> open.
  uint64_t breaker_opens() const { return breaker_opens_; }
  /// Current breaker state per endpoint, aligned with endpoints().
  std::vector<BreakerState> breaker_states() const;
  std::vector<std::string> endpoints() const;

 private:
  struct Node {
    ReplSender::Endpoint endpoint;
    std::unique_ptr<net::TcpChannel> channel;
    std::chrono::steady_clock::time_point next_dial{};
    uint64_t backoff_ms = 0;
    BreakerState breaker = BreakerState::kClosed;
    std::chrono::steady_clock::time_point breaker_until{};
    int consecutive_failures = 0;
  };

  /// Connects the node's channel if needed; respects the dial backoff.
  net::TcpChannel* Ensure(Node* node);
  void MarkDialFailure(Node* node);
  /// Probes endpoints with the stats RPC until one reports itself
  /// primary; caches and returns its index, or -1.
  int FindPrimary();
  void DemotePrimary();
  /// True if the breaker lets a call through right now (an expired open
  /// breaker transitions to half-open and admits the probe).
  bool BreakerAllows(Node* node);
  /// Opens the node's breaker for `open_ms`.
  void OpenBreaker(Node* node, uint64_t open_ms);
  /// Feeds one call outcome into the node's breaker state machine.
  void RecordOutcome(Node* node, const Status& status);
  /// Routes `request` to the node the policy picks (primary for
  /// mutations, round-robin otherwise); its channel is connected. Null =
  /// nothing reachable or circuit open, `*why` says so.
  Node* Route(const net::Message& request, Status* why);

  const Options options_;
  std::vector<Node> nodes_;
  int primary_ = -1;
  size_t read_rr_ = 0;  // round-robin cursor for follower reads
  uint64_t failovers_ = 0;
  uint64_t breaker_opens_ = 0;
  double io_deadline_ms_ = 0.0;
  // Own CallId → (node index, inner channel's CallId).
  std::map<CallId, std::pair<size_t, CallId>> pending_;
  mutable net::ChannelStats merged_stats_;
};

}  // namespace sse::repl

#endif  // SSE_REPL_FAILOVER_CHANNEL_H_
