#include "sse/crypto/prg.h"

#include <openssl/evp.h>

#include "sse/crypto/sha256.h"
#include "sse/obs/metrics_registry.h"

namespace sse::crypto {

Result<Bytes> PrgExpand(BytesView seed, size_t out_len) {
  obs::ScopedCryptoTimer timer(obs::CryptoTimers::Global().prg);
  if (seed.empty()) return Status::InvalidArgument("PRG seed is empty");
  if (out_len == 0) return Bytes{};

  Bytes key;
  SSE_ASSIGN_OR_RETURN(key, Sha256(seed));

  EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  if (ctx == nullptr) return Status::CryptoError("EVP_CIPHER_CTX_new failed");

  Bytes iv(16, 0);
  Bytes out(out_len, 0);
  Bytes zeros(out_len, 0);
  int len = 0;
  Status status = Status::OK();
  if (EVP_EncryptInit_ex(ctx, EVP_aes_256_ctr(), nullptr, key.data(),
                         iv.data()) != 1) {
    status = Status::CryptoError("EVP_EncryptInit_ex(AES-256-CTR) failed");
  } else if (EVP_EncryptUpdate(ctx, out.data(), &len, zeros.data(),
                               static_cast<int>(out_len)) != 1 ||
             static_cast<size_t>(len) != out_len) {
    status = Status::CryptoError("EVP_EncryptUpdate failed");
  }
  EVP_CIPHER_CTX_free(ctx);
  if (!status.ok()) return status;
  return out;
}

}  // namespace sse::crypto
