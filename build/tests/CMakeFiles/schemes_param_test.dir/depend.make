# Empty dependencies file for schemes_param_test.
# This may be replaced when dependencies are built.
