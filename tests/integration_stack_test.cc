// Whole-stack integrations that cross module boundaries in combinations
// the per-module suites do not: TCP + durable server + log-backed blobs,
// and padding + PHR application composition.

#include <gtest/gtest.h>

#include "sse/core/durable_server.h"
#include "sse/core/padding.h"
#include "sse/core/registry.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/net/tcp.h"
#include "sse/phr/phr_store.h"
#include "sse/security/leakage.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

TEST(IntegrationStackTest, TcpDurableLogBackedScheme2) {
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;
  options.document_log_path = dir.path() + "/docs.log";

  Bytes client_state;
  // Session 1: full stack — TCP sockets, WAL journaling, disk blobs.
  {
    core::Scheme2Server inner(options);
    SSE_ASSERT_OK(inner.UseLogBackedDocuments(options.document_log_path));
    auto durable = core::DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    auto tcp = net::TcpServer::Start(durable->get());
    ASSERT_TRUE(tcp.ok());
    auto channel = net::TcpChannel::Connect((*tcp)->port());
    ASSERT_TRUE(channel.ok());

    DeterministicRandom rng(1);
    auto client = core::Scheme2Client::Create(TestMasterKey(), options,
                                              channel->get(), &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->Store({
        Document::Make(0, "first", {"kw", "one"}),
        Document::Make(1, "second", {"kw"}),
    }));
    auto outcome = (*client)->Search("kw");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
    client_state = (*client)->SerializeState();
  }

  // Session 2: crash-recover everything and keep serving over new sockets.
  {
    core::Scheme2Server inner(options);
    SSE_ASSERT_OK(inner.UseLogBackedDocuments(options.document_log_path));
    auto durable = core::DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    EXPECT_EQ(inner.document_count(), 2u);
    auto tcp = net::TcpServer::Start(durable->get());
    ASSERT_TRUE(tcp.ok());
    auto channel = net::TcpChannel::Connect((*tcp)->port());
    ASSERT_TRUE(channel.ok());

    DeterministicRandom rng(2);
    auto client = core::Scheme2Client::Create(TestMasterKey(), options,
                                              channel->get(), &rng);
    SSE_ASSERT_OK_RESULT(client);
    SSE_ASSERT_OK((*client)->RestoreState(client_state));
    auto outcome = (*client)->Search("one");
    SSE_ASSERT_OK_RESULT(outcome);
    ASSERT_EQ(outcome->documents.size(), 1u);
    EXPECT_EQ(BytesToString(outcome->documents[0].second), "first");
    SSE_ASSERT_OK((*client)->Store({Document::Make(2, "third", {"kw"})}));
    EXPECT_EQ((*client)->Search("kw")->ids.size(), 3u);
  }
}

TEST(IntegrationStackTest, PaddedPhrStoreHidesVisitSizes) {
  // The PHR application composed with the padding decorator: a GP's
  // update sizes are flattened while all queries stay correct.
  DeterministicRandom rng(3);
  core::SystemConfig config = FastTestConfig();
  config.channel.record_transcript = true;
  core::SseSystem sys =
      sse::testing::MakeTestSystem(core::SystemKind::kScheme2, &rng, config);
  core::PaddingPolicy policy;
  policy.mode = core::PaddingPolicy::Mode::kFixedBucket;
  policy.bucket = 16;
  core::PaddedClient padded(sys.client.get(), policy, &rng);
  phr::PhrStore store(&padded);

  phr::PatientRecord small;
  small.patient_id = "p1";
  small.visit_date = "2026-07-01";
  small.conditions = {"asthma"};
  SSE_ASSERT_OK(store.AddRecord(small));

  phr::PatientRecord big;
  big.patient_id = "p2";
  big.visit_date = "2026-07-02";
  big.conditions = {"hypertension", "gout", "eczema"};
  big.medications = {"lisinopril", "allopurinol"};
  big.allergies = {"penicillin"};
  big.notes = "long narrative with many distinct informative words inside";
  SSE_ASSERT_OK(store.AddRecord(big));

  // Both updates carried exactly 16 keyword entries on the wire.
  security::LeakageReport report =
      security::AnalyzeTranscript(sys.channel->transcript());
  ASSERT_EQ(report.update_keyword_counts.size(), 2u);
  EXPECT_EQ(report.update_keyword_counts[0], 16u);
  EXPECT_EQ(report.update_keyword_counts[1], 16u);

  // Queries behave as if no padding existed.
  auto p2 = store.FindByPatient("p2");
  SSE_ASSERT_OK_RESULT(p2);
  ASSERT_EQ(p2->size(), 1u);
  EXPECT_EQ((*p2)[0].conditions.size(), 3u);
  auto gout = store.FindByCondition("gout");
  SSE_ASSERT_OK_RESULT(gout);
  EXPECT_EQ(gout->size(), 1u);
}

}  // namespace
}  // namespace sse
