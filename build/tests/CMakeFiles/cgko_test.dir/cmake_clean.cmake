file(REMOVE_RECURSE
  "CMakeFiles/cgko_test.dir/cgko_test.cc.o"
  "CMakeFiles/cgko_test.dir/cgko_test.cc.o.d"
  "cgko_test"
  "cgko_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgko_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
