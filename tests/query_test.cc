#include "sse/core/query.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::MakeTestSystem;

class QueryTest : public ::testing::TestWithParam<SystemKind> {
 protected:
  QueryTest() : rng_(7), sys_(MakeTestSystem(GetParam(), &rng_)) {
    Status s = sys_.client->Store({
        Document::Make(0, "d0", {"red", "round"}),
        Document::Make(1, "d1", {"red", "square"}),
        Document::Make(2, "d2", {"blue", "round"}),
        Document::Make(3, "d3", {"red", "round", "large"}),
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  DeterministicRandom rng_;
  SseSystem sys_;
};

TEST_P(QueryTest, Conjunction) {
  auto outcome = SearchAll(*sys_.client, {"red", "round"});
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 3}));
  // All three terms.
  auto narrow = SearchAll(*sys_.client, {"red", "round", "large"});
  SSE_ASSERT_OK_RESULT(narrow);
  EXPECT_EQ(narrow->ids, std::vector<uint64_t>{3});
  ASSERT_EQ(narrow->documents.size(), 1u);
  EXPECT_EQ(BytesToString(narrow->documents[0].second), "d3");
}

TEST_P(QueryTest, ConjunctionEmptyIntersection) {
  auto outcome = SearchAll(*sys_.client, {"blue", "square"});
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
}

TEST_P(QueryTest, ConjunctionWithUnknownKeyword) {
  auto outcome = SearchAll(*sys_.client, {"red", "nonexistent"});
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
}

TEST_P(QueryTest, Disjunction) {
  auto outcome = SearchAny(*sys_.client, {"blue", "square"});
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(outcome->documents.size(), 2u);
}

TEST_P(QueryTest, DisjunctionDeduplicates) {
  auto outcome = SearchAny(*sys_.client, {"red", "round"});
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST_P(QueryTest, Except) {
  auto outcome = SearchExcept(*sys_.client, "red", "round");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{1});
}

TEST_P(QueryTest, EmptyKeywordListRejected) {
  EXPECT_FALSE(SearchAll(*sys_.client, {}).ok());
  EXPECT_FALSE(SearchAny(*sys_.client, {}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, QueryTest, ::testing::ValuesIn(AllSystemKinds()),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name(SystemKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sse::core
