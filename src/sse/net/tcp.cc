#include "sse/net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <mutex>

#include "sse/obs/metrics_registry.h"
#include "sse/obs/stats_rpc.h"
#include "sse/obs/trace.h"

namespace sse::net {

namespace {

constexpr uint32_t kMaxFrameSize = 1u << 30;

/// Process-wide net-layer counters, looked up once. Cheap to bump (one
/// relaxed fetch_add) and aggregated across every channel and server in
/// the process — per-instance numbers stay in ChannelStats.
struct NetCounters {
  obs::MetricsRegistry::Counter* frames_sent;
  obs::MetricsRegistry::Counter* frames_received;
  obs::MetricsRegistry::Counter* bytes_sent;
  obs::MetricsRegistry::Counter* bytes_received;
  obs::MetricsRegistry::Counter* timeouts;
  obs::MetricsRegistry::Counter* reconnects;
  obs::MetricsRegistry::Counter* server_frames;

  static NetCounters& Get() {
    static NetCounters c = [] {
      auto& reg = obs::MetricsRegistry::Global();
      NetCounters n;
      n.frames_sent = reg.GetCounter("sse_net_client_frames_sent_total",
                                     "Frames written by TCP clients");
      n.frames_received = reg.GetCounter("sse_net_client_frames_received_total",
                                         "Frames read by TCP clients");
      n.bytes_sent = reg.GetCounter("sse_net_client_bytes_sent_total",
                                    "Payload bytes written by TCP clients");
      n.bytes_received = reg.GetCounter("sse_net_client_bytes_received_total",
                                        "Payload bytes read by TCP clients");
      n.timeouts = reg.GetCounter("sse_net_timeouts_total",
                                  "Socket send/recv deadline expiries");
      n.reconnects = reg.GetCounter("sse_net_reconnects_total",
                                    "Automatic client redials");
      n.server_frames = reg.GetCounter("sse_net_server_frames_total",
                                       "Frames dispatched by TCP servers");
      return n;
    }();
    return c;
  }
};

/// Distribution of the client pipeline window occupancy, sampled at each
/// Submit (value = calls already in flight, not a duration).
obs::LatencyHistogram& InflightWindowHistogram() {
  static auto* h = [] {
    auto* hist = new obs::LatencyHistogram();
    static auto reg = obs::MetricsRegistry::Global().RegisterHistogram(
        "sse_net_inflight_window",
        [hist] { return hist->Snap(); },
        "In-flight calls already pending at each Submit (count, not time)");
    return hist;
  }();
  return *h;
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::DeadlineExceeded("socket send timed out");
      }
      return Status::IoError("socket send failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes; NOT_FOUND signals a clean EOF at a frame
/// boundary (start of a frame), DEADLINE_EXCEEDED an expired SO_RCVTIMEO,
/// IO_ERROR anything else.
Status ReadAll(int fd, uint8_t* data, size_t len, bool eof_ok_at_start) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n == 0) {
      if (got == 0 && eof_ok_at_start) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::IoError("socket closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket recv timed out");
      }
      return Status::IoError("socket recv failed: " +
                             std::string(std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Applies SO_SNDTIMEO / SO_RCVTIMEO (0 = unbounded) to `fd`.
void ApplyIoTimeouts(int fd, double send_ms, double recv_ms) {
  auto to_timeval = [](double ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec =
        static_cast<suseconds_t>((ms - 1000.0 * static_cast<double>(tv.tv_sec)) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // min 1ms
    return tv;
  };
  if (send_ms > 0.0) {
    timeval tv = to_timeval(send_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (recv_ms > 0.0) {
    timeval tv = to_timeval(recv_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

Status WriteFrame(int fd, const Bytes& payload) {
  uint8_t header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(payload.size() >> (8 * i));
  }
  SSE_RETURN_IF_ERROR(WriteAll(fd, header, 4));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Bytes> ReadFrame(int fd, bool eof_ok_at_start) {
  uint8_t header[4];
  SSE_RETURN_IF_ERROR(ReadAll(fd, header, 4, eof_ok_at_start));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameSize) {
    return Status::ProtocolError("frame length exceeds 1 GiB");
  }
  Bytes payload(len);
  if (len > 0) {
    SSE_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, false));
  }
  return payload;
}

}  // namespace

// ---------------------------------------------------------------- server --

TcpServer::TcpServer(MessageHandler* handler, int listen_fd, uint16_t port,
                     Options options)
    : handler_(handler),
      listen_fd_(listen_fd),
      port_(port),
      options_(options) {}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(MessageHandler* handler,
                                                    uint16_t port) {
  return Start(handler, port, Options{});
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(MessageHandler* handler,
                                                    uint16_t port,
                                                    Options options) {
  if (handler == nullptr) {
    return Status::InvalidArgument("handler must be non-null");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, options.listen_backlog) != 0) {
    ::close(fd);
    return Status::IoError("listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname failed");
  }
  auto server = std::unique_ptr<TcpServer>(
      new TcpServer(handler, fd, ntohs(addr.sin_port), options));
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Shut the listening socket down; accept() returns with an error. Also
  // shut down live connections so blocked recv() calls return and their
  // worker threads can exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (int fd : open_conns_) ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
}

void TcpServer::Serve() {
  while (!stopping_.load()) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone
    }
    connections_accepted_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      open_conns_.insert(conn);
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, conn] {
      ServeConnection(conn);
      {
        std::lock_guard<std::mutex> conns_lock(conns_mutex_);
        open_conns_.erase(conn);
      }
      ::close(conn);
    });
  }
  // Join connection threads before the accept thread exits.
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Message TcpServer::HandleFrame(const Bytes& frame) {
  Result<Message> request = Message::Decode(frame);
  NetCounters::Get().server_frames->Add();
  obs::ScopedSpan dispatch_span(
      "server.dispatch",
      request.ok() ? obs::ContextOf(*request) : obs::TraceContext{});
  if (request.ok()) {
    dispatch_span.Annotate("msg_type", request->type);
  }
  Result<Message> reply = [&]() -> Result<Message> {
    if (!request.ok()) return request.status();
    if (options_.serve_stats && request->type == kMsgStats) {
      // Admin scrape: answered from the process-wide registry without
      // involving (or serializing on) the application handler.
      return obs::HandleStatsRequest(*request);
    }
    if (options_.serialize_handler) {
      std::lock_guard<std::mutex> lock(handler_mutex_);
      return handler_->Handle(*request);
    }
    // Thread-safe handler (e.g. the sharded engine): let connections
    // dispatch concurrently.
    return handler_->Handle(*request);
  }();
  requests_served_.fetch_add(1);
  if (reply.ok()) return std::move(*reply);
  Message error = MakeErrorMessage(reply.status());
  // Address the error to the call it answers, so a pipelined client can
  // correlate it. When the request itself would not decode, salvage the
  // stamp from the raw frame (it precedes the damaged payload).
  if (request.ok()) {
    error.EchoSession(*request);
  } else {
    uint64_t client_id = 0;
    uint64_t seq = 0;
    if (Message::PeekSession(frame, &client_id, &seq)) {
      error.StampSession(client_id, seq);
    }
  }
  return error;
}

void TcpServer::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.pipelined && options_.pipeline_workers > 0) {
    ServeConnectionPipelined(fd);
    return;
  }
  while (!stopping_.load()) {
    Result<Bytes> frame = ReadFrame(fd, /*eof_ok_at_start=*/true);
    if (!frame.ok()) return;  // clean close or broken peer: drop connection
    Message reply = HandleFrame(*frame);
    if (!WriteFrame(fd, reply.Encode()).ok()) return;
  }
}

void TcpServer::ServeConnectionPipelined(int fd) {
  // Reader (this thread) pulls frames continuously and feeds a bounded
  // queue; a small dispatch pool handles requests and writes each reply as
  // it completes under a shared write lock. The handler keeps working
  // while the next frames are already being read off the socket.
  struct ConnQueue {
    std::mutex mu;
    std::condition_variable can_push;
    std::condition_variable can_pop;
    std::deque<Bytes> frames;
    bool closed = false;
  } queue;
  std::mutex write_mu;
  std::atomic<bool> broken{false};

  std::vector<std::thread> dispatchers;
  dispatchers.reserve(options_.pipeline_workers);
  for (size_t i = 0; i < options_.pipeline_workers; ++i) {
    dispatchers.emplace_back([this, fd, &queue, &write_mu, &broken] {
      for (;;) {
        Bytes frame;
        {
          std::unique_lock<std::mutex> lock(queue.mu);
          queue.can_pop.wait(lock, [&queue] {
            return queue.closed || !queue.frames.empty();
          });
          if (queue.frames.empty()) return;  // closed and drained
          frame = std::move(queue.frames.front());
          queue.frames.pop_front();
        }
        queue.can_push.notify_one();
        Message reply = HandleFrame(frame);
        std::lock_guard<std::mutex> lock(write_mu);
        if (!broken.load() && !WriteFrame(fd, reply.Encode()).ok()) {
          broken.store(true);
        }
      }
    });
  }

  while (!stopping_.load() && !broken.load()) {
    Result<Bytes> frame = ReadFrame(fd, /*eof_ok_at_start=*/true);
    if (!frame.ok()) break;  // clean close or broken peer
    std::unique_lock<std::mutex> lock(queue.mu);
    queue.can_push.wait(lock, [this, &queue] {
      return queue.frames.size() < options_.pipeline_queue;
    });
    queue.frames.push_back(std::move(*frame));
    lock.unlock();
    queue.can_pop.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.closed = true;
  }
  queue.can_pop.notify_all();
  for (std::thread& t : dispatchers) t.join();
}

// ---------------------------------------------------------------- client --

Result<int> TcpChannel::Dial(const std::string& host, uint16_t port,
                             const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid host address: " + host);
  }

  if (options.connect_timeout_ms > 0.0) {
    // Bounded connect: dial non-blocking, wait for writability with poll.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int timeout_ms =
          options.connect_timeout_ms > 1.0
              ? static_cast<int>(options.connect_timeout_ms)
              : 1;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        ::close(fd);
        return Status::DeadlineExceeded("connect timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        const int err = so_error != 0 ? so_error : errno;
        ::close(fd);
        return Status::IoError("connect failed: " +
                               std::string(std::strerror(err)));
      }
    } else if (rc != 0) {
      ::close(fd);
      return Status::IoError("connect failed: " +
                             std::string(std::strerror(errno)));
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
             0) {
    ::close(fd);
    return Status::IoError("connect failed: " +
                           std::string(std::strerror(errno)));
  }

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ApplyIoTimeouts(fd, options.send_timeout_ms, options.recv_timeout_ms);
  return fd;
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    uint16_t port, const std::string& host) {
  return Connect(port, host, Options{});
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(uint16_t port,
                                                        const std::string& host,
                                                        Options options) {
  Result<int> fd = Dial(host, port, options);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<TcpChannel>(
      new TcpChannel(*fd, host, port, options));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::MarkBroken() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::FailInflight(const Status& status) {
  for (const CallId id : inflight_order_) {
    if (inflight_.count(id) > 0) buffered_.emplace(id, status);
  }
  inflight_.clear();
  inflight_order_.clear();
}

void TcpChannel::Reset() {
  MarkBroken();
  FailInflight(Status::Unavailable("connection reset with calls in flight"));
}

Status TcpChannel::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (!options_.auto_reconnect) {
    return Status::Unavailable("connection closed and reconnects disabled");
  }
  Result<int> fd = Dial(host_, port_, options_);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  reconnects_ += 1;
  NetCounters::Get().reconnects->Add();
  return Status::OK();
}

void TcpChannel::Complete(CallId id, Result<Message> reply) {
  if (reply.ok()) {
    // Surface an application-level error reply as its embedded status,
    // exactly as the synchronous Call path does.
    Status app_error = DecodeErrorMessage(*reply);
    if (!app_error.ok()) reply = app_error;
  }
  inflight_.erase(id);
  for (auto it = inflight_order_.begin(); it != inflight_order_.end(); ++it) {
    if (*it == id) {
      inflight_order_.erase(it);
      break;
    }
  }
  buffered_.emplace(id, std::move(reply));
}

Channel::CallId TcpChannel::MatchReply(const Message& reply) const {
  if (reply.has_session) {
    for (const auto& [id, call] : inflight_) {
      if (call.has_session && call.client_id == reply.client_id &&
          call.seq == reply.seq) {
        return id;
      }
    }
    return 0;  // stale or unknown: not ours to deliver
  }
  // Un-stamped reply: a lockstep server answers in order, so it belongs to
  // the oldest in-flight call.
  return inflight_order_.empty() ? 0 : inflight_order_.front();
}

Channel::CallId TcpChannel::Submit(const Message& request) {
  const CallId id = next_call_id_++;
  obs::ScopedSpan send_span("net.send_frame", obs::ContextOf(request));
  InflightWindowHistogram().Record(inflight_order_.size());
  Status status = EnsureConnected();
  if (status.ok()) {
    Bytes wire = request.Encode();
    send_span.Annotate("bytes", wire.size());
    status = WriteFrame(fd_, wire);
    if (status.ok()) {
      stats_.rounds += 1;
      stats_.frames_sent += 1;
      stats_.bytes_sent += wire.size();
      stats_.calls_by_type[request.type] += 1;
      NetCounters::Get().frames_sent->Add();
      NetCounters::Get().bytes_sent->Add(wire.size());
    } else {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        NetCounters::Get().timeouts->Add();
      }
      MarkBroken();
      FailInflight(status);
    }
  }
  if (!status.ok()) {
    buffered_.emplace(id, status);
    return id;
  }
  inflight_.emplace(
      id, Inflight{request.has_session, request.client_id, request.seq});
  inflight_order_.push_back(id);
  return id;
}

Result<Message> TcpChannel::Await(CallId id) {
  while (buffered_.count(id) == 0) {
    if (inflight_.count(id) == 0) {
      return Status::InvalidArgument("unknown or already-awaited call ticket");
    }
    Result<Bytes> frame = ReadFrame(fd_, /*eof_ok_at_start=*/false);
    if (!frame.ok()) {
      // The stream may be mid-frame (e.g. a recv timeout); nothing after
      // this point can be trusted, so every in-flight call fails and the
      // next use redials.
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        NetCounters::Get().timeouts->Add();
      }
      MarkBroken();
      FailInflight(frame.status());
      break;
    }
    stats_.frames_received += 1;
    stats_.bytes_received += frame->size();
    NetCounters::Get().frames_received->Add();
    NetCounters::Get().bytes_received->Add(frame->size());
    Result<Message> reply = Message::Decode(*frame);
    if (!reply.ok()) {
      // A frame that does not parse still answers *some* call. Attribute
      // it by its salvaged session stamp if possible, else to the oldest
      // in-flight call; the retry layer treats the status as retryable.
      uint64_t client_id = 0;
      uint64_t seq = 0;
      CallId target = 0;
      if (Message::PeekSession(*frame, &client_id, &seq)) {
        for (const auto& [cand, call] : inflight_) {
          if (call.has_session && call.client_id == client_id &&
              call.seq == seq) {
            target = cand;
            break;
          }
        }
      }
      if (target == 0 && !inflight_order_.empty()) {
        target = inflight_order_.front();
      }
      if (target != 0) Complete(target, reply.status());
      continue;
    }
    const CallId target = MatchReply(*reply);
    if (target == 0) continue;  // stale reply from a superseded call: drop
    Complete(target, std::move(*reply));
  }
  auto it = buffered_.find(id);
  if (it == buffered_.end()) {
    return Status::Internal("await terminated without a result");
  }
  Result<Message> result = std::move(it->second);
  buffered_.erase(it);
  return result;
}

Result<Message> TcpChannel::Call(const Message& request) {
  return Await(Submit(request));
}

}  // namespace sse::net
