#include "sse/storage/faulty_env.h"

#include <algorithm>

namespace sse::storage {

namespace {

std::string StripTrailingSlash(const std::string& dir) {
  if (dir.size() > 1 && dir.back() == '/') return dir.substr(0, dir.size() - 1);
  return dir;
}

// True if `path` names an immediate child of `dir`.
bool IsChildOf(const std::string& dir, const std::string& path) {
  if (path.size() <= dir.size() + 1) return false;
  if (path.compare(0, dir.size(), dir) != 0) return false;
  if (path[dir.size()] != '/') return false;
  return path.find('/', dir.size() + 1) == std::string::npos;
}

}  // namespace

class FaultyEnv::FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::string path,
                     std::shared_ptr<Inode> inode, uint64_t epoch)
      : env_(env),
        path_(std::move(path)),
        inode_(std::move(inode)),
        epoch_(epoch) {}

  Status Append(BytesView data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    SSE_RETURN_IF_ERROR(CheckEpochLocked());
    bool short_write = false;
    SSE_RETURN_IF_ERROR(env_->Account("append " + path_, &short_write));
    const size_t take = short_write ? data.size() / 2 : data.size();
    inode_->live.insert(inode_->live.end(), data.begin(), data.begin() + take);
    if (short_write) {
      return Status::IoError("faulty env: short write to " + path_ + " (" +
                             std::to_string(take) + "/" +
                             std::to_string(data.size()) + " bytes)");
    }
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    SSE_RETURN_IF_ERROR(CheckEpochLocked());
    SSE_RETURN_IF_ERROR(env_->Account("sync " + path_, nullptr));
    inode_->durable = inode_->live;
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t size() const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    return inode_->live.size();
  }

 private:
  // A handle that survived a crash points at an inode the restarted
  // process could never have opened; fail it permanently.
  Status CheckEpochLocked() const {
    if (epoch_ != env_->crash_epoch_) {
      return Status::IoError("faulty env: stale handle for " + path_ +
                             " after crash");
    }
    return Status::OK();
  }

  FaultyEnv* env_;
  std::string path_;
  std::shared_ptr<Inode> inode_;
  uint64_t epoch_;
};

Status FaultyEnv::Account(const std::string& what, bool* short_write) {
  if (crashed_) {
    return Status::IoError("faulty env: crashed (" + what + ")");
  }
  const uint64_t idx = op_counter_++;
  op_log_.push_back(what);
  const auto it = schedule_.find(idx);
  if (it == schedule_.end()) return Status::OK();
  switch (it->second) {
    case FaultKind::kCrash:
      CrashLocked();
      return Status::IoError("faulty env: simulated crash at op " +
                             std::to_string(idx) + " (" + what + ")");
    case FaultKind::kShortWrite:
      if (short_write != nullptr) {
        *short_write = true;
        return Status::OK();
      }
      [[fallthrough]];
    case FaultKind::kEio:
    case FaultKind::kSyncFail:
      return Status::IoError("faulty env: injected fault at op " +
                             std::to_string(idx) + " (" + what + ")");
  }
  return Status::OK();
}

void FaultyEnv::CrashLocked() {
  crashed_ = true;
  ++crash_epoch_;
  for (auto& [path, inode] : durable_ns_) {
    Bytes& durable = inode->durable;
    const Bytes& live = inode->live;
    // Torn write-back: when the unsynced delta is a pure append, a real
    // page cache may have flushed an arbitrary prefix of it before the
    // crash. Pick that prefix length deterministically from the seed,
    // path and crash ordinal so sweeps are reproducible.
    if (live.size() > durable.size() &&
        std::equal(durable.begin(), durable.end(), live.begin())) {
      uint64_t h = torn_write_seed_ ^ (crash_epoch_ * 0x9e3779b97f4a7c15ULL);
      for (const char c : path) {
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
      }
      h ^= h >> 31;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      const uint64_t extra = h % (live.size() - durable.size() + 1);
      durable.insert(durable.end(), live.begin() + durable.size(),
                     live.begin() + durable.size() + extra);
    }
    inode->live = durable;
  }
  // Entries never promoted by SyncDir vanish; removed-but-unsynced entries
  // resurrect. Open handles are invalidated via crash_epoch_.
  live_ns_ = durable_ns_;
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_ns_.find(path);
  const bool creating = it == live_ns_.end();
  SSE_RETURN_IF_ERROR(
      Account((creating || truncate ? "create " : "open ") + path, nullptr));
  std::shared_ptr<Inode> inode;
  if (creating) {
    inode = std::make_shared<Inode>();
    live_ns_[path] = inode;  // durable only after SyncDir(parent)
  } else {
    inode = it->second;
    if (truncate) inode->live.clear();  // durable bytes survive a crash
  }
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, path, std::move(inode), crash_epoch_));
}

Result<Bytes> FaultyEnv::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  SSE_RETURN_IF_ERROR(Account("read " + path, nullptr));
  const auto it = live_ns_.find(path);
  if (it == live_ns_.end()) return Status::NotFound("no file at " + path);
  return it->second->live;
}

bool FaultyEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ns_.count(path) != 0;
}

Result<std::vector<std::string>> FaultyEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string d = StripTrailingSlash(dir);
  std::vector<std::string> names;
  for (const auto& [path, inode] : live_ns_) {
    if (IsChildOf(d, path)) names.push_back(path.substr(d.size() + 1));
  }
  return names;
}

Status FaultyEnv::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  SSE_RETURN_IF_ERROR(Account("rename " + from, nullptr));
  const auto it = live_ns_.find(from);
  if (it == live_ns_.end()) return Status::NotFound("no file at " + from);
  live_ns_[to] = it->second;  // replaces any existing `to`
  live_ns_.erase(it);
  return Status::OK();
}

Status FaultyEnv::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  SSE_RETURN_IF_ERROR(Account("remove " + path, nullptr));
  if (live_ns_.erase(path) == 0) {
    return Status::NotFound("no file at " + path);
  }
  return Status::OK();
}

Status FaultyEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  SSE_RETURN_IF_ERROR(Account("syncdir " + dir, nullptr));
  const std::string d = StripTrailingSlash(dir);
  for (const auto& [path, inode] : live_ns_) {
    if (IsChildOf(d, path)) durable_ns_[path] = inode;
  }
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (IsChildOf(d, it->first) && live_ns_.count(it->first) == 0) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<uint64_t> FaultyEnv::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_ns_.find(path);
  if (it == live_ns_.end()) return Status::NotFound("no file at " + path);
  return static_cast<uint64_t>(it->second->live.size());
}

void FaultyEnv::FailAt(uint64_t op_index, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_[op_index] = kind;
}

void FaultyEnv::ClearSchedule() {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_.clear();
}

void FaultyEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crashed_) CrashLocked();
}

void FaultyEnv::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
}

uint64_t FaultyEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counter_;
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::vector<std::string> FaultyEnv::op_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_log_;
}

Status FaultyEnv::CorruptByte(const std::string& path, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_ns_.find(path);
  if (it == live_ns_.end()) return Status::NotFound("no file at " + path);
  Inode& inode = *it->second;
  if (offset >= inode.live.size()) {
    return Status::OutOfRange("corrupt offset beyond file size");
  }
  inode.live[offset] ^= 0xFF;
  if (offset < inode.durable.size()) inode.durable[offset] ^= 0xFF;
  return Status::OK();
}

}  // namespace sse::storage
