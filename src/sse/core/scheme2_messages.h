#ifndef SSE_CORE_SCHEME2_MESSAGES_H_
#define SSE_CORE_SCHEME2_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "sse/core/wire_common.h"
#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// Wire messages for Scheme 2 (paper §5.5–5.6, Figs. 3 and 4).
///
/// Update (Fig. 3) is one-way + ack: the client ships, per keyword, a fresh
/// encrypted posting segment E_{k_j}(I_j(w)) and its public tag f'(k_j).
/// Search (Fig. 4) is a single round: the trapdoor carries the newest chain
/// element, from which the server walks the chain forward to every older
/// segment key. FetchAll/Reinit implement the chain re-initialization the
/// paper prescribes once the counter exhausts the chain.
inline constexpr uint16_t kMsgS2UpdateRequest = net::kMsgRangeScheme2 + 1;
inline constexpr uint16_t kMsgS2UpdateAck = net::kMsgRangeScheme2 + 2;
inline constexpr uint16_t kMsgS2SearchRequest = net::kMsgRangeScheme2 + 3;
inline constexpr uint16_t kMsgS2SearchResult = net::kMsgRangeScheme2 + 4;
inline constexpr uint16_t kMsgS2FetchAllRequest = net::kMsgRangeScheme2 + 5;
inline constexpr uint16_t kMsgS2FetchAllReply = net::kMsgRangeScheme2 + 6;
inline constexpr uint16_t kMsgS2ReinitRequest = net::kMsgRangeScheme2 + 7;
inline constexpr uint16_t kMsgS2ReinitAck = net::kMsgRangeScheme2 + 8;

/// One encrypted posting segment: the pair (E_{k_j}(I_j(w)), f'(k_j)).
struct S2Segment {
  Bytes ciphertext;
  Bytes tag;
};

struct S2UpdateEntry {
  Bytes token;  // f_{k_w}(w)
  S2Segment segment;
};

struct S2UpdateRequest {
  std::vector<S2UpdateEntry> entries;
  std::vector<WireDocument> documents;

  net::Message ToMessage() const;
  static Result<S2UpdateRequest> FromMessage(const net::Message& msg);
};

struct S2UpdateAck {
  uint64_t keywords_updated = 0;

  net::Message ToMessage() const;
  static Result<S2UpdateAck> FromMessage(const net::Message& msg);
};

struct S2SearchRequest {
  Bytes token;
  Bytes chain_element;  // t'_w = f^{l-ctr}(seed), the newest usable key

  net::Message ToMessage() const;
  static Result<S2SearchRequest> FromMessage(const net::Message& msg);
};

struct S2SearchResult {
  bool found = false;
  std::vector<uint64_t> ids;
  std::vector<WireDocument> documents;
  /// Server-side work counters, returned for the Table 1 benches: total
  /// chain steps walked and segments decrypted for this search.
  uint64_t chain_steps = 0;
  uint64_t segments_decrypted = 0;

  net::Message ToMessage() const;
  static Result<S2SearchResult> FromMessage(const net::Message& msg);
};

struct S2KeywordDump {
  Bytes token;
  std::vector<S2Segment> segments;
};

struct S2FetchAllRequest {
  net::Message ToMessage() const;
  static Result<S2FetchAllRequest> FromMessage(const net::Message& msg);
};

struct S2FetchAllReply {
  std::vector<S2KeywordDump> keywords;

  net::Message ToMessage() const;
  static Result<S2FetchAllReply> FromMessage(const net::Message& msg);
};

/// Replaces the entire keyword index with one fresh segment per keyword
/// (documents are untouched). Sent after the client rebuilt every posting
/// list under a new chain epoch.
struct S2ReinitRequest {
  std::vector<S2UpdateEntry> entries;

  net::Message ToMessage() const;
  static Result<S2ReinitRequest> FromMessage(const net::Message& msg);
};

struct S2ReinitAck {
  uint64_t keywords = 0;

  net::Message ToMessage() const;
  static Result<S2ReinitAck> FromMessage(const net::Message& msg);
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME2_MESSAGES_H_
