// Experiment E-index — §5.1's "tree structure for the searchable
// representations": B+-tree point lookups over 32-byte PRF tokens, versus
// the hash-table ablation, across index sizes. The B+-tree's O(log u)
// growth (and the hash map's O(1)) frame the paper's complexity claim.

#include <benchmark/benchmark.h>

#include <vector>

#include "sse/core/token_map.h"
#include "sse/index/btree.h"
#include "sse/util/random.h"

namespace sse::index {
namespace {

std::vector<Bytes> MakeTokens(size_t n, uint64_t seed) {
  DeterministicRandom rng(seed);
  std::vector<Bytes> tokens(n);
  for (auto& token : tokens) {
    token.resize(32);
    (void)rng.Fill(token);
  }
  return tokens;
}

void BM_BTreeLookup(benchmark::State& state) {
  const size_t u = static_cast<size_t>(state.range(0));
  BTreeMap<uint64_t> tree(64);
  auto tokens = MakeTokens(u, 1);
  for (size_t i = 0; i < u; ++i) tree.Put(tokens[i], i);
  tree.ResetStats();  // exclude insertion comparisons from the counter
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(tokens[i]));
    i = (i + 7919) % u;
  }
  state.counters["comparisons/lookup"] =
      static_cast<double>(tree.comparisons()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Range(1 << 10, 1 << 20);

void BM_HashLookup(benchmark::State& state) {
  const size_t u = static_cast<size_t>(state.range(0));
  core::TokenMap<uint64_t> map(/*use_hash=*/true);
  auto tokens = MakeTokens(u, 2);
  for (size_t i = 0; i < u; ++i) map.Put(tokens[i], i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Get(tokens[i]));
    i = (i + 7919) % u;
  }
}
BENCHMARK(BM_HashLookup)->Range(1 << 10, 1 << 20);

void BM_BTreeInsert(benchmark::State& state) {
  const size_t u = static_cast<size_t>(state.range(0));
  auto tokens = MakeTokens(u, 3);
  for (auto _ : state) {
    state.PauseTiming();
    BTreeMap<uint64_t> tree(64);
    state.ResumeTiming();
    for (size_t i = 0; i < u; ++i) tree.Put(tokens[i], i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(u));
}
BENCHMARK(BM_BTreeInsert)->Arg(1 << 12)->Arg(1 << 16);

void BM_BTreeMissLookup(benchmark::State& state) {
  const size_t u = static_cast<size_t>(state.range(0));
  BTreeMap<uint64_t> tree(64);
  auto tokens = MakeTokens(u, 4);
  for (size_t i = 0; i < u; ++i) tree.Put(tokens[i], i);
  auto probes = MakeTokens(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(probes[i]));
    i = (i + 1) % probes.size();
  }
}
BENCHMARK(BM_BTreeMissLookup)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace
}  // namespace sse::index

BENCHMARK_MAIN();
