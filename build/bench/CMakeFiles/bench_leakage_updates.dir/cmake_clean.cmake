file(REMOVE_RECURSE
  "CMakeFiles/bench_leakage_updates.dir/bench_leakage_updates.cc.o"
  "CMakeFiles/bench_leakage_updates.dir/bench_leakage_updates.cc.o.d"
  "bench_leakage_updates"
  "bench_leakage_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leakage_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
