#include "sse/core/padding.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/security/leakage.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

TEST(PaddingPolicyTest, Targets) {
  PaddingPolicy none;
  EXPECT_EQ(none.TargetFor(5), 5u);

  PaddingPolicy fixed;
  fixed.mode = PaddingPolicy::Mode::kFixedBucket;
  fixed.bucket = 8;
  EXPECT_EQ(fixed.TargetFor(1), 8u);
  EXPECT_EQ(fixed.TargetFor(8), 8u);
  EXPECT_EQ(fixed.TargetFor(9), 16u);
  EXPECT_EQ(fixed.TargetFor(0), 8u);

  PaddingPolicy pow2;
  pow2.mode = PaddingPolicy::Mode::kPowerOfTwo;
  EXPECT_EQ(pow2.TargetFor(1), 1u);
  EXPECT_EQ(pow2.TargetFor(3), 4u);
  EXPECT_EQ(pow2.TargetFor(4), 4u);
  EXPECT_EQ(pow2.TargetFor(17), 32u);
}

class PaddedClientTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(PaddedClientTest, SearchResultsUnaffected) {
  DeterministicRandom rng(1);
  SseSystem sys = MakeTestSystem(GetParam(), &rng);
  PaddingPolicy policy;
  policy.mode = PaddingPolicy::Mode::kFixedBucket;
  policy.bucket = 10;
  PaddedClient padded(sys.client.get(), policy, &rng);

  SSE_ASSERT_OK(padded.Store({
      Document::Make(0, "a", {"x", "y"}),
      Document::Make(1, "b", {"y"}),
  }));
  EXPECT_GT(padded.decoys_added(), 0u);

  auto outcome = padded.Search("y");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  auto x = padded.Search("x");
  SSE_ASSERT_OK_RESULT(x);
  EXPECT_EQ(x->ids, std::vector<uint64_t>{0});
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, PaddedClientTest,
                         ::testing::Values(SystemKind::kScheme1,
                                           SystemKind::kScheme2),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           return std::string(SystemKindName(info.param));
                         });

TEST(PaddedClientTest, ObserverSeesOnlyPaddedCounts) {
  DeterministicRandom rng(2);
  SystemConfig config = FastTestConfig();
  config.channel.record_transcript = true;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng, config);
  PaddingPolicy policy;
  policy.mode = PaddingPolicy::Mode::kFixedBucket;
  policy.bucket = 6;
  PaddedClient padded(sys.client.get(), policy, &rng);

  // Batches with 1, 3 and 5 real keywords: all must appear as 6.
  SSE_ASSERT_OK(padded.Store({Document::Make(0, "a", {"k1"})}));
  SSE_ASSERT_OK(padded.Store({Document::Make(1, "b", {"k2", "k3", "k4"})}));
  SSE_ASSERT_OK(padded.Store(
      {Document::Make(2, "c", {"k5", "k6", "k7", "k8", "k9"})}));

  security::LeakageReport report =
      security::AnalyzeTranscript(sys.channel->transcript());
  ASSERT_EQ(report.update_keyword_counts.size(), 3u);
  for (uint64_t count : report.update_keyword_counts) {
    EXPECT_EQ(count, 6u);
  }
}

TEST(PaddedClientTest, FakeUpdatePadded) {
  DeterministicRandom rng(3);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng);
  PaddingPolicy policy;
  policy.mode = PaddingPolicy::Mode::kPowerOfTwo;
  PaddedClient padded(sys.client.get(), policy, &rng);
  SSE_ASSERT_OK(padded.FakeUpdate({"a", "b", "c"}));
  EXPECT_EQ(padded.decoys_added(), 1u);  // 3 -> 4
  EXPECT_EQ(padded.name(), "scheme2+padded");
}

TEST(PaddedClientTest, NoneModePassesThrough) {
  DeterministicRandom rng(4);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme1, &rng);
  PaddedClient padded(sys.client.get(), PaddingPolicy{}, &rng);
  SSE_ASSERT_OK(padded.Store({Document::Make(0, "a", {"only"})}));
  EXPECT_EQ(padded.decoys_added(), 0u);
}

}  // namespace
}  // namespace sse::core
