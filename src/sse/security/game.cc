#include "sse/security/game.h"

#include <algorithm>
#include <map>
#include <set>

#include "sse/core/registry.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme1_server.h"
#include "sse/security/stats.h"
#include "sse/util/bitvec.h"
#include "sse/util/serde.h"

namespace sse::security {

namespace {

/// Concatenated masked-index bytes of a view (the component a curious
/// server would mine first).
Bytes IndexBytes(const View& view) {
  Bytes out;
  for (const View::IndexEntry& entry : view.index) {
    out.insert(out.end(), entry.masked_bitmap.begin(),
               entry.masked_bitmap.end());
  }
  return out;
}

}  // namespace

Result<View> CaptureScheme1View(const History& history,
                                const core::SchemeOptions& options,
                                RandomSource& rng) {
  crypto::MasterKey key{crypto::MasterKey::Generate(rng).value()};
  core::SystemConfig config;
  config.scheme = options;
  config.channel.record_transcript = true;
  core::SseSystem sys;
  SSE_ASSIGN_OR_RETURN(
      sys, core::CreateSystem(core::SystemKind::kScheme1, key, config, &rng));

  SSE_RETURN_IF_ERROR(sys.client->Store(history.documents));
  for (const std::string& query : history.queries) {
    core::SearchOutcome outcome;
    SSE_ASSIGN_OR_RETURN(outcome, sys.client->Search(query));
  }

  View view;
  for (const core::Document& doc : history.documents) view.ids.push_back(doc.id);

  // Index entries and document ciphertexts from the server's state.
  auto* server = static_cast<core::Scheme1Server*>(sys.server.get());
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, server->SerializeState());
  BufferReader r(state);
  uint64_t keyword_count = 0;
  SSE_ASSIGN_OR_RETURN(keyword_count, r.GetVarint());
  for (uint64_t i = 0; i < keyword_count; ++i) {
    View::IndexEntry entry;
    SSE_ASSIGN_OR_RETURN(entry.token, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(entry.masked_bitmap, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(entry.enc_nonce, r.GetBytes());
    view.index.push_back(std::move(entry));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  std::map<uint64_t, Bytes> blobs;
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    blobs[id] = std::move(blob);
  }
  for (uint64_t id : view.ids) {
    auto it = blobs.find(id);
    if (it == blobs.end()) {
      return Status::Internal("document missing from captured state");
    }
    view.encrypted_documents.push_back(it->second);
  }

  // Trapdoors in query order, from the transcript.
  for (const net::Exchange& exchange : sys.channel->transcript()) {
    if (exchange.request.type != core::kMsgS1SearchRequest) continue;
    core::S1SearchRequest req;
    SSE_ASSIGN_OR_RETURN(req,
                         core::S1SearchRequest::FromMessage(exchange.request));
    view.trapdoors.push_back(std::move(req.token));
  }
  return view;
}

Result<View> CaptureLeakyStrawmanView(const History& history,
                                      const core::SchemeOptions& options,
                                      RandomSource& rng) {
  View view;
  std::set<std::string> vocabulary;
  for (const core::Document& doc : history.documents) {
    view.ids.push_back(doc.id);
    // "Encrypted" documents still random here; the strawman's sin is the
    // index.
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, rng.Generate(doc.content.size() + 28));
    view.encrypted_documents.push_back(std::move(blob));
    vocabulary.insert(doc.keywords.begin(), doc.keywords.end());
  }
  std::map<std::string, Bytes> token_of;
  for (const std::string& kw : vocabulary) {
    View::IndexEntry entry;
    SSE_ASSIGN_OR_RETURN(entry.token, rng.Generate(32));
    token_of[kw] = entry.token;
    // THE LEAK: the posting bitmap is stored unmasked.
    BitVec bitmap(options.max_documents);
    for (const core::Document& doc : history.documents) {
      if (std::find(doc.keywords.begin(), doc.keywords.end(), kw) !=
          doc.keywords.end()) {
        bitmap.Set(static_cast<size_t>(doc.id));
      }
    }
    entry.masked_bitmap = bitmap.ToBytes();
    SSE_ASSIGN_OR_RETURN(entry.enc_nonce, rng.Generate(64));
    view.index.push_back(std::move(entry));
  }
  for (const std::string& query : history.queries) {
    auto it = token_of.find(query);
    if (it != token_of.end()) {
      view.trapdoors.push_back(it->second);
    } else {
      Bytes token;
      SSE_ASSIGN_OR_RETURN(token, rng.Generate(32));
      view.trapdoors.push_back(std::move(token));
    }
  }
  return view;
}

std::vector<Distinguisher> BuiltinDistinguishers() {
  std::vector<Distinguisher> out;
  out.push_back({"index-monobit", [](const View& view) {
                   // Unmasked sparse bitmaps are almost all zero; masked
                   // ones hover at 0.5.
                   return MonobitFraction(IndexBytes(view)) < 0.25 ? 1 : 0;
                 }});
  out.push_back({"index-entropy", [](const View& view) {
                   return ShannonEntropyBytes(IndexBytes(view)) < 6.0 ? 1 : 0;
                 }});
  out.push_back({"index-chi-square", [](const View& view) {
                   const Bytes bytes = IndexBytes(view);
                   return ChiSquareBytes(bytes) >
                                  static_cast<double>(bytes.size())
                              ? 1
                              : 0;
                 }});
  out.push_back({"bitmap-popcount-spread", [](const View& view) {
                   // Real masked bitmaps all have ~50% density; plaintext
                   // posting bitmaps vary wildly with keyword popularity.
                   if (view.index.empty()) return 0;
                   double min_frac = 1.0;
                   double max_frac = 0.0;
                   for (const auto& entry : view.index) {
                     const double f = MonobitFraction(entry.masked_bitmap);
                     min_frac = std::min(min_frac, f);
                     max_frac = std::max(max_frac, f);
                   }
                   return (max_frac - min_frac) > 0.2 ? 1 : 0;
                 }});
  out.push_back({"ciphertext-first-bit", [](const View& view) {
                   // Pure noise probe: should stay at zero advantage for
                   // both the real scheme and the strawman.
                   if (view.encrypted_documents.empty()) return 0;
                   return view.encrypted_documents[0][0] & 1;
                 }});
  return out;
}

double GameOutcome::Advantage() const {
  if (trials == 0) return 0.0;
  return 2.0 * static_cast<double>(correct) / trials - 1.0;
}

namespace {

using CaptureFn = Result<View> (*)(const History&, const core::SchemeOptions&,
                                   RandomSource&);

Result<GameOutcome> Play(const History& h0, const History& h1,
                         const core::SchemeOptions& options,
                         const Distinguisher& adversary, int trials,
                         RandomSource& coin_rng, RandomSource& scheme_rng,
                         CaptureFn capture) {
  if (!(ComputeTrace(h0) == ComputeTrace(h1))) {
    return Status::InvalidArgument(
        "the two histories have different traces; the game is only "
        "meaningful over equal-trace pairs");
  }
  GameOutcome outcome;
  for (int t = 0; t < trials; ++t) {
    uint64_t coin = 0;
    SSE_ASSIGN_OR_RETURN(coin, coin_rng.UniformU64(2));
    const int b = static_cast<int>(coin);
    View view;
    SSE_ASSIGN_OR_RETURN(view, capture(b == 0 ? h0 : h1, options, scheme_rng));
    const int guess = adversary.guess(view);
    if (guess == b) ++outcome.correct;
    ++outcome.trials;
  }
  return outcome;
}

}  // namespace

Result<GameOutcome> PlayScheme1Game(const History& h0, const History& h1,
                                    const core::SchemeOptions& options,
                                    const Distinguisher& adversary, int trials,
                                    RandomSource& coin_rng,
                                    RandomSource& scheme_rng) {
  return Play(h0, h1, options, adversary, trials, coin_rng, scheme_rng,
              &CaptureScheme1View);
}

Result<GameOutcome> PlayStrawmanGame(const History& h0, const History& h1,
                                     const core::SchemeOptions& options,
                                     const Distinguisher& adversary,
                                     int trials, RandomSource& coin_rng,
                                     RandomSource& scheme_rng) {
  return Play(h0, h1, options, adversary, trials, coin_rng, scheme_rng,
              &CaptureLeakyStrawmanView);
}

}  // namespace sse::security
