# Empty dependencies file for client_state_test.
# This may be replaced when dependencies are built.
