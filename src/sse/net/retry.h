#ifndef SSE_NET_RETRY_H_
#define SSE_NET_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sse/net/channel.h"
#include "sse/util/random.h"

namespace sse::net {

/// Policy knobs for RetryingChannel. Defaults suit an interactive client on
/// a flaky LAN; benches and the chaos suite override them.
struct RetryOptions {
  /// Total tries per Call, including the first. 1 disables retries.
  int max_attempts = 5;

  /// Backoff between attempts: decorrelated jitter. The first sleep is
  /// drawn from [0, initial_backoff_ms]; each later sleep from
  /// [initial_backoff_ms, 3 * previous], capped at max_backoff_ms.
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;

  /// Per-Call deadline across all attempts and backoff sleeps; 0 = none.
  /// Exceeding it surfaces DEADLINE_EXCEEDED with the last failure attached.
  double call_deadline_ms = 0.0;

  /// Stamp every request with a session header (client_id, per-call seq,
  /// payload CRC). All attempts of one Call share the seq, which is what
  /// lets an at-most-once server (core::ReplyCache) collapse retries of a
  /// non-idempotent update into a single application. Turn off only when
  /// talking to a pre-session peer.
  bool stamp_sessions = true;

  /// Treat CORRUPTION from the transport as retryable. At this layer a
  /// checksum failure means the link damaged a frame — re-sending the
  /// intact copy is exactly the fix. (Status::IsRetryable itself excludes
  /// CORRUPTION because storage-level corruption is not transient.)
  bool retry_corrupt_replies = true;

  /// Retry *budget*: a token bucket that caps how many retries this channel
  /// may spend relative to the successes it observes. Every retry spends
  /// one token; every successful call refills `retry_budget_refill` tokens
  /// (capped at `retry_budget`). When the bucket is empty the last failure
  /// surfaces immediately instead of amplifying an overloaded server with
  /// another attempt — the retry-storm circuit breaker. 0 = unlimited.
  double retry_budget = 0.0;
  /// Tokens refilled per successful call. 0.1 means sustained retries are
  /// capped near 10% of throughput once the initial bucket drains.
  double retry_budget_refill = 0.1;

  /// Stamp each attempt with the *remaining* overall deadline (a wire
  /// deadline header, net/message.h) so the server can drop the work once
  /// the client has given up, and cap the transport's IO timeout to the
  /// same remainder so the final attempt cannot overshoot the budget.
  /// Requires call_deadline_ms > 0 to have any effect.
  bool propagate_deadline = true;

  /// Session identity; 0 draws a random id at construction.
  uint64_t client_id = 0;

  /// MultiCall packing: ops per kMsgBatch envelope. <= 1 sends each op as
  /// its own stamped frame (pipelined but unbatched).
  int batch_size = 64;
  /// MultiCall pipelining: envelopes submitted before awaiting the first
  /// reply. 1 restores lockstep one-envelope-at-a-time behavior.
  int max_inflight = 4;
};

/// Client-visible retry accounting, separate from the byte-level
/// ChannelStats (which the inner transport keeps, retries included).
struct RetryStats {
  uint64_t calls = 0;
  uint64_t attempts = 0;          // inner Call invocations
  uint64_t retries = 0;           // attempts beyond the first
  uint64_t resets = 0;            // inner Reset() before a retry
  uint64_t stale_replies = 0;     // session echo mismatched our seq
  uint64_t corrupt_replies = 0;   // reply failed its checksum client-side
  uint64_t deadline_exceeded = 0; // calls abandoned on the deadline
  uint64_t exhausted = 0;         // calls abandoned after max_attempts
  uint64_t batches = 0;           // kMsgBatch envelopes sent by MultiCall
  uint64_t budget_exhausted = 0;  // retries refused by an empty token bucket
};

/// Decorator that turns any Channel into a reliable, exactly-once call
/// layer: it classifies failures, re-sends retryable ones under a deadline
/// with decorrelated-jitter backoff, resets the inner transport before
/// every retry (flushing half-read streams), and stamps each logical call
/// with a session header so the server can dedup the re-sends. A reply
/// whose session echo does not match the in-flight call (a duplicated or
/// reordered stream) is discarded and the call retried rather than handed
/// to the protocol layer.
class RetryingChannel : public Channel {
 public:
  /// `inner` must outlive this wrapper. `rng` (nullable) seeds the jitter
  /// and the random client id; without it a fixed id and mid-range jitter
  /// are used.
  RetryingChannel(Channel* inner, RetryOptions options,
                  RandomSource* rng = nullptr);

  Result<Message> Call(const Message& request) override;

  /// Executes many logical ops with per-op exactly-once semantics. Ops are
  /// packed into kMsgBatch envelopes of `batch_size` and up to
  /// `max_inflight` envelopes are pipelined through the inner channel's
  /// Submit/Await at once. Each op keeps ONE session seq across every
  /// retry (that seq is its dedup identity at the server's ReplyCache),
  /// while each envelope gets a FRESH seq per attempt — so a retried
  /// envelope is a new frame but its sub-ops still dedup individually, and
  /// a partially-failed batch retries only the ops that failed.
  /// Requires stamp_sessions; without it this degrades to sequential Call.
  std::vector<Result<Message>> MultiCall(
      const std::vector<Message>& requests) override;

  void Reset() override { inner_->Reset(); }

  const ChannelStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  const RetryStats& retry_stats() const { return retry_stats_; }
  uint64_t client_id() const { return client_id_; }
  uint64_t next_seq() const { return next_seq_; }
  /// Tokens left in the retry budget (only meaningful with retry_budget>0).
  double retry_tokens() const { return retry_tokens_; }

  void SetIoDeadlineMs(double ms) override { inner_->SetIoDeadlineMs(ms); }

  /// Test hooks: replace wall-clock sleeping and time reading. The clock
  /// returns milliseconds on any monotonic scale; the sleeper receives the
  /// backoff in ms and may advance a virtual clock instead of blocking.
  void set_sleep_fn(std::function<void(double)> fn) {
    sleep_fn_ = std::move(fn);
  }
  void set_clock_fn(std::function<double()> fn) { clock_fn_ = std::move(fn); }

 private:
  /// True if `status` is worth another attempt at this layer.
  bool ShouldRetry(const Status& status) const;
  double NowMs() const;
  void SleepMs(double ms);
  /// Next decorrelated-jitter sleep given the previous one.
  double NextBackoff(double prev_ms);
  /// Takes one token from the retry budget; false means the bucket is
  /// empty and the retry must be refused. Always true with no budget.
  bool SpendRetryToken();
  /// Credits a success back to the bucket.
  void RefillRetryToken();
  /// Stamps the remaining overall deadline onto `msg` and caps the inner
  /// transport's IO timeout to it (see RetryOptions::propagate_deadline).
  void StampRemainingDeadline(Message* msg, double start_ms);

  Channel* inner_;
  RetryOptions options_;
  RandomSource* rng_;
  uint64_t client_id_ = 0;
  uint64_t next_seq_ = 0;
  double retry_tokens_ = 0.0;
  RetryStats retry_stats_;
  std::function<void(double)> sleep_fn_;
  std::function<double()> clock_fn_;
};

}  // namespace sse::net

#endif  // SSE_NET_RETRY_H_
