// bench_load — open-loop load harness driving the real reactor TCP stack
// with valid Scheme 2 traffic, emitting BENCH_load.json.
//
// Methodology. The generator is *open-loop*: every operation has a
// scheduled intended arrival time t_i = start + i/rate drawn from a global
// schedule, and latency is measured from t_i, not from the moment the
// request happened to be written. A closed-loop harness (fixed workers in
// a request-reply lockstep) silently slows its own arrival process when
// the server stalls — the coordinated-omission trap — and so reports
// fantasy quantiles exactly in the regime that matters. Here a stalled
// server makes ops *late*, and the lateness lands in the histogram.
// Closed-loop mode is still used once, unpaced, to calibrate the server's
// capacity so the open-loop points can be placed relative to it.
//
// Sessions: ops are stamped with (client_id, seq) from a configurable
// pool of simulated sessions multiplexed over a few pipelined TCP
// connections — the reactor serves sessions, not sockets, so a million
// logical sessions ride comfortably on a handful of connections.
//
// Traffic is real protocol traffic, not garbage frames: searches carry
// trapdoors minted by a Scheme2Client over a Zipf-skewed keyword
// popularity distribution, updates are genuine S2UpdateRequest payloads
// captured from the client's own update protocol and replayed against
// disjoint keywords (HandleUpdate appends segments, so replays stay valid
// mutations). Error replies therefore mean something: on the nominal
// point everything should be ok; past the admission watermarks the shed
// rate and the SLO verdicts tell the overload story.
//
// Points: nominal (~50% of calibrated capacity), near-saturation (~90%),
// and past-watermark (~300%, beyond the admission controller's
// queue-depth watermarks). Each point reports achieved throughput,
// p50/p95/p99 from intended start, per-class shed rates, and SLO
// attainment verdicts computed client-side against the default
// obs::SloOptions thresholds; the server's own sse_slo_* gauge view and
// the tail of its event journal (brownout enter/exit) are scraped into
// the JSON as well.
//
// Usage: bench_load [--smoke] [output.json]
//   --smoke: small deterministic run for CI (ctest label "load"); a 300us
//   throttled handler pins capacity so the overload point sheds reliably
//   on any machine.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_messages.h"
#include "sse/net/admission.h"
#include "sse/net/channel.h"
#include "sse/net/tcp.h"
#include "sse/obs/events.h"
#include "sse/obs/histogram.h"
#include "sse/obs/slo.h"
#include "sse/obs/stats_rpc.h"
#include "sse/phr/workload.h"
#include "sse/repl/failover_channel.h"

namespace sse::bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// SplitMix64: per-op deterministic randomness derived from the op index,
/// so the op mix and keyword choice do not depend on thread interleaving.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Zipf(s) sampler over ranks [0, n) via a precomputed CDF + binary
/// search. Rank 0 is the most popular keyword.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Sample(uint64_t bits) const {
    const double u =
        static_cast<double>(bits >> 11) / static_cast<double>(1ull << 53);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Captures the client's outgoing update-protocol messages and answers
/// them locally, so a pool of genuine S2UpdateRequest payloads can be
/// minted without touching the server.
class CaptureChannel : public net::Channel {
 public:
  Result<net::Message> Call(const net::Message& request) override {
    if (request.type != core::kMsgS2UpdateRequest) {
      return Status::InvalidArgument("capture channel only takes updates");
    }
    captured.push_back(request);
    core::S2UpdateAck ack;
    ack.keywords_updated = 1;
    net::Message reply = ack.ToMessage();
    reply.EchoSession(request);
    return reply;
  }
  const net::ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

  std::vector<net::Message> captured;

 private:
  net::ChannelStats stats_;
};

/// Handler decorator that pins per-op cost, so the smoke run's capacity —
/// and therefore its overload point — is machine-independent.
struct ThrottledHandler : public net::MessageHandler {
  ThrottledHandler(net::MessageHandler* inner, std::chrono::microseconds cost)
      : inner(inner), cost(cost) {}
  Result<net::Message> Handle(const net::Message& request) override {
    std::this_thread::sleep_for(cost);
    return inner->Handle(request);
  }
  net::MessageHandler* inner;
  std::chrono::microseconds cost;
};

struct ClassTally {
  obs::LatencyHistogram latency;  // from intended start, admitted ops only
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> good{0};  // ok AND under the class SLO threshold
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> errors{0};  // non-shed failures
};

struct PhaseResult {
  std::string name;
  double target_rate = 0;  // ops/s; 0 = unpaced (closed loop)
  double achieved_rate = 0;
  double wall_s = 0;
  uint64_t ops = 0;
  uint64_t late_ops = 0;  // sent >=1ms after their intended time
  obs::LatencyHistogram::Snapshot search;
  obs::LatencyHistogram::Snapshot update;
  uint64_t search_sent = 0, search_ok = 0, search_good = 0, search_shed = 0,
           search_errors = 0;
  uint64_t update_sent = 0, update_ok = 0, update_good = 0, update_shed = 0,
           update_errors = 0;
  double search_attainment = 1.0;
  double update_attainment = 1.0;
  bool search_slo_ok = true;
  bool update_slo_ok = true;
};

struct LoadConfig {
  size_t sessions = 1'000'000;
  size_t connections = 2;
  size_t window = 16;  // in-flight ops per connection (< pipeline_queue)
  double update_fraction = 0.10;
  double zipf_s = 0.99;
  size_t search_keywords = 2048;
  size_t update_pool = 64;
  uint64_t calibrate_ops = 4000;
  uint64_t ops_per_point = 24000;
  // Default obs::SloOptions verdict inputs.
  uint64_t search_threshold_us = 10'000;
  uint64_t update_threshold_us = 50'000;
  double search_objective = 0.999;
  double update_objective = 0.995;
};

/// One load point: `total_ops` ops offered at `rate` ops/s (0 = closed
/// loop, window-limited) across `config.connections` pipelined channels,
/// each keeping up to `window` calls in flight. Healthy points run a
/// shallow window; the past-watermark point runs a deep one, because an
/// open-loop overload has no client-side concurrency cap and a window
/// smaller than the admission watermark would throttle the flood before
/// the server ever got to shed it.
PhaseResult RunPhase(const char* name, uint16_t port, const LoadConfig& config,
                     size_t window_depth,
                     const std::vector<net::Message>& searches,
                     const ZipfSampler& zipf,
                     const std::vector<net::Message>& updates, double rate,
                     uint64_t total_ops, uint64_t phase_seed) {
  ClassTally tally[2];  // [0]=search, [1]=update
  std::atomic<uint64_t> next_op{0};
  std::atomic<uint64_t> late_ops{0};
  const uint64_t start_ns = NowNs() + 2'000'000;  // settle margin
  const double ns_per_op = rate > 0 ? 1e9 / rate : 0;

  auto worker = [&](size_t /*conn_index*/) {
    auto channel = MustValue(net::TcpChannel::Connect(port), "load connect");
    struct Pending {
      net::Channel::CallId id;
      uint64_t intended_ns;
      int cls;
    };
    std::vector<Pending> window;
    window.reserve(window_depth);
    auto reap = [&](const Pending& p) {
      auto reply = channel->Await(p.id);
      ClassTally& t = tally[p.cls];
      if (reply.ok()) {
        const uint64_t lat_ns = NowNs() - p.intended_ns;
        t.latency.Record(lat_ns);
        t.ok.fetch_add(1, std::memory_order_relaxed);
        const uint64_t threshold_us = p.cls == 0 ? config.search_threshold_us
                                                 : config.update_threshold_us;
        if (lat_ns <= threshold_us * 1000) {
          t.good.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (reply.status().code() == StatusCode::kResourceExhausted) {
        t.shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        t.errors.fetch_add(1, std::memory_order_relaxed);
      }
    };
    while (true) {
      const uint64_t i = next_op.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_ops) break;
      // Open loop: wait for the op's intended time if it is still in the
      // future; if the schedule is behind (server pushing back through the
      // submit windows), send immediately and let the lateness show up in
      // the from-intended-start latency.
      const uint64_t intended_ns =
          start_ns + static_cast<uint64_t>(ns_per_op * static_cast<double>(i));
      if (rate > 0) {
        // Spend schedule slack reaping completed replies instead of
        // sleeping through it: latency is measured at reap, so replies
        // left to sit until the window fills would be charged reap-lag
        // (~window/rate) they never actually took. Await on the oldest
        // pending op can overshoot the slack if that op is still queued
        // server-side; the overshoot is real backlog and is recorded
        // honestly as a late send below.
        // The >4 floor keeps the drain from blocking on an op submitted
        // microseconds ago: a head four submissions deep has had several
        // service times to complete, so Await returns ~immediately.
        while (window.size() > 4 && intended_ns > NowNs() + 20'000) {
          reap(window.front());
          window.erase(window.begin());
        }
        const uint64_t now = NowNs();
        if (intended_ns > now) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(intended_ns - now));
        } else if (now - intended_ns > 1'000'000) {
          late_ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const uint64_t bits = Mix64(phase_seed ^ i);
      const bool is_update =
          static_cast<double>(bits & 0xffff) <
          config.update_fraction * 65536.0;
      net::Message msg =
          is_update ? updates[i % updates.size()]
                    : searches[zipf.Sample(Mix64(bits))];
      // Session multiplexing: op i belongs to session i mod S with a
      // per-session monotonically increasing seq, so every op carries a
      // unique (client_id, seq) and the pipelined replies correlate.
      msg.StampSession(1'000'000'000ull + (i % config.sessions),
                       i / config.sessions + 1);
      tally[is_update ? 1 : 0].sent.fetch_add(1, std::memory_order_relaxed);
      if (window.size() >= window_depth) {
        reap(window.front());
        window.erase(window.begin());
      }
      window.push_back(Pending{channel->Submit(msg),
                               rate > 0 ? intended_ns : NowNs(),
                               is_update ? 1 : 0});
    }
    for (const Pending& p : window) reap(p);
  };

  const uint64_t wall_start = NowNs();
  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back(worker, c);
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      static_cast<double>(NowNs() - wall_start) / 1e9;

  PhaseResult r;
  r.name = name;
  r.target_rate = rate;
  r.ops = total_ops;
  r.wall_s = wall_s;
  r.achieved_rate =
      wall_s > 0 ? static_cast<double>(total_ops) / wall_s : 0;
  r.late_ops = late_ops.load();
  r.search = tally[0].latency.Snap();
  r.update = tally[1].latency.Snap();
  r.search_sent = tally[0].sent.load();
  r.search_ok = tally[0].ok.load();
  r.search_good = tally[0].good.load();
  r.search_shed = tally[0].shed.load();
  r.search_errors = tally[0].errors.load();
  r.update_sent = tally[1].sent.load();
  r.update_ok = tally[1].ok.load();
  r.update_good = tally[1].good.load();
  r.update_shed = tally[1].shed.load();
  r.update_errors = tally[1].errors.load();
  // SLO verdicts, client side: every offered op is in the denominator (a
  // shed op is a bad op from the caller's point of view).
  r.search_attainment =
      r.search_sent > 0 ? static_cast<double>(r.search_good) /
                              static_cast<double>(r.search_sent)
                        : 1.0;
  r.update_attainment =
      r.update_sent > 0 ? static_cast<double>(r.update_good) /
                              static_cast<double>(r.update_sent)
                        : 1.0;
  r.search_slo_ok = r.search_attainment >= config.search_objective;
  r.update_slo_ok = r.update_attainment >= config.update_objective;
  return r;
}

void PrintPhase(const PhaseResult& r) {
  std::printf(
      "%-16s target %8.0f/s achieved %8.0f/s over %5.2fs (%llu ops, "
      "%llu late)\n",
      r.name.c_str(), r.target_rate, r.achieved_rate, r.wall_s,
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.late_ops));
  std::printf(
      "  search: p50 %7.0fus p95 %7.0fus p99 %7.0fus | shed %5llu/%llu | "
      "attainment %.4f %s\n",
      r.search.quantile_micros(0.50), r.search.quantile_micros(0.95),
      r.search.quantile_micros(0.99),
      static_cast<unsigned long long>(r.search_shed),
      static_cast<unsigned long long>(r.search_sent), r.search_attainment,
      r.search_slo_ok ? "MET" : "VIOLATED");
  std::printf(
      "  update: p50 %7.0fus p95 %7.0fus p99 %7.0fus | shed %5llu/%llu | "
      "attainment %.4f %s\n",
      r.update.quantile_micros(0.50), r.update.quantile_micros(0.95),
      r.update.quantile_micros(0.99),
      static_cast<unsigned long long>(r.update_shed),
      static_cast<unsigned long long>(r.update_sent), r.update_attainment,
      r.update_slo_ok ? "MET" : "VIOLATED");
}

std::string PhaseJson(const PhaseResult& r) {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"name\": \"%s\", \"target_rate\": %.1f, "
      "\"achieved_rate\": %.1f, \"wall_s\": %.3f, \"ops\": %llu, "
      "\"late_ops\": %llu,\n"
      "     \"search\": {\"sent\": %llu, \"ok\": %llu, \"shed\": %llu, "
      "\"errors\": %llu, \"shed_rate\": %.4f, \"p50_us\": %.1f, "
      "\"p95_us\": %.1f, \"p99_us\": %.1f, \"attainment\": %.4f, "
      "\"slo_met\": %s},\n"
      "     \"update\": {\"sent\": %llu, \"ok\": %llu, \"shed\": %llu, "
      "\"errors\": %llu, \"shed_rate\": %.4f, \"p50_us\": %.1f, "
      "\"p95_us\": %.1f, \"p99_us\": %.1f, \"attainment\": %.4f, "
      "\"slo_met\": %s}}",
      r.name.c_str(), r.target_rate, r.achieved_rate, r.wall_s,
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.late_ops),
      static_cast<unsigned long long>(r.search_sent),
      static_cast<unsigned long long>(r.search_ok),
      static_cast<unsigned long long>(r.search_shed),
      static_cast<unsigned long long>(r.search_errors),
      r.search_sent > 0 ? static_cast<double>(r.search_shed) /
                              static_cast<double>(r.search_sent)
                        : 0.0,
      r.search.quantile_micros(0.50), r.search.quantile_micros(0.95),
      r.search.quantile_micros(0.99), r.search_attainment,
      r.search_slo_ok ? "true" : "false",
      static_cast<unsigned long long>(r.update_sent),
      static_cast<unsigned long long>(r.update_ok),
      static_cast<unsigned long long>(r.update_shed),
      static_cast<unsigned long long>(r.update_errors),
      r.update_sent > 0 ? static_cast<double>(r.update_shed) /
                              static_cast<double>(r.update_sent)
                        : 0.0,
      r.update.quantile_micros(0.50), r.update.quantile_micros(0.95),
      r.update.quantile_micros(0.99), r.update_attainment,
      r.update_slo_ok ? "true" : "false");
  return buf;
}

int Run(bool smoke, const char* json_path) {
  LoadConfig load;
  if (smoke) {
    load.sessions = 2000;
    load.connections = 2;
    load.window = 16;
    load.search_keywords = 256;
    load.calibrate_ops = 400;
    load.ops_per_point = 600;
  }
  std::printf(
      "bench_load: open-loop Scheme 2 load over the reactor TCP stack\n"
      "(%zu simulated sessions over %zu connections, window %zu, "
      "%.0f%% updates, Zipf s=%.2f over %zu keywords)%s\n\n",
      load.sessions, load.connections, load.window,
      load.update_fraction * 100.0, load.zipf_s, load.search_keywords,
      smoke ? " [SMOKE]" : "");

  // --- Build and seed the system -------------------------------------
  DeterministicRandom rng(42);
  core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                          /*chain_length=*/64);
  config.engine_shards = 4;
  core::SseSystem sys = MustCreate(core::SystemKind::kScheme2, config, &rng);
  auto* client = static_cast<core::Scheme2Client*>(sys.client.get());

  const size_t keywords_per_doc = 8;
  const size_t docs_count = load.search_keywords / keywords_per_doc;
  std::vector<core::Document> docs;
  size_t kw_rank = 0;
  for (size_t i = 0; i < docs_count; ++i) {
    std::vector<std::string> kws;
    for (size_t k = 0; k < keywords_per_doc; ++k) {
      kws.push_back(phr::SyntheticKeyword(kw_rank++));
    }
    docs.push_back(core::Document::Make(i, "content", kws));
  }
  MustOk(sys.client->Store(docs), "seed store");

  // --- Pre-mint the request pools ------------------------------------
  // Searches: one trapdoor per keyword, popularity assigned by rank.
  std::vector<net::Message> searches;
  searches.reserve(load.search_keywords);
  for (size_t k = 0; k < load.search_keywords; ++k) {
    auto trapdoor = MustValue(
        client->MakeTrapdoor(phr::SyntheticKeyword(k)), "trapdoor");
    core::S2SearchRequest req;
    req.token = std::move(trapdoor.token);
    req.chain_element = std::move(trapdoor.chain_element);
    searches.push_back(req.ToMessage());
  }
  ZipfSampler zipf(load.search_keywords, load.zipf_s);
  // Updates: genuine update-protocol messages against keywords disjoint
  // from the search set, captured once and replayed (append-only server
  // semantics keep every replay a valid mutation).
  CaptureChannel capture;
  client->set_channel(&capture);
  for (size_t j = 0; j < load.update_pool; ++j) {
    MustOk(client->FakeUpdate(
               {phr::SyntheticKeyword(load.search_keywords + j)}),
           "capture update");
  }
  client->set_channel(sys.channel.get());
  std::vector<net::Message> updates = std::move(capture.captured);
  std::printf("pools ready: %zu search trapdoors, %zu captured updates\n\n",
              searches.size(), updates.size());

  // --- Serve over TCP with admission watermarks -----------------------
  ThrottledHandler throttled(sys.server.get(),
                             std::chrono::microseconds(smoke ? 300 : 0));
  net::QueueAdmissionController::Options admission_options;
  // Watermarks sized so a full client-side burst (connections x window
  // frames arriving back-to-back after a late pacer wake-up) does not by
  // itself cross the search watermark at healthy load; sustained overload
  // still does, and mutations brown out first at half the depth.
  admission_options.max_queue_depth = 48;
  admission_options.mutation_queue_depth = 24;
  admission_options.retry_after_ms = 5;
  auto controller =
      std::make_shared<net::QueueAdmissionController>(admission_options);
  net::TcpServer::Options server_opts;
  server_opts.serialize_handler = false;  // the sharded engine is thread-safe
  server_opts.reactor_loops = 1;
  server_opts.pipeline_workers = 2;
  server_opts.pipeline_queue = 64;
  server_opts.max_dispatch_queue = 128;
  server_opts.admission = controller;
  server_opts.brownout_exit_ms = 500;
  net::MessageHandler* handler =
      smoke ? static_cast<net::MessageHandler*>(&throttled)
            : sys.server.get();
  auto server =
      MustValue(net::TcpServer::Start(handler, 0, server_opts), "tcp server");

  // --- Calibrate capacity (closed loop, unpaced) ----------------------
  const PhaseResult cal =
      RunPhase("calibrate", server->port(), load, load.window, searches,
               zipf, updates,
               /*rate=*/0, load.calibrate_ops, /*phase_seed=*/1);
  PrintPhase(cal);
  // Capacity is goodput, not raw completion rate: shed replies complete in
  // microseconds and would inflate the ceiling the paced points are
  // placed against.
  const double capacity =
      cal.wall_s > 0
          ? static_cast<double>(cal.search_ok + cal.update_ok) / cal.wall_s
          : 0;
  std::printf("calibrated capacity (goodput): %.0f ops/s\n\n", capacity);

  // --- The three load points ------------------------------------------
  std::vector<PhaseResult> points;
  points.push_back(RunPhase("nominal", server->port(), load, load.window, searches,
                            zipf, updates, 0.5 * capacity, load.ops_per_point,
                            2));
  PrintPhase(points.back());
  points.push_back(RunPhase("near_saturation", server->port(), load,
                            load.window, searches, zipf, updates,
                            0.9 * capacity, load.ops_per_point, 3));
  PrintPhase(points.back());
  points.push_back(RunPhase("past_watermark", server->port(), load,
                            load.window * 4, searches, zipf, updates,
                            3.0 * capacity, load.ops_per_point, 4));
  PrintPhase(points.back());

  // --- Let the brownout clear, then scrape the server's own view ------
  std::this_thread::sleep_for(
      std::chrono::milliseconds(server_opts.brownout_exit_ms + 200));
  points.push_back(RunPhase("recovery", server->port(), load, load.window,
                            searches, zipf, updates, 0.25 * capacity,
                            std::max<uint64_t>(load.ops_per_point / 8, 64),
                            5));
  PrintPhase(points.back());

  double server_search_attainment = -1, server_mutation_attainment = -1,
         server_search_burn = -1;
  std::string events_json = "[]";
  {
    auto admin =
        MustValue(net::TcpChannel::Connect(server->port()), "admin connect");
    obs::StatsRequest req;
    req.include_events = true;
    req.events_tail = 32;
    auto reply = MustValue(admin->Call(req.ToMessage()), "stats call");
    auto stats = MustValue(obs::StatsReply::FromMessage(reply), "stats parse");
    repl::FindMetricValue(stats.prometheus_text, "sse_slo_search_attainment",
                          &server_search_attainment);
    repl::FindMetricValue(stats.prometheus_text,
                          "sse_slo_mutation_attainment",
                          &server_mutation_attainment);
    repl::FindMetricValue(stats.prometheus_text, "sse_slo_search_burn_fast",
                          &server_search_burn);
    if (!stats.events_json.empty()) events_json = stats.events_json;
  }
  const uint64_t journal_events = obs::EventJournal::Global().emitted();
  server->Stop();

  std::printf(
      "\nserver view: search attainment %.4f (burn %.2f), mutation "
      "attainment %.4f, %llu journal events\n",
      server_search_attainment, server_search_burn,
      server_mutation_attainment,
      static_cast<unsigned long long>(journal_events));

  // --- Emit BENCH_load.json -------------------------------------------
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"load\",\n"
      "  \"system\": \"scheme2\",\n"
      "  \"smoke\": %s,\n"
      "  \"host_cores\": %u,\n"
      "  \"sessions\": %zu,\n"
      "  \"connections\": %zu,\n"
      "  \"window\": %zu,\n"
      "  \"update_fraction\": %.3f,\n"
      "  \"zipf_s\": %.2f,\n"
      "  \"search_keywords\": %zu,\n"
      "  \"admission\": {\"search_depth\": %zu, \"mutation_depth\": %zu, "
      "\"dispatch_cap\": %zu, \"workers\": %zu},\n"
      "  \"calibrated_capacity_ops_s\": %.1f,\n"
      "  \"points\": [\n",
      smoke ? "true" : "false", std::thread::hardware_concurrency(),
      load.sessions, load.connections, load.window,
      load.update_fraction, load.zipf_s, load.search_keywords,
      admission_options.max_queue_depth,
      admission_options.mutation_queue_depth, server_opts.max_dispatch_queue,
      server_opts.pipeline_workers, capacity);
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out, "%s%s\n", PhaseJson(points[i]).c_str(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"server_view\": {\"search_attainment\": %.4f, "
               "\"mutation_attainment\": %.4f, \"search_burn_fast\": %.2f, "
               "\"journal_events\": %llu},\n"
               "  \"events_tail\": %s\n"
               "}\n",
               server_search_attainment, server_mutation_attainment,
               server_search_burn,
               static_cast<unsigned long long>(journal_events),
               events_json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", json_path);

  // Smoke acceptance: the harness itself asserts the regime shape so the
  // ctest run fails loudly if the overload machinery stops working.
  if (smoke) {
    const PhaseResult& overload = points[2];
    if (overload.search_shed + overload.update_shed == 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: past-watermark point shed nothing\n");
      return 1;
    }
    const PhaseResult& nominal = points[0];
    if (nominal.search_errors + nominal.update_errors > 0) {
      std::fprintf(stderr, "SMOKE FAIL: nominal point saw hard errors\n");
      return 1;
    }
    if (journal_events == 0) {
      std::fprintf(stderr, "SMOKE FAIL: no journal events recorded\n");
      return 1;
    }
    std::printf("smoke checks passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace sse::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "BENCH_load.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  return sse::bench::Run(smoke, json_path);
}
