#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency
# tests. Usage: scripts/ci.sh [--skip-tsan]
#
# 1. Configure + build everything, run the full ctest suite (the repo's
#    tier-1 gate from ROADMAP.md).
# 2. Rebuild the engine/concurrency test targets with -fsanitize=thread in
#    a separate build dir and run only the "concurrency" ctest label.
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "==> tier-1: build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "==> skipping TSan pass (--skip-tsan)"
  exit 0
fi

echo "==> tsan: concurrency + chaos tests under ThreadSanitizer"
cmake -B build-tsan -S . \
  -DSSE_TSAN=ON \
  -DSSE_BUILD_BENCHMARKS=OFF \
  -DSSE_BUILD_EXAMPLES=OFF >/dev/null
# Only the labeled test targets need to exist; building them (plus their
# libsse dependency) is much faster than a full TSan build.
cmake --build build-tsan -j "$(nproc)" \
  --target engine_concurrency_test tcp_test chaos_test
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan -L "concurrency|chaos" --output-on-failure

echo "==> ci.sh: all green"
