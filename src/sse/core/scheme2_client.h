#ifndef SSE_CORE_SCHEME2_CLIENT_H_
#define SSE_CORE_SCHEME2_CLIENT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/scheme2_messages.h"
#include "sse/core/types.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"

namespace sse::core {

/// The client of Scheme 2 (paper §5.5–5.6).
///
/// Per keyword, update j is encrypted under the chain key
/// `k_j(w) = f^{l-ctr}(seed_w)`; the client walks its per-keyword chain
/// backwards as the global counter `ctr` grows. Client state is tiny: the
/// counter, a searched-since-last-update bit (Optimization 2), the chain
/// epoch, and the set of used document ids.
///
/// Substitution note: the paper seeds the chain with the literal string
/// `w ‖ k_w`; we derive `seed_w = PRF_{k_w}("s2.chain" ‖ epoch ‖ token_w)`
/// instead. This is equivalent under the PRF assumption and lets the
/// re-initialization procedure (which only sees tokens, not keywords)
/// rebuild every chain.
class Scheme2Client : public SseClientInterface {
 public:
  static Result<std::unique_ptr<Scheme2Client>> Create(
      const crypto::MasterKey& key, const SchemeOptions& options,
      net::Channel* channel, RandomSource* rng);

  Status Store(const std::vector<Document>& docs) override;
  Result<SearchOutcome> Search(std::string_view keyword) override;
  /// With SchemeOptions::batch_ops, runs all K one-round searches as one
  /// pipelined MultiCall round instead of K sequential round trips.
  Result<std::vector<SearchOutcome>> MultiSearch(
      const std::vector<std::string>& keywords) override;
  Status FakeUpdate(const std::vector<std::string>& keywords) override;
  std::string name() const override { return "scheme2"; }

  /// Trapdoor(w) = (f_{k_w}(w), f^{l-ctr}(seed_w)).
  struct Trapdoor {
    Bytes token;
    Bytes chain_element;
  };
  Result<Trapdoor> MakeTrapdoor(std::string_view keyword) const;

  /// Current global counter; at most chain_length counted updates fit in
  /// one epoch.
  uint32_t counter() const { return ctr_; }
  uint32_t epoch() const { return epoch_; }

  /// Remaining counted updates before the chain is exhausted.
  uint32_t remaining_updates() const { return options_.chain_length - ctr_; }

  /// Rebuilds the whole index under a fresh chain epoch (paper
  /// Optimization 2 discussion: "the whole process should be repeated again
  /// with a different seed"). Downloads every keyword's segments, decrypts
  /// and merges them locally, resets the counter, and replaces the server
  /// index with one fresh segment per keyword. Costs two rounds plus the
  /// full index in bandwidth — which is why Optimization 2 tries to delay it.
  Status Reinitialize();

  /// Diagnostic counters from the last search reply.
  uint64_t last_search_chain_steps() const { return last_chain_steps_; }
  uint64_t last_search_segments_decrypted() const { return last_segments_; }

  /// Reconnects the client to a new channel (e.g. after a server restart).
  /// Client-side protocol state (counter, epoch, used ids) is preserved.
  void set_channel(net::Channel* channel) { channel_ = channel; }

  /// Serializes the client's protocol state — counter, epoch,
  /// searched-since-update flag and the used document ids. A client MUST
  /// persist this between sessions: restoring an older counter would reuse
  /// chain elements the server has already seen.
  Bytes SerializeState() const override;
  Status RestoreState(BytesView data) override;

 private:
  Scheme2Client(crypto::Prf prf, crypto::Aead aead,
                const SchemeOptions& options, net::Channel* channel,
                RandomSource* rng);

  struct PendingUpdate {
    std::string keyword;
    std::vector<uint64_t> ids;
  };

  Result<Bytes> Token(std::string_view keyword) const;
  /// Chain seed for `token` in `epoch`.
  Result<Bytes> ChainSeed(BytesView token, uint32_t epoch) const;
  /// Chain element at counter `ctr` for `token` (the key k_{ctr}).
  Result<Bytes> ChainKeyAt(BytesView token, uint32_t epoch,
                           uint32_t ctr) const;

  /// Advances the counter per the Optimization 2 policy and returns the
  /// value updates in this batch must use. Fails with RESOURCE_EXHAUSTED
  /// when the chain is spent.
  Result<uint32_t> NextUpdateCounter();

  /// With SchemeOptions::batch_ops the round is K per-keyword ops through
  /// MultiCall; otherwise one monolithic message. The counter policy is
  /// identical either way: the whole run shares one update counter.
  Status RunUpdateProtocol(const std::vector<PendingUpdate>& updates,
                           const std::vector<Document>& documents);

  /// Decodes an S2SearchResult into ids + decrypted documents, updating
  /// the diagnostic counters.
  Result<SearchOutcome> ParseSearchResult(const net::Message& msg);

  crypto::Prf prf_;
  crypto::Aead aead_;
  SchemeOptions options_;
  net::Channel* channel_;
  RandomSource* rng_;

  /// Per-keyword memo of the last computed chain element. Walking the
  /// chain costs l-ctr hash steps from the seed; since the counter only
  /// grows by small amounts between operations on the same keyword, the
  /// memo turns the common cases (same counter, or an *older* element,
  /// reachable by walking forward) into O(delta) instead of O(l).
  struct ChainMemo {
    uint32_t epoch = 0;
    uint32_t ctr = 0;  // the counter whose element is memoized
    Bytes element;
  };
  mutable std::map<std::string, ChainMemo> chain_memo_;  // key: hex token

  uint32_t ctr_ = 0;
  uint32_t epoch_ = 0;
  bool searched_since_update_ = true;  // first update always increments
  std::set<uint64_t> used_ids_;
  uint64_t last_chain_steps_ = 0;
  uint64_t last_segments_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME2_CLIENT_H_
