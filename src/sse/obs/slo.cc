#include "sse/obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace sse::obs {

namespace {

int64_t NowSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_slo_enabled{true};

// Pending options for the global tracker, settable until first use.
std::mutex g_global_mu;
SloOptions* g_global_options = nullptr;
bool g_global_created = false;

}  // namespace

bool SloRecordingEnabled() {
  return g_slo_enabled.load(std::memory_order_relaxed);
}

void SetSloRecordingEnabled(bool enabled) {
  g_slo_enabled.store(enabled, std::memory_order_relaxed);
}

const char* SloClassName(SloClass c) {
  switch (c) {
    case SloClass::kSearch:
      return "search";
    case SloClass::kMutation:
      return "mutation";
    case SloClass::kControl:
      return "control";
  }
  return "unknown";
}

SloTracker::SloTracker() : SloTracker(SloOptions{}) {}

SloTracker::SloTracker(SloOptions options) : options_(options) {
  if (options_.bucket_seconds == 0) options_.bucket_seconds = 1;
  const size_t need =
      (std::max(options_.fast_window_s, options_.slow_window_s) +
       options_.bucket_seconds - 1) /
      options_.bucket_seconds;
  options_.buckets = std::max<size_t>(options_.buckets, need + 1);
  buckets_ = std::vector<Bucket>(kSloClasses * options_.buckets);
}

bool SloTracker::ConfigureGlobal(const SloOptions& options) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_created) return false;
  if (g_global_options == nullptr) g_global_options = new SloOptions;
  *g_global_options = options;
  return true;
}

SloTracker& SloTracker::Global() {
  static SloTracker* tracker = [] {
    std::lock_guard<std::mutex> lock(g_global_mu);
    g_global_created = true;
    auto* t = new SloTracker(g_global_options != nullptr ? *g_global_options
                                                         : SloOptions{});
    // The registrations live as long as the process; leak them alongside
    // the tracker so scrapes always see the sse_slo_* family.
    static std::vector<MetricsRegistry::Registration> regs =
        t->RegisterGauges(MetricsRegistry::Global());
    return t;
  }();
  return *tracker;
}

void SloTracker::Record(SloClass c, uint64_t latency_ns, bool ok) {
  RecordAt(c, latency_ns, ok, NowSeconds());
}

void SloTracker::RecordAt(SloClass c, uint64_t latency_ns, bool ok,
                          int64_t now_s) {
  const int64_t epoch = now_s / options_.bucket_seconds;
  const size_t slot = static_cast<size_t>(c) * options_.buckets +
                      static_cast<size_t>(epoch % static_cast<int64_t>(
                                                      options_.buckets));
  Bucket& b = buckets_[slot];
  int64_t seen = b.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    if (seen > epoch) return;  // stale sample from a clock race: drop it
    // Re-claim the slot for this epoch. The CAS winner zeroes the
    // counters; a concurrent recorder that observes the new epoch before
    // the zeroing finishes may lose its sample — acceptable for
    // monitoring, and bounded to the rotation instant.
    if (b.epoch.compare_exchange_strong(seen, epoch,
                                        std::memory_order_acq_rel)) {
      b.total.store(0, std::memory_order_relaxed);
      b.errors.store(0, std::memory_order_relaxed);
      b.slow.store(0, std::memory_order_relaxed);
    } else if (b.epoch.load(std::memory_order_acquire) != epoch) {
      return;  // lost the race to a different epoch entirely
    }
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    b.errors.fetch_add(1, std::memory_order_relaxed);
  } else {
    const uint64_t threshold_us =
        options_.latency_threshold_us[static_cast<size_t>(c)];
    if (threshold_us != 0 && latency_ns > threshold_us * 1000ull) {
      b.slow.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

SloTracker::Window SloTracker::WindowAt(SloClass c, uint32_t window_s,
                                        int64_t now_s) const {
  Window w;
  const int64_t now_epoch = now_s / options_.bucket_seconds;
  const int64_t span = std::min<int64_t>(
      static_cast<int64_t>(options_.buckets),
      std::max<int64_t>(
          1, window_s / std::max<uint32_t>(1, options_.bucket_seconds)));
  const int64_t oldest = now_epoch - span + 1;
  for (int64_t e = oldest; e <= now_epoch; ++e) {
    if (e < 0) continue;
    const size_t slot =
        static_cast<size_t>(c) * options_.buckets +
        static_cast<size_t>(e % static_cast<int64_t>(options_.buckets));
    const Bucket& b = buckets_[slot];
    if (b.epoch.load(std::memory_order_acquire) != e) continue;  // stale/idle
    w.total += b.total.load(std::memory_order_relaxed);
    w.errors += b.errors.load(std::memory_order_relaxed);
    w.slow += b.slow.load(std::memory_order_relaxed);
  }
  // A racing rotation can transiently leave errors+slow > total; clamp so
  // derived rates stay in range.
  w.errors = std::min(w.errors, w.total);
  w.slow = std::min(w.slow, w.total - w.errors);
  return w;
}

double SloTracker::BurnRate(SloClass c, const Window& w) const {
  const double objective = options_.objective[static_cast<size_t>(c)];
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return w.attainment() < 1.0 ? 1e9 : 0.0;
  return (1.0 - w.attainment()) / budget;
}

SloTracker::Report SloTracker::Snapshot() const {
  return SnapshotAt(NowSeconds());
}

SloTracker::Report SloTracker::SnapshotAt(int64_t now_s) const {
  Report report;
  for (size_t i = 0; i < kSloClasses; ++i) {
    const SloClass c = static_cast<SloClass>(i);
    ClassReport& r = report.classes[i];
    r.fast = WindowAt(c, options_.fast_window_s, now_s);
    r.slow = WindowAt(c, options_.slow_window_s, now_s);
    r.fast_burn = BurnRate(c, r.fast);
    r.slow_burn = BurnRate(c, r.slow);
    r.fast_ok = r.fast.attainment() >= options_.objective[i];
    r.slow_ok = r.slow.attainment() >= options_.objective[i];
  }
  return report;
}

std::vector<MetricsRegistry::Registration> SloTracker::RegisterGauges(
    MetricsRegistry& registry) {
  std::vector<MetricsRegistry::Registration> regs;
  for (size_t i = 0; i < kSloClasses; ++i) {
    const SloClass c = static_cast<SloClass>(i);
    const std::string base = std::string("sse_slo_") + SloClassName(c);
    regs.push_back(registry.RegisterGauge(
        base + "_availability",
        [this, c] {
          return Snapshot().of(c).fast.availability();
        },
        "Non-error fraction over the fast SLO window"));
    regs.push_back(registry.RegisterGauge(
        base + "_attainment",
        [this, c] { return Snapshot().of(c).fast.attainment(); },
        "Good-request (ok and under threshold) fraction, fast window"));
    regs.push_back(registry.RegisterGauge(
        base + "_attainment_slow",
        [this, c] { return Snapshot().of(c).slow.attainment(); },
        "Good-request fraction over the slow SLO window"));
    regs.push_back(registry.RegisterGauge(
        base + "_burn_fast",
        [this, c] { return Snapshot().of(c).fast_burn; },
        "Error-budget burn rate over the fast window (1.0 = budget pace)"));
    regs.push_back(registry.RegisterGauge(
        base + "_burn_slow",
        [this, c] { return Snapshot().of(c).slow_burn; },
        "Error-budget burn rate over the slow window"));
    regs.push_back(registry.RegisterGauge(
        base + "_window_total",
        [this, c] {
          return static_cast<double>(Snapshot().of(c).fast.total);
        },
        "Requests observed in the fast SLO window"));
  }
  return regs;
}

std::string SloTracker::Summary(bool include_idle) const {
  const Report report = Snapshot();
  std::string out;
  for (size_t i = 0; i < kSloClasses; ++i) {
    const ClassReport& r = report.classes[i];
    if (!include_idle && r.slow.total == 0) continue;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s att=%.4f/%.4f burn=%.2f/%.2f n=%llu%s",
                  SloClassName(static_cast<SloClass>(i)),
                  r.fast.attainment(), r.slow.attainment(), r.fast_burn,
                  r.slow_burn,
                  static_cast<unsigned long long>(r.fast.total),
                  r.fast_ok && r.slow_ok ? "" : " VIOLATED");
    if (!out.empty()) out += "; ";
    out += buf;
  }
  return out.empty() ? "(no traffic)" : out;
}

}  // namespace sse::obs
