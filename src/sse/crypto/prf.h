#ifndef SSE_CRYPTO_PRF_H_
#define SSE_CRYPTO_PRF_H_

#include <cstddef>
#include <string_view>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::crypto {

inline constexpr size_t kPrfOutputSize = 32;

/// The paper's pseudo-random function `f_{k_w}(.)`, instantiated as
/// HMAC-SHA-256. Deterministic: the same (key, input) always yields the
/// same 32-byte output — which is exactly what makes `f_{k_w}(w)` a stable
/// search token the server can index on.
class Prf {
 public:
  /// `key` may be any length >= 16 bytes (HMAC handles arbitrary keys, the
  /// lower bound guards against accidental empty keys).
  static Result<Prf> Create(BytesView key);

  /// 32-byte PRF output for `input`.
  Result<Bytes> Eval(BytesView input) const;
  Result<Bytes> Eval(std::string_view input) const;

  /// Domain-separated evaluation: PRF(key, label || 0x00 || input). Used to
  /// derive independent sub-PRFs (search tokens vs. chain seeds) from one
  /// keyword key.
  Result<Bytes> EvalLabeled(std::string_view label, BytesView input) const;

 private:
  explicit Prf(Bytes key) : key_(std::move(key)) {}
  Bytes key_;
};

/// One-shot HMAC-SHA-256.
Result<Bytes> HmacSha256(BytesView key, BytesView data);

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_PRF_H_
