#ifndef SSE_UTIL_BYTES_H_
#define SSE_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sse/util/result.h"

namespace sse {

/// Owning byte buffer used for keys, ciphertexts, tokens and wire payloads.
using Bytes = std::vector<uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const uint8_t>;

/// Copies a view into an owning buffer.
Bytes ToBytes(BytesView view);

/// Reinterprets a string's contents as bytes (UTF-8 or binary passthrough).
Bytes StringToBytes(std::string_view s);

/// Reinterprets bytes as a std::string container (may contain NUL bytes).
std::string BytesToString(BytesView b);

/// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(BytesView b);

/// Parses lower- or upper-case hex. Fails on odd length or non-hex chars.
Result<Bytes> HexDecode(std::string_view hex);

/// Returns `a || b`.
Bytes Concat(BytesView a, BytesView b);
Bytes Concat(BytesView a, BytesView b, BytesView c);

/// XORs `src` into `dst` in place. Requires equal sizes.
Status XorInPlace(Bytes& dst, BytesView src);

/// Returns `a ^ b`. Requires equal sizes.
Result<Bytes> Xor(BytesView a, BytesView b);

/// Constant-time equality: runtime depends only on the lengths, never on
/// the contents. Unequal lengths compare unequal (in variable time, which
/// is fine because lengths are public in all our protocols).
bool ConstantTimeEqual(BytesView a, BytesView b);

/// Lexicographic three-way compare, for ordering tokens in the B+-tree.
int Compare(BytesView a, BytesView b);

}  // namespace sse

#endif  // SSE_UTIL_BYTES_H_
