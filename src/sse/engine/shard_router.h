#ifndef SSE_ENGINE_SHARD_ROUTER_H_
#define SSE_ENGINE_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>

#include "sse/util/bytes.h"

namespace sse::engine {

/// Maps a search token `f_{k_w}(w)` to the shard that owns its keyword.
///
/// Tokens are PRF outputs, so their leading bytes are uniform by
/// construction — partitioning on a mix of the first 8 bytes gives balanced
/// shards without any coordination or rebalancing. The mix (splitmix64
/// finalizer) only matters for non-PRF callers (tests, ablation tokens);
/// for real tokens any byte would do.
size_t ShardForToken(BytesView token, size_t num_shards);

}  // namespace sse::engine

#endif  // SSE_ENGINE_SHARD_ROUTER_H_
