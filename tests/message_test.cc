#include "sse/net/message.h"

#include <gtest/gtest.h>

#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_messages.h"

namespace sse::net {
namespace {

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message msg{0x0105, Bytes{1, 2, 3, 4}};
  Bytes wire = msg.Encode();
  EXPECT_EQ(wire.size(), msg.WireSize());
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->payload, msg.payload);
}

TEST(MessageTest, EmptyPayload) {
  Message msg{7, {}};
  auto decoded = Message::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(MessageTest, DecodeRejectsLengthMismatch) {
  Message msg{1, Bytes{1, 2, 3}};
  Bytes wire = msg.Encode();
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(Message::Decode(wire).ok());
  wire.pop_back();
  wire.pop_back();  // truncated payload
  EXPECT_FALSE(Message::Decode(wire).ok());
}

TEST(MessageTest, DecodeRejectsTinyInputs) {
  EXPECT_FALSE(Message::Decode(Bytes{}).ok());
  EXPECT_FALSE(Message::Decode(Bytes{1}).ok());
  EXPECT_FALSE(Message::Decode(Bytes{1, 2, 3}).ok());
}

TEST(MessageTest, ErrorMessageRoundTrip) {
  Message err = MakeErrorMessage(Status::NotFound("token missing"));
  EXPECT_EQ(err.type, kMsgError);
  Status s = DecodeErrorMessage(err);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "token missing");
}

TEST(MessageTest, NonErrorDecodesToOk) {
  Message msg{kMsgPutDocument, {}};
  EXPECT_TRUE(DecodeErrorMessage(msg).ok());
}

TEST(MessageTest, SessionStampRoundTrips) {
  Message msg{0x0203, Bytes{9, 8, 7}};
  msg.StampSession(0xabcdef0123456789u, 42);
  Bytes wire = msg.Encode();
  EXPECT_EQ(wire.size(), msg.WireSize());
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_session);
  EXPECT_EQ(decoded->type, 0x0203);  // flag stripped
  EXPECT_EQ(decoded->client_id, 0xabcdef0123456789u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->payload, msg.payload);
}

TEST(MessageTest, UnstampedEncodingIsByteIdenticalToLegacy) {
  // Backward compatibility: a message without a session header must encode
  // exactly as before the header existed (type ‖ u32 len ‖ payload, LE).
  Message msg{0x0105, Bytes{1, 2, 3, 4}};
  const Bytes wire = msg.Encode();
  const Bytes expected = {0x05, 0x01, 0x04, 0x00, 0x00, 0x00, 1, 2, 3, 4};
  EXPECT_EQ(wire, expected);
}

TEST(MessageTest, SessionWireSizeAddsExactlyTheHeader) {
  Message plain{0x0105, Bytes{1, 2, 3, 4}};
  Message stamped = plain;
  stamped.StampSession(1, 2);
  EXPECT_EQ(stamped.WireSize(),
            plain.WireSize() + Message::kSessionHeaderSize);
  EXPECT_EQ(stamped.Encode().size(), stamped.WireSize());
}

TEST(MessageTest, DecodeRejectsCorruptedStampedPayload) {
  Message msg{0x0103, Bytes{1, 2, 3, 4, 5}};
  msg.StampSession(7, 7);
  Bytes wire = msg.Encode();
  wire.back() ^= 0x40;  // flip a payload bit
  auto decoded = Message::Decode(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(MessageTest, CorruptionOfUnstampedPayloadIsUndetectedHere) {
  // Without the session header there is no checksum; garbage reaches the
  // protocol parsers (which reject it at their own layer). Pins why the
  // retry layer always stamps.
  Message msg{0x0103, Bytes{1, 2, 3, 4, 5}};
  Bytes wire = msg.Encode();
  wire.back() ^= 0x40;
  EXPECT_TRUE(Message::Decode(wire).ok());
}

TEST(MessageTest, EchoSessionCopiesStampAndRecomputesCrc) {
  Message request{0x0101, Bytes{1}};
  request.StampSession(11, 22);
  Message reply{0x0102, Bytes{4, 5, 6}};
  reply.EchoSession(request);
  ASSERT_TRUE(reply.has_session);
  EXPECT_EQ(reply.client_id, 11u);
  EXPECT_EQ(reply.seq, 22u);
  // The echoed CRC covers the REPLY payload, so the round trip survives.
  auto decoded = Message::Decode(reply.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, reply.payload);

  Message unstamped{0x0101, Bytes{1}};
  Message reply2{0x0102, Bytes{}};
  reply2.EchoSession(unstamped);
  EXPECT_FALSE(reply2.has_session);
}

TEST(MessageTest, SessionHeaderTruncationRejected) {
  Message msg{0x0103, Bytes{}};
  msg.StampSession(1, 1);
  Bytes wire = msg.Encode();
  // Shrink the body below the header size (and fix the length field).
  wire.resize(2 + 4 + 10);
  wire[2] = 10;
  wire[3] = wire[4] = wire[5] = 0;
  EXPECT_FALSE(Message::Decode(wire).ok());
}

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(MessageTypeName(kMsgError), "Error");
  EXPECT_EQ(MessageTypeName(core::kMsgS1SearchRequest).substr(0, 8),
            "Scheme1.");
  EXPECT_EQ(MessageTypeName(core::kMsgS2UpdateRequest).substr(0, 8),
            "Scheme2.");
  EXPECT_EQ(MessageTypeName(0x0301).substr(0, 9), "Baseline.");
  EXPECT_EQ(MessageTypeName(0x7001).substr(0, 8), "Unknown.");
}

}  // namespace
}  // namespace sse::net
