// Tests for §5.7: what updates leak, and how batching / fake updates damp it.

#include "sse/security/leakage.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::security {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

core::SseSystem TranscribingSystem(SystemKind kind, RandomSource* rng) {
  core::SystemConfig config = FastTestConfig();
  config.channel.record_transcript = true;
  return MakeTestSystem(kind, rng, config);
}

TEST(LeakageTest, UpdateRevealsAggregateKeywordCountOnly) {
  for (SystemKind kind : {SystemKind::kScheme1, SystemKind::kScheme2}) {
    DeterministicRandom rng(1);
    core::SseSystem sys = TranscribingSystem(kind, &rng);
    // Two docs with 2 and 3 distinct keywords, one shared: 4 unique total.
    SSE_ASSERT_OK(sys.client->Store({
        Document::Make(0, "a", {"k1", "shared"}),
        Document::Make(1, "b", {"k2", "k3", "shared"}),
    }));
    LeakageReport report = AnalyzeTranscript(sys.channel->transcript());
    ASSERT_EQ(report.update_keyword_counts.size(), 1u)
        << SystemKindName(kind);
    // The observer sees 4 keyword entries — never which doc has which.
    EXPECT_EQ(report.update_keyword_counts[0], 4u);
  }
}

TEST(LeakageTest, BatchingHidesPerDocumentCounts) {
  // Storing n docs one-by-one leaks n individual counts; one batch leaks a
  // single aggregate — the §5.7 batching argument, measured.
  DeterministicRandom rng(2);
  core::SseSystem one_by_one = TranscribingSystem(SystemKind::kScheme2, &rng);
  for (uint64_t i = 0; i < 5; ++i) {
    SSE_ASSERT_OK(one_by_one.client->Store(
        {Document::Make(i, "d", {"kw" + std::to_string(i), "extra" + std::to_string(i % 2)})}));
  }
  LeakageReport drip = AnalyzeTranscript(one_by_one.channel->transcript());
  EXPECT_EQ(drip.update_keyword_counts.size(), 5u);

  DeterministicRandom rng2(2);
  core::SseSystem batched = TranscribingSystem(SystemKind::kScheme2, &rng2);
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 5; ++i) {
    docs.push_back(Document::Make(
        i, "d", {"kw" + std::to_string(i), "extra" + std::to_string(i % 2)}));
  }
  SSE_ASSERT_OK(batched.client->Store(docs));
  LeakageReport bulk = AnalyzeTranscript(batched.channel->transcript());
  ASSERT_EQ(bulk.update_keyword_counts.size(), 1u);
  EXPECT_EQ(bulk.update_keyword_counts[0], 7u);  // 5 kw + 2 extra
}

TEST(LeakageTest, FakeUpdatesFlattenUpdateSizes) {
  // Padding every update to the same keyword count makes the size sequence
  // constant: zero entropy for the observer.
  DeterministicRandom rng(3);
  core::SseSystem sys = TranscribingSystem(SystemKind::kScheme2, &rng);
  const size_t pad_to = 4;
  for (uint64_t i = 0; i < 6; ++i) {
    // Real updates of varying keyword counts, padded with fake keywords.
    std::vector<std::string> kws;
    for (uint64_t k = 0; k <= i % 3; ++k) {
      kws.push_back("kw" + std::to_string(i) + "_" + std::to_string(k));
    }
    std::vector<std::string> fakes;
    for (size_t f = kws.size(); f < pad_to; ++f) {
      fakes.push_back("pad" + std::to_string(i) + "_" + std::to_string(f));
    }
    std::vector<std::string> all = kws;
    all.insert(all.end(), fakes.begin(), fakes.end());
    // One protocol run covering real + fake keywords: use FakeUpdate for
    // the padding and a real store for the payload would take two runs, so
    // emulate the padded update as a single fake update over `all` — the
    // wire shape is identical.
    SSE_ASSERT_OK(sys.client->FakeUpdate(all));
  }
  LeakageReport report = AnalyzeTranscript(sys.channel->transcript());
  ASSERT_EQ(report.update_keyword_counts.size(), 6u);
  for (uint64_t count : report.update_keyword_counts) {
    EXPECT_EQ(count, pad_to);
  }
  EXPECT_DOUBLE_EQ(report.UpdateSizeEntropy(), 0.0);
}

TEST(LeakageTest, UnpaddedUpdatesLeakSizeVariation) {
  DeterministicRandom rng(4);
  core::SseSystem sys = TranscribingSystem(SystemKind::kScheme2, &rng);
  for (uint64_t i = 0; i < 6; ++i) {
    std::vector<std::string> kws;
    for (uint64_t k = 0; k <= i % 3; ++k) {
      kws.push_back("kw" + std::to_string(i) + "_" + std::to_string(k));
    }
    SSE_ASSERT_OK(sys.client->FakeUpdate(kws));
  }
  LeakageReport report = AnalyzeTranscript(sys.channel->transcript());
  EXPECT_GT(report.UpdateSizeEntropy(), 0.5);  // observable variation
}

TEST(LeakageTest, SearchPatternIsVisible) {
  // Repeating a query repeats its token: the allowed Π leakage, no more.
  DeterministicRandom rng(5);
  core::SseSystem sys = TranscribingSystem(SystemKind::kScheme1, &rng);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"flu", "cold"})}));
  SSE_ASSERT_OK_RESULT(sys.client->Search("flu"));
  SSE_ASSERT_OK_RESULT(sys.client->Search("cold"));
  SSE_ASSERT_OK_RESULT(sys.client->Search("flu"));
  LeakageReport report = AnalyzeTranscript(sys.channel->transcript());
  EXPECT_EQ(report.token_occurrences.size(), 2u);  // two distinct tokens
  EXPECT_EQ(report.repeated_searches(), 1u);
  ASSERT_EQ(report.result_sizes.size(), 3u);
  EXPECT_EQ(report.result_sizes[0], 1u);
}

TEST(LeakageTest, TokensDoNotRevealKeywordLength) {
  // Every token is exactly 32 bytes regardless of the keyword.
  DeterministicRandom rng(6);
  core::SseSystem sys = TranscribingSystem(SystemKind::kScheme1, &rng);
  SSE_ASSERT_OK(sys.client->Store(
      {Document::Make(0, "a", {"x", std::string(500, 'y')})}));
  SSE_ASSERT_OK_RESULT(sys.client->Search("x"));
  SSE_ASSERT_OK_RESULT(sys.client->Search(std::string(500, 'y')));
  LeakageReport report = AnalyzeTranscript(sys.channel->transcript());
  for (const auto& [token_hex, count] : report.token_occurrences) {
    EXPECT_EQ(token_hex.size(), 64u);  // 32 bytes hex-encoded
  }
}

}  // namespace
}  // namespace sse::security
