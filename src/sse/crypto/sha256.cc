#include "sse/crypto/sha256.h"

#include <openssl/evp.h>

namespace sse::crypto {

Result<Bytes> Sha256(BytesView data) {
  Bytes digest(kSha256DigestSize);
  unsigned int len = 0;
  if (EVP_Digest(data.data(), data.size(), digest.data(), &len, EVP_sha256(),
                 nullptr) != 1 ||
      len != kSha256DigestSize) {
    return Status::CryptoError("EVP_Digest(SHA-256) failed");
  }
  return digest;
}

Result<Bytes> Sha256Concat(BytesView a, BytesView b) {
  Sha256Hasher hasher;
  SSE_RETURN_IF_ERROR(hasher.Update(a));
  SSE_RETURN_IF_ERROR(hasher.Update(b));
  return hasher.Finish();
}

Sha256Hasher::Sha256Hasher() : ctx_(EVP_MD_CTX_new()), active_(false) {}

Sha256Hasher::~Sha256Hasher() {
  EVP_MD_CTX_free(static_cast<EVP_MD_CTX*>(ctx_));
}

Status Sha256Hasher::Init() {
  if (ctx_ == nullptr) return Status::CryptoError("EVP_MD_CTX_new failed");
  if (EVP_DigestInit_ex(static_cast<EVP_MD_CTX*>(ctx_), EVP_sha256(),
                        nullptr) != 1) {
    return Status::CryptoError("EVP_DigestInit_ex failed");
  }
  active_ = true;
  return Status::OK();
}

Status Sha256Hasher::Update(BytesView data) {
  if (!active_) SSE_RETURN_IF_ERROR(Init());
  if (EVP_DigestUpdate(static_cast<EVP_MD_CTX*>(ctx_), data.data(),
                       data.size()) != 1) {
    return Status::CryptoError("EVP_DigestUpdate failed");
  }
  return Status::OK();
}

Result<Bytes> Sha256Hasher::Finish() {
  if (!active_) SSE_RETURN_IF_ERROR(Init());
  Bytes digest(kSha256DigestSize);
  unsigned int len = 0;
  if (EVP_DigestFinal_ex(static_cast<EVP_MD_CTX*>(ctx_), digest.data(), &len) !=
          1 ||
      len != kSha256DigestSize) {
    return Status::CryptoError("EVP_DigestFinal_ex failed");
  }
  active_ = false;
  return digest;
}

}  // namespace sse::crypto
