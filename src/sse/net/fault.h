#ifndef SSE_NET_FAULT_H_
#define SSE_NET_FAULT_H_

#include <cstdint>
#include <map>

#include "sse/net/channel.h"

namespace sse::net {

/// Fault-injecting decorator over any Channel, for testing client behavior
/// under transport failures. Two failure points matter and behave
/// differently for the protocols:
///
///  * kRequestLost  — the request never reaches the server (server state
///    unchanged); the client sees an IO error.
///  * kReplyLost    — the server processed the request but the reply was
///    dropped; the client sees the same IO error, yet server-side effects
///    (an applied update!) persist. This is the classic at-most-once vs
///    at-least-once ambiguity clients must tolerate.
class FaultInjectionChannel : public Channel {
 public:
  enum class FaultPoint { kRequestLost, kReplyLost };

  /// `inner` must outlive this wrapper.
  explicit FaultInjectionChannel(Channel* inner) : inner_(inner) {}

  /// Arms a fault for the `call_index`-th Call (0-based, counting every
  /// Call made through this wrapper).
  void FailCall(uint64_t call_index, FaultPoint point) {
    faults_[call_index] = point;
  }

  Result<Message> Call(const Message& request) override {
    const uint64_t index = calls_made_++;
    auto it = faults_.find(index);
    if (it == faults_.end()) return inner_->Call(request);
    const FaultPoint point = it->second;
    ++faults_injected_;
    if (point == FaultPoint::kRequestLost) {
      return Status::IoError("injected fault: request lost");
    }
    // Reply lost: the server still handles the request.
    (void)inner_->Call(request);
    return Status::IoError("injected fault: reply lost");
  }

  const ChannelStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  uint64_t calls_made() const { return calls_made_; }
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  Channel* inner_;
  std::map<uint64_t, FaultPoint> faults_;
  uint64_t calls_made_ = 0;
  uint64_t faults_injected_ = 0;
};

}  // namespace sse::net

#endif  // SSE_NET_FAULT_H_
