#include "sse/repl/node.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "sse/obs/events.h"
#include "sse/obs/stats_rpc.h"
#include "sse/util/bytes.h"
#include "sse/util/logging.h"

namespace sse::repl {

namespace {
constexpr char kMarkerName[] = "repl.role";
constexpr char kMarkerTmpName[] = "repl.role.tmp";
}  // namespace

Result<std::unique_ptr<ReplNode>> ReplNode::Open(const std::string& dir,
                                                 HandlerFactory factory) {
  return Open(dir, std::move(factory), Options());
}

Result<std::unique_ptr<ReplNode>> ReplNode::Open(const std::string& dir,
                                                 HandlerFactory factory,
                                                 Options options) {
  if (!factory) {
    return Status::InvalidArgument("handler factory must be non-empty");
  }
  auto node = std::unique_ptr<ReplNode>(
      new ReplNode(dir, std::move(factory), std::move(options)));
  SSE_RETURN_IF_ERROR(node->LoadRoleMarker());
  std::unique_lock<std::shared_mutex> lock(node->state_mutex_);
  if (node->role_ == Role::kPrimary) {
    SSE_RETURN_IF_ERROR(node->StartPrimaryLocked());
  } else {
    SSE_RETURN_IF_ERROR(node->StartFollowerLocked());
  }
  // Persist the role on first boot too, so a restart keeps it even if the
  // operator's initial_role default changes.
  SSE_RETURN_IF_ERROR(node->PersistRoleLocked());
  lock.unlock();
  return node;
}

ReplNode::~ReplNode() = default;

std::string ReplNode::MarkerPath() const { return dir_ + "/" + kMarkerName; }

Status ReplNode::LoadRoleMarker() {
  storage::Env* env = options_.durable.env;
  role_ = options_.initial_role;
  epoch_ = 1;
  promotions_ = 0;
  if (!env->FileExists(MarkerPath())) return Status::OK();
  Bytes raw;
  SSE_ASSIGN_OR_RETURN(raw, env->ReadFile(MarkerPath()));
  std::istringstream in(BytesToString(raw));
  std::string key, value;
  while (in >> key >> value) {
    if (key == "role") {
      if (value == "primary") {
        role_ = Role::kPrimary;
      } else if (value == "follower") {
        role_ = Role::kFollower;
      } else {
        return Status::Corruption("repl.role: unknown role '" + value + "'");
      }
    } else if (key == "epoch") {
      epoch_ = std::stoull(value);
    } else if (key == "promotions") {
      promotions_ = std::stoull(value);
    }
    // Unknown keys are ignored for forward compatibility.
  }
  return Status::OK();
}

Status ReplNode::PersistRoleLocked() const {
  storage::Env* env = options_.durable.env;
  std::ostringstream out;
  out << "role " << (role_ == Role::kPrimary ? "primary" : "follower") << "\n"
      << "epoch " << epoch_ << "\n"
      << "promotions " << promotions_ << "\n";
  const std::string tmp = dir_ + "/" + kMarkerTmpName;
  std::unique_ptr<storage::WritableFile> file;
  SSE_ASSIGN_OR_RETURN(file, env->NewWritableFile(tmp, /*truncate=*/true));
  SSE_RETURN_IF_ERROR(file->Append(StringToBytes(out.str())));
  SSE_RETURN_IF_ERROR(file->Sync());
  SSE_RETURN_IF_ERROR(file->Close());
  SSE_RETURN_IF_ERROR(env->Rename(tmp, MarkerPath()));
  return env->SyncDir(dir_);
}

Status ReplNode::StartPrimaryLocked() {
  handler_ = factory_();
  core::DurableServer::Options durable_options = options_.durable;
  if (!options_.peers.empty()) {
    sender_ = std::make_unique<ReplSender>(dir_, options_.peers, epoch_,
                                           options_.sender);
    durable_options.shipper = sender_.get();
  } else {
    durable_options.shipper = nullptr;
  }
  Result<std::unique_ptr<core::DurableServer>> opened =
      core::DurableServer::Open(dir_, handler_.get(), durable_options);
  if (!opened.ok()) {
    sender_.reset();
    handler_.reset();
    return opened.status();
  }
  durable_ = std::move(opened).value();
  if (sender_ != nullptr) sender_->Start(durable_->wal_next_seq());
  return Status::OK();
}

Status ReplNode::StartFollowerLocked() {
  ReplReceiver::Options receiver_options;
  receiver_options.env = options_.durable.env;
  receiver_options.wal_segment_bytes = options_.durable.wal_segment_bytes;
  receiver_options.wal_salvage = options_.durable.wal_salvage;
  receiver_options.reply_cache = options_.durable.reply_cache;
  receiver_options.checkpoint_every_records =
      options_.follower_checkpoint_every_records;
  Result<std::unique_ptr<ReplReceiver>> opened =
      ReplReceiver::Open(dir_, factory_, epoch_, receiver_options);
  if (!opened.ok()) return opened.status();
  receiver_ = std::move(opened).value();
  return Status::OK();
}

Result<net::Message> ReplNode::Handle(const net::Message& request) {
  switch (request.type) {
    case net::kMsgReplPromote:
      return HandlePromote(request);
    case net::kMsgStats:
      return HandleStats(request);
    case net::kMsgReplAppend:
    case net::kMsgReplSnapshot: {
      std::shared_lock<std::shared_mutex> lock(state_mutex_);
      if (receiver_ == nullptr) {
        return Status::Unavailable("replication append refused: not a follower");
      }
      Result<net::Message> reply = request.type == net::kMsgReplAppend
                                       ? receiver_->HandleAppend(request)
                                       : receiver_->HandleSnapshot(request);
      const uint64_t adopted = receiver_->epoch();
      const bool bumped = adopted > epoch_;
      lock.unlock();
      if (bumped) {
        // Persist an adopted fencing epoch so a restarted follower keeps
        // rejecting the deposed primary even before new traffic arrives.
        std::unique_lock<std::shared_mutex> exclusive(state_mutex_);
        if (receiver_ != nullptr && receiver_->epoch() > epoch_) {
          epoch_ = receiver_->epoch();
          const Status persisted = PersistRoleLocked();
          if (!persisted.ok()) {
            SSE_LOG(Warning) << "repl: persisting adopted epoch failed: "
                             << persisted.ToString();
          }
        }
      }
      return reply;
    }
    default:
      break;
  }

  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  if (role_ == Role::kPrimary) {
    if (sender_ != nullptr && sender_->fenced() &&
        handler_->IsMutating(request.type)) {
      if (!fenced_event_emitted_.exchange(true, std::memory_order_relaxed)) {
        obs::EventJournal::Global().Emit(
            obs::EventKind::kFenced,
            "deposed primary at epoch " + std::to_string(epoch_) +
                " refusing mutations (fenced by a newer epoch)");
      }
      return Status::Unavailable(
          "not primary: fenced by a newer replication epoch");
    }
    return durable_->Handle(request);
  }
  if (options_.serve_stale_reads && receiver_ != nullptr &&
      !receiver_->IsMutating(request.type)) {
    return receiver_->HandleRead(request);
  }
  return Status::Unavailable(
      "not primary: this node is a replication follower");
}

Result<net::Message> ReplNode::HandlePromote(const net::Message& request) {
  ReplPromote promote;
  SSE_ASSIGN_OR_RETURN(promote, ReplPromote::FromMessage(request));
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (role_ == Role::kPrimary) {
    // Idempotent: promoting a primary re-acks its current position.
    ReplAck ack;
    ack.epoch = epoch_;
    ack.next_seq = durable_ != nullptr ? durable_->wal_next_seq() : 1;
    ack.accepted = true;
    net::Message reply = ack.ToMessage();
    reply.EchoSession(request);
    return reply;
  }
  const uint64_t receiver_epoch = receiver_ != nullptr ? receiver_->epoch() : 0;
  // Dropping the receiver releases its WAL handle; promotion then replays
  // the shipped segments through the ordinary DurableServer recovery.
  receiver_.reset();
  epoch_ = std::max({epoch_, receiver_epoch, promote.min_epoch}) + 1;
  ++promotions_;
  role_ = Role::kPrimary;
  SSE_RETURN_IF_ERROR(StartPrimaryLocked());
  const Status persisted = PersistRoleLocked();
  if (!persisted.ok()) {
    SSE_LOG(Warning) << "repl: persisting promotion failed: "
                     << persisted.ToString();
  }
  SSE_LOG(Info) << "repl: promoted to primary at epoch " << epoch_
                << " (log resumes at " << durable_->wal_next_seq() << ")";
  fenced_event_emitted_.store(false, std::memory_order_relaxed);
  obs::EventJournal::Global().Emit(
      obs::EventKind::kPromotion,
      "follower promoted to primary at epoch " + std::to_string(epoch_) +
          "; log resumes at seq " + std::to_string(durable_->wal_next_seq()));
  ReplAck ack;
  ack.epoch = epoch_;
  ack.next_seq = durable_->wal_next_seq();
  ack.accepted = true;
  net::Message reply = ack.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Result<net::Message> ReplNode::HandleStats(const net::Message& request) {
  net::Message base = obs::HandleStatsRequest(request);
  obs::StatsReply stats;
  SSE_ASSIGN_OR_RETURN(stats, obs::StatsReply::FromMessage(base));
  std::ostringstream extra;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    const bool is_primary =
        role_ == Role::kPrimary && (sender_ == nullptr || !sender_->fenced());
    extra << "sse_repl_is_primary " << (is_primary ? 1 : 0) << "\n"
          << "sse_repl_epoch " << epoch_ << "\n"
          << "sse_repl_promotions_total " << promotions_ << "\n";
    if (role_ == Role::kPrimary && sender_ != nullptr) {
      extra << "sse_repl_log_end_seq " << sender_->log_end() << "\n"
            << "sse_repl_max_acked_seq " << sender_->max_acked_seq() << "\n";
    }
    if (receiver_ != nullptr) {
      extra << "sse_repl_node_next_seq " << receiver_->next_seq() << "\n"
            << "sse_repl_view_ok " << (receiver_->view_ok() ? 1 : 0) << "\n";
    }
  }
  stats.prometheus_text += extra.str();
  net::Message reply = stats.ToMessage();
  reply.EchoSession(request);
  return reply;
}

ReplNode::Role ReplNode::role() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return role_;
}

uint64_t ReplNode::epoch() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return epoch_;
}

uint64_t ReplNode::promotions() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return promotions_;
}

core::DurableServer* ReplNode::durable() {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return durable_.get();
}

const ReplSender* ReplNode::sender() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return sender_.get();
}

const ReplReceiver* ReplNode::receiver() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return receiver_.get();
}

Status ReplNode::Checkpoint() {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  if (role_ == Role::kPrimary) {
    return durable_ != nullptr ? durable_->Checkpoint()
                               : Status::Unavailable("no durable server");
  }
  return receiver_ != nullptr ? receiver_->Checkpoint()
                              : Status::Unavailable("no receiver");
}

}  // namespace sse::repl
