#ifndef SSE_CRYPTO_STREAM_CIPHER_H_
#define SSE_CRYPTO_STREAM_CIPHER_H_

#include <cstddef>

#include "sse/util/bytes.h"
#include "sse/util/random.h"
#include "sse/util/result.h"

namespace sse::crypto {

inline constexpr size_t kStreamIvSize = 16;
inline constexpr size_t kStreamTagSize = 32;
inline constexpr size_t kStreamOverhead = kStreamIvSize + kStreamTagSize;

/// The paper's "secure permutation function E_k" used by Scheme 2 to mask
/// each posting-list segment `E_{k_j}(I_j(w))`.
///
/// Substitution note (see DESIGN.md): a pseudo-random permutation over
/// variable-length strings is impractical; we instantiate E_k as
/// AES-256-CTR + HMAC-SHA-256 encrypt-then-MAC, with the two subkeys
/// derived from `key` via HKDF. This provides IND-CPA confidentiality plus
/// ciphertext integrity, which is what the construction relies on: segments
/// decrypt only under the chain key the client released, and a tampered
/// segment is detected rather than silently yielding garbage identifiers.
///
/// Layout: iv(16) || ct(|pt|) || tag(32), tag = HMAC(mac_key, iv || ct).
class StreamCipher {
 public:
  /// `key` may be any length >= 16; subkeys are derived internally.
  static Result<StreamCipher> Create(BytesView key);

  Result<Bytes> Encrypt(BytesView plaintext, RandomSource& rng) const;
  Result<Bytes> Decrypt(BytesView ciphertext) const;

 private:
  StreamCipher(Bytes enc_key, Bytes mac_key)
      : enc_key_(std::move(enc_key)), mac_key_(std::move(mac_key)) {}
  Bytes enc_key_;
  Bytes mac_key_;
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_STREAM_CIPHER_H_
