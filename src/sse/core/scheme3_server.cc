#include "sse/core/scheme3_server.h"

#include "sse/crypto/hash_chain.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/index/posting.h"
#include "sse/util/serde.h"

namespace sse::core {

Scheme3Server::Scheme3Server(const SchemeOptions& options)
    : options_(options),
      index_(options.use_hash_index, options.btree_order) {}

Result<net::Message> Scheme3Server::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgS3UpdateRequest:
      return HandleUpdate(request);
    case kMsgS3SearchRequest:
      return HandleSearch(request);
    default:
      return Status::ProtocolError("scheme3 server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> Scheme3Server::HandleUpdate(const net::Message& msg) {
  S3UpdateRequest req;
  SSE_ASSIGN_OR_RETURN(req, S3UpdateRequest::FromMessage(msg));
  for (S3UpdateEntry& e : req.entries) {
    Bytes* existing = index_.GetMutable(e.address);
    if (existing == nullptr) {
      index_bytes_ += e.address.size() + e.ciphertext.size();
      index_.Put(e.address, std::move(e.ciphertext));
    } else {
      // A chain key is used for exactly one logical update, so a
      // duplicate address can only be a re-delivered update (e.g. a WAL
      // replay racing a reply-cache miss). Its plaintext is the same
      // delta; overwriting keeps updates idempotent.
      index_bytes_ += e.ciphertext.size();
      index_bytes_ -= existing->size();
      *existing = std::move(e.ciphertext);
    }
  }
  for (const WireDocument& doc : req.documents) {
    SSE_RETURN_IF_ERROR(docs_.Put(doc.id, doc.ciphertext));
  }
  S3UpdateAck ack;
  ack.entries_added = req.entries.size();
  return ack.ToMessage();
}

Result<net::Message> Scheme3Server::HandleSearch(const net::Message& msg)
    const {
  S3SearchRequest req;
  SSE_ASSIGN_OR_RETURN(req, S3SearchRequest::FromMessage(msg));
  if (req.counter > options_.chain_length) {
    return Status::InvalidArgument("trapdoor counter exceeds chain length");
  }

  // Walk toward older keys: position starts at k_c and steps through
  // k_{c-1}, ..., k_1, probing each position's address against the index.
  // Updates made after this trapdoor was released live at addresses of
  // keys the walk can never reach.
  S3SearchResult result;
  index::DocIdList ids;
  Bytes position = req.chain_element;
  for (uint32_t i = req.counter; i >= 1; --i) {
    Bytes address;
    SSE_ASSIGN_OR_RETURN(address, crypto::HashChain::Tag(position));
    const Bytes* segment = index_.Get(address);
    if (segment != nullptr) {
      Result<crypto::StreamCipher> cipher =
          crypto::StreamCipher::Create(position);
      if (!cipher.ok()) return cipher.status();
      Bytes plain;
      SSE_ASSIGN_OR_RETURN(plain, cipher->Decrypt(*segment));
      index::DocIdList delta;
      SSE_ASSIGN_OR_RETURN(delta, index::DecodeIdList(plain));
      ids = index::MergeIdLists(ids, delta);
      ++result.entries_decrypted;
    }
    if (i > 1) {
      SSE_ASSIGN_OR_RETURN(position, crypto::HashChain::Step(position));
      ++result.chain_steps;
    }
  }
  total_chain_steps_.fetch_add(result.chain_steps, std::memory_order_relaxed);
  total_entries_decrypted_.fetch_add(result.entries_decrypted,
                                     std::memory_order_relaxed);

  result.found = result.entries_decrypted > 0;
  result.ids = std::move(ids);
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(result.ids));
  for (const auto& [id, blob] : fetched) {
    result.documents.push_back(WireDocument{id, blob});
  }
  return result.ToMessage();
}

Result<Bytes> Scheme3Server::SerializeState() const {
  BufferWriter w;
  w.PutVarint(index_.size());
  index_.ForEach([&](const Bytes& address, const Bytes& ciphertext) {
    w.PutBytes(address);
    w.PutBytes(ciphertext);
    return true;
  });
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status Scheme3Server::RestoreState(BytesView data) {
  TokenMap<Bytes> index(options_.use_hash_index, options_.btree_order);
  storage::DocumentStore docs;
  uint64_t index_bytes = 0;

  BufferReader r(data);
  uint64_t entry_count = 0;
  SSE_ASSIGN_OR_RETURN(entry_count, r.GetVarint());
  if (entry_count > r.remaining()) {
    return Status::Corruption("entry count exceeds payload");
  }
  for (uint64_t i = 0; i < entry_count; ++i) {
    Bytes address;
    SSE_ASSIGN_OR_RETURN(address, r.GetBytes());
    Bytes ciphertext;
    SSE_ASSIGN_OR_RETURN(ciphertext, r.GetBytes());
    index_bytes += address.size() + ciphertext.size();
    index.Put(address, std::move(ciphertext));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());

  index_ = std::move(index);
  docs_ = std::move(docs);
  index_bytes_ = index_bytes;
  return Status::OK();
}

bool Scheme3Server::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgS3UpdateRequest;
}

Status Scheme3Server::UseLogBackedDocuments(const std::string& path) {
  if (docs_.size() != 0) {
    return Status::FailedPrecondition(
        "cannot switch document backend after documents were stored");
  }
  SSE_ASSIGN_OR_RETURN(docs_, storage::DocumentStore::OpenLogBacked(path));
  return Status::OK();
}

}  // namespace sse::core
