#include "sse/net/tcp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/retry.h"
#include "test_util.h"

namespace sse::net {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TestMasterKey;

class EchoHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    if (request.type == 99) return Status::Internal("boom");
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
};

TEST(TcpTest, RoundTripOverRealSockets) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);

  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  Message request{7, Bytes{1, 2, 3}};
  auto reply = (*channel)->Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, 8);
  EXPECT_EQ(reply->payload, request.payload);
  EXPECT_EQ((*channel)->stats().rounds, 1u);
  EXPECT_EQ((*server)->requests_served(), 1u);
}

TEST(TcpTest, HandlerErrorTravelsAsStatus) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(Message{99, {}});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
}

TEST(TcpTest, LargePayloads) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  DeterministicRandom rng(1);
  Bytes big(1 << 20);
  ASSERT_TRUE(rng.Fill(big).ok());
  auto reply = (*channel)->Call(Message{1, big});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, big);
}

TEST(TcpTest, ConcurrentClients) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  constexpr int kClients = 4;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto channel = TcpChannel::Connect((*server)->port());
      if (!channel.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        Bytes payload{static_cast<uint8_t>(c), static_cast<uint8_t>(i)};
        auto reply = (*channel)->Call(Message{1, payload});
        if (!reply.ok() || reply->payload != payload) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*server)->requests_served(),
            static_cast<uint64_t>(kClients * kCallsEach));
}

TEST(TcpTest, StopUnblocksIdleConnection) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->Call(Message{1, {}}).ok());
  // The connection stays open and idle; Stop must not hang on it.
  (*server)->Stop();
  EXPECT_FALSE((*channel)->Call(Message{1, {}}).ok());
}

TEST(TcpTest, SequentialConnections) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  for (int i = 0; i < 3; ++i) {
    auto channel = TcpChannel::Connect((*server)->port());
    ASSERT_TRUE(channel.ok()) << "connection " << i;
    auto reply = (*channel)->Call(Message{1, Bytes{static_cast<uint8_t>(i)}});
    ASSERT_TRUE(reply.ok());
  }
  EXPECT_EQ((*server)->requests_served(), 3u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab a port, then stop the server: connecting must fail cleanly.
  EchoHandler handler;
  uint16_t port = 0;
  {
    auto server = TcpServer::Start(&handler);
    ASSERT_TRUE(server.ok());
    port = (*server)->port();
  }
  auto channel = TcpChannel::Connect(port);
  EXPECT_FALSE(channel.ok());
}

TEST(TcpTest, StopIsIdempotent) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();
}

class SlowHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    if (slow_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
  std::atomic<bool> slow_{true};
};

TEST(TcpTest, RecvTimeoutSurfacesDeadlineExceeded) {
  SlowHandler handler;
  // Serve connections truly concurrently so the reconnect after the timeout
  // is not stuck behind the still-sleeping first request.
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  TcpChannel::Options opts;
  opts.recv_timeout_ms = 50.0;
  auto channel = TcpChannel::Connect((*server)->port(), "127.0.0.1", opts);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  auto reply = (*channel)->Call(Message{1, Bytes{1}});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(reply.status().IsRetryable());
  // The timed-out connection is torn down: the late reply can never be
  // mistaken for an answer to a later call.
  EXPECT_FALSE((*channel)->connected());

  // With the handler fast again, the next Call transparently redials.
  handler.slow_.store(false);
  auto retry = (*channel)->Call(Message{1, Bytes{2}});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->payload, Bytes{2});
  EXPECT_EQ((*channel)->reconnects(), 1u);
}

TEST(TcpTest, ResetForcesReconnectOnNextCall) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->Call(Message{1, Bytes{1}}).ok());

  (*channel)->Reset();
  EXPECT_FALSE((*channel)->connected());
  auto reply = (*channel)->Call(Message{1, Bytes{2}});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ((*channel)->reconnects(), 1u);
  EXPECT_EQ((*server)->connections_accepted(), 2u);
}

TEST(TcpTest, ReconnectDisabledFailsFastAfterReset) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  TcpChannel::Options opts;
  opts.auto_reconnect = false;
  auto channel = TcpChannel::Connect((*server)->port(), "127.0.0.1", opts);
  ASSERT_TRUE(channel.ok());
  (*channel)->Reset();
  auto reply = (*channel)->Call(Message{1, {}});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(TcpTest, SessionStampSurvivesTheWire) {
  EchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  Message request{7, Bytes{1, 2, 3}};
  request.StampSession(1234, 56);
  auto reply = (*channel)->Call(request);
  // EchoHandler copies type+payload but not the stamp; what matters here
  // is that a stamped request framed over a real socket decodes cleanly.
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, request.payload);
}

/// Echoes type + 1 and the request's session stamp, the way the real
/// server stacks do — which is what pipelined correlation relies on.
class SessionEchoHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    Message reply{static_cast<uint16_t>(request.type + 1), request.payload};
    reply.EchoSession(request);
    return reply;
  }
};

TEST(TcpPipelineTest, SubmitManyAwaitInReverseOrder) {
  SessionEchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  constexpr int kInflight = 8;
  std::vector<Channel::CallId> ids;
  for (int i = 0; i < kInflight; ++i) {
    Message request{7, Bytes{static_cast<uint8_t>(i)}};
    request.StampSession(42, 100 + static_cast<uint64_t>(i));
    ids.push_back((*channel)->Submit(request));
  }
  EXPECT_EQ((*channel)->pending_calls(), static_cast<size_t>(kInflight));
  // All eight frames hit the wire before the first Await.
  EXPECT_EQ((*channel)->stats().frames_sent,
            static_cast<uint64_t>(kInflight));

  // Awaiting in reverse forces the channel to buffer earlier replies and
  // correlate each frame by its (client_id, seq) echo.
  for (int i = kInflight - 1; i >= 0; --i) {
    auto reply = (*channel)->Await(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->payload, Bytes{static_cast<uint8_t>(i)});
    EXPECT_EQ(reply->seq, 100 + static_cast<uint64_t>(i));
  }
  EXPECT_EQ((*channel)->pending_calls(), 0u);
  EXPECT_EQ((*channel)->stats().frames_received,
            static_cast<uint64_t>(kInflight));
}

/// Sleeps on requests whose first payload byte is 1, so a later fast
/// request's reply overtakes it on the wire.
class StallMarkedHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    if (!request.payload.empty() && request.payload[0] == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    Message reply{static_cast<uint16_t>(request.type + 1), request.payload};
    reply.EchoSession(request);
    return reply;
  }
};

TEST(TcpPipelineTest, OutOfOrderRepliesCorrelateBySessionEcho) {
  StallMarkedHandler handler;
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;  // let the fast request overtake
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  Message slow{7, Bytes{1}};
  slow.StampSession(9, 1);
  Message fast{7, Bytes{0}};
  fast.StampSession(9, 2);
  const Channel::CallId slow_id = (*channel)->Submit(slow);
  const Channel::CallId fast_id = (*channel)->Submit(fast);

  // The slow reply is awaited first even though the fast one reaches the
  // socket first: the channel must buffer the overtaking frame for its own
  // call instead of handing it to the wrong one.
  auto slow_reply = (*channel)->Await(slow_id);
  ASSERT_TRUE(slow_reply.ok()) << slow_reply.status().ToString();
  EXPECT_EQ(slow_reply->payload, Bytes{1});
  EXPECT_EQ(slow_reply->seq, 1u);

  auto fast_reply = (*channel)->Await(fast_id);
  ASSERT_TRUE(fast_reply.ok()) << fast_reply.status().ToString();
  EXPECT_EQ(fast_reply->payload, Bytes{0});
  EXPECT_EQ(fast_reply->seq, 2u);
}

TEST(TcpPipelineTest, UnstampedSubmissionsMatchFifo) {
  SessionEchoHandler handler;
  TcpServer::Options server_opts;
  server_opts.pipeline_workers = 1;  // strict reply order for FIFO matching
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  const Channel::CallId a = (*channel)->Submit(Message{7, Bytes{10}});
  const Channel::CallId b = (*channel)->Submit(Message{7, Bytes{11}});
  auto reply_a = (*channel)->Await(a);
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  EXPECT_EQ(reply_a->payload, Bytes{10});
  auto reply_b = (*channel)->Await(b);
  ASSERT_TRUE(reply_b.ok()) << reply_b.status().ToString();
  EXPECT_EQ(reply_b->payload, Bytes{11});
}

TEST(TcpPipelineTest, TransportFailureFailsEveryInflightCall) {
  SlowHandler handler;  // keeps both requests unanswered while we kill it
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  // Hard kill: no graceful drain, so the in-flight replies are dropped
  // rather than flushed (the drain path has its own regression test).
  server_opts.drain_timeout_ms = 0.0;
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  Message first{7, Bytes{1}};
  first.StampSession(5, 1);
  Message second{7, Bytes{2}};
  second.StampSession(5, 2);
  const Channel::CallId id1 = (*channel)->Submit(first);
  const Channel::CallId id2 = (*channel)->Submit(second);
  (*server)->Stop();

  // Frames after the failure point cannot be trusted: both in-flight calls
  // fail rather than hang or read a torn stream.
  EXPECT_FALSE((*channel)->Await(id1).ok());
  EXPECT_FALSE((*channel)->Await(id2).ok());
  EXPECT_EQ((*channel)->pending_calls(), 0u);
  EXPECT_FALSE((*channel)->connected());
}

class DrainProbeHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    arrived_.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
  std::atomic<int> arrived_{0};
};

TEST(TcpPipelineTest, GracefulStopDrainsInflightReplies) {
  DrainProbeHandler handler;
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  auto server = TcpServer::Start(&handler, 0, server_opts);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  std::vector<Channel::CallId> ids;
  for (uint64_t i = 0; i < 4; ++i) {
    Message request{7, Bytes{static_cast<uint8_t>(i)}};
    request.StampSession(9, i + 1);
    ids.push_back((*channel)->Submit(request));
  }
  // Wait until every request has genuinely reached the handler, so Stop()
  // has real work in flight to drain (not just unread socket bytes).
  while (handler.arrived_.load() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*server)->Stop();

  // Graceful shutdown: the in-flight requests completed and their replies
  // were flushed before the sockets closed, so every call still succeeds.
  // (The handler does not echo session stamps, so with concurrent workers
  // the FIFO match may pair replies with other calls — what matters here
  // is that all four replies made it out before the close.)
  std::multiset<uint8_t> got;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto reply = (*channel)->Await(ids[i]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, 8);
    ASSERT_EQ(reply->payload.size(), 1u);
    got.insert(reply->payload[0]);
  }
  EXPECT_EQ(got, (std::multiset<uint8_t>{0, 1, 2, 3}));
  EXPECT_EQ((*server)->requests_served(), 4u);
  EXPECT_EQ((*server)->connections_active(), 0u);
}

TEST(TcpPipelineTest, ResetFailsInflightWithUnavailable) {
  SlowHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  Message request{7, Bytes{1}};
  request.StampSession(5, 1);
  const Channel::CallId id = (*channel)->Submit(request);
  (*channel)->Reset();
  auto reply = (*channel)->Await(id);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(TcpPipelineTest, AwaitRejectsUnknownAndSpentTickets) {
  SessionEchoHandler handler;
  auto server = TcpServer::Start(&handler);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  EXPECT_EQ((*channel)->Await(9999).status().code(),
            StatusCode::kInvalidArgument);
  const Channel::CallId id = (*channel)->Submit(Message{7, Bytes{1}});
  ASSERT_TRUE((*channel)->Await(id).ok());
  // A ticket can be awaited exactly once.
  EXPECT_EQ((*channel)->Await(id).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TcpPipelineTest, BatchedStoreOverTcpCostsFewFrames) {
  // The acceptance shape of the pipelined refactor: a K-keyword Store is
  // two pipelined batch envelopes — nonce round + update round — not 2·K
  // lockstep round trips. Measured in physical frames on a real socket.
  core::SchemeOptions options = FastTestConfig().scheme;
  options.batch_ops = true;
  auto engine = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(options),
      engine::EngineOptions{});
  SSE_ASSERT_OK_RESULT(engine);
  TcpServer::Options server_opts;
  server_opts.serialize_handler = false;  // the engine is thread-safe
  auto server = TcpServer::Start(engine->get(), 0, server_opts);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  DeterministicRandom rng(3);
  RetryOptions retry_opts;
  retry_opts.batch_size = 64;
  retry_opts.max_inflight = 8;
  RetryingChannel retry(channel->get(), retry_opts, &rng);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  std::vector<std::string> keywords;
  for (int i = 0; i < 16; ++i) keywords.push_back("kw" + std::to_string(i));
  SSE_ASSERT_OK(
      (*client)->Store({core::Document::Make(1, "many keywords", keywords)}));
  EXPECT_LE((*channel)->stats().frames_sent, 4u);
  EXPECT_LE((*channel)->stats().frames_received, 4u);

  // And the pipelined MultiSearch answers every keyword correctly.
  auto outcomes = (*client)->MultiSearch(keywords);
  SSE_ASSERT_OK_RESULT(outcomes);
  ASSERT_EQ(outcomes->size(), keywords.size());
  for (const auto& outcome : *outcomes) {
    EXPECT_EQ(outcome.ids, (std::vector<uint64_t>{1}));
  }
}

TEST(TcpTest, FullSchemeOverTcp) {
  // The whole Scheme 2 stack over real sockets.
  const auto config = FastTestConfig();
  core::Scheme2Server scheme_server(config.scheme);
  auto server = TcpServer::Start(&scheme_server);
  ASSERT_TRUE(server.ok());
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());

  DeterministicRandom rng(5);
  auto client = core::Scheme2Client::Create(TestMasterKey(), config.scheme,
                                            channel->get(), &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store({
      core::Document::Make(0, "over the wire", {"tcp", "net"}),
      core::Document::Make(1, "second doc", {"net"}),
  }));
  auto outcome = (*client)->Search("net");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(BytesToString(outcome->documents[0].second), "over the wire");
  EXPECT_EQ((*channel)->stats().rounds, 2u);  // 1 store + 1 search
}

}  // namespace
}  // namespace sse::net
