// Parameterized conformance suite: every searchable-encryption system in
// the descriptor table (the paper schemes, the forward-private dynamic
// Scheme 3, and all three baselines) must satisfy the same functional
// contract. The instantiation iterates AllSystemKinds(), so registering a
// new scheme enrolls it here with no test changes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sse/core/registry.h"
#include "sse/phr/tokenizer.h"
#include "sse/phr/workload.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

class AllSchemesTest : public ::testing::TestWithParam<SystemKind> {
 protected:
  AllSchemesTest()
      : rng_(2024), sys_(MakeTestSystem(GetParam(), &rng_)) {}

  /// Searches and returns just the ids (asserting success).
  std::vector<uint64_t> SearchIds(const std::string& keyword) {
    auto outcome = sys_.client->Search(keyword);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) return {};
    return outcome->ids;
  }

  DeterministicRandom rng_;
  SseSystem sys_;
};

TEST_P(AllSchemesTest, NameMatchesRegistry) {
  EXPECT_EQ(sys_.client->name(), SystemKindName(GetParam()));
}

TEST_P(AllSchemesTest, EmptyDatabaseSearch) {
  EXPECT_TRUE(SearchIds("anything").empty());
}

TEST_P(AllSchemesTest, SingleDocumentRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store(
      {Document::Make(0, "the content", {"alpha", "beta"})}));
  EXPECT_EQ(SearchIds("alpha"), std::vector<uint64_t>{0});
  EXPECT_EQ(SearchIds("beta"), std::vector<uint64_t>{0});
  EXPECT_TRUE(SearchIds("gamma").empty());

  auto outcome = sys_.client->Search("alpha");
  SSE_ASSERT_OK_RESULT(outcome);
  ASSERT_EQ(outcome->documents.size(), 1u);
  EXPECT_EQ(outcome->documents[0].first, 0u);
  EXPECT_EQ(BytesToString(outcome->documents[0].second), "the content");
}

TEST_P(AllSchemesTest, DisjointAndOverlappingPostings) {
  SSE_ASSERT_OK(sys_.client->Store({
      Document::Make(0, "d0", {"x", "shared"}),
      Document::Make(1, "d1", {"y", "shared"}),
      Document::Make(2, "d2", {"x", "y", "shared"}),
  }));
  EXPECT_EQ(SearchIds("x"), (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(SearchIds("y"), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(SearchIds("shared"), (std::vector<uint64_t>{0, 1, 2}));
}

TEST_P(AllSchemesTest, IncrementalStores) {
  for (uint64_t i = 0; i < 8; ++i) {
    SSE_ASSERT_OK(sys_.client->Store(
        {Document::Make(i, "doc" + std::to_string(i), {"all"})}));
  }
  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < 8; ++i) expected.push_back(i);
  EXPECT_EQ(SearchIds("all"), expected);
}

TEST_P(AllSchemesTest, SearchesInterleavedWithStores) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"w"})}));
  EXPECT_EQ(SearchIds("w"), std::vector<uint64_t>{0});
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(1, "b", {"w"})}));
  EXPECT_EQ(SearchIds("w"), (std::vector<uint64_t>{0, 1}));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(2, "c", {"v"})}));
  EXPECT_EQ(SearchIds("w"), (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(SearchIds("v"), std::vector<uint64_t>{2});
}

TEST_P(AllSchemesTest, RepeatSearchesAreStable) {
  SSE_ASSERT_OK(sys_.client->Store(
      {Document::Make(0, "a", {"kw"}), Document::Make(1, "b", {"kw"})}));
  const std::vector<uint64_t> first = SearchIds("kw");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(SearchIds("kw"), first);
}

TEST_P(AllSchemesTest, BinaryContentSurvives) {
  Bytes binary(256);
  for (size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<uint8_t>(i);
  }
  Document doc;
  doc.id = 0;
  doc.content = binary;
  doc.keywords = {"blob"};
  SSE_ASSERT_OK(sys_.client->Store({doc}));
  auto outcome = sys_.client->Search("blob");
  SSE_ASSERT_OK_RESULT(outcome);
  ASSERT_EQ(outcome->documents.size(), 1u);
  EXPECT_EQ(outcome->documents[0].second, binary);
}

TEST_P(AllSchemesTest, UnicodeAndOddKeywords) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(
      0, "x", {"naïve", "köln", "condition:type-2", "a b c", ""})}));
  EXPECT_EQ(SearchIds("naïve"), std::vector<uint64_t>{0});
  EXPECT_EQ(SearchIds("köln"), std::vector<uint64_t>{0});
  EXPECT_EQ(SearchIds("condition:type-2"), std::vector<uint64_t>{0});
  EXPECT_EQ(SearchIds("a b c"), std::vector<uint64_t>{0});
  EXPECT_TRUE(SearchIds("naive").empty());  // exact match semantics
}

TEST_P(AllSchemesTest, RandomizedAgainstPlaintextReference) {
  // Property test: after any interleaving of stores and searches, results
  // must equal a plaintext inverted index's.
  DeterministicRandom op_rng(31337);
  std::map<std::string, std::set<uint64_t>> reference;
  uint64_t next_id = 0;
  const size_t vocabulary = 12;

  for (int step = 0; step < 60; ++step) {
    if (op_rng.Next() % 3 != 0 || next_id == 0) {
      // Store a small batch.
      const size_t batch = 1 + op_rng.Next() % 3;
      std::vector<Document> docs;
      for (size_t b = 0; b < batch; ++b) {
        std::vector<std::string> kws;
        const size_t nkw = 1 + op_rng.Next() % 4;
        for (size_t k = 0; k < nkw; ++k) {
          std::string kw = "v" + std::to_string(op_rng.Next() % vocabulary);
          if (std::find(kws.begin(), kws.end(), kw) == kws.end()) {
            kws.push_back(kw);
          }
        }
        docs.push_back(
            Document::Make(next_id, "content" + std::to_string(next_id), kws));
        for (const auto& kw : kws) reference[kw].insert(next_id);
        ++next_id;
      }
      SSE_ASSERT_OK(sys_.client->Store(docs));
    } else {
      const std::string kw = "v" + std::to_string(op_rng.Next() % vocabulary);
      const auto& expected_set = reference[kw];
      std::vector<uint64_t> expected(expected_set.begin(), expected_set.end());
      EXPECT_EQ(SearchIds(kw), expected) << "keyword " << kw;
    }
  }
  // Final sweep over the whole vocabulary.
  for (size_t v = 0; v < vocabulary; ++v) {
    const std::string kw = "v" + std::to_string(v);
    const auto& expected_set = reference[kw];
    std::vector<uint64_t> expected(expected_set.begin(), expected_set.end());
    EXPECT_EQ(SearchIds(kw), expected) << "keyword " << kw;
  }
}

TEST_P(AllSchemesTest, PhrWorkloadEndToEnd) {
  phr::PhrWorkload::Params params;
  params.num_patients = 10;
  params.visits_per_patient = 2;
  phr::PhrWorkload workload(params);
  SSE_ASSERT_OK(sys_.client->Store(workload.ToDocuments()));

  // Every record must be findable by its patient tag.
  std::map<std::string, std::set<uint64_t>> by_patient;
  const auto& records = workload.records();
  for (size_t i = 0; i < records.size(); ++i) {
    by_patient[records[i].patient_id].insert(i);
  }
  for (const auto& [pid, expected_set] : by_patient) {
    std::vector<uint64_t> expected(expected_set.begin(), expected_set.end());
    EXPECT_EQ(SearchIds(phr::Tag("patient", pid)), expected) << pid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, AllSchemesTest, ::testing::ValuesIn(AllSystemKinds()),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name(SystemKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sse::core
