#ifndef SSE_CORE_SCHEME_DESCRIPTOR_H_
#define SSE_CORE_SCHEME_DESCRIPTOR_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "sse/baselines/goh_zidx.h"
#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/types.h"
#include "sse/crypto/keys.h"
#include "sse/net/channel.h"
#include "sse/net/retry.h"
#include "sse/util/random.h"

namespace sse::engine {
class SchemeAdapter;  // engine/scheme_shard.h; kept opaque at this layer
}

namespace sse::core {

/// Every searchable-encryption system this library implements. The enum is
/// the stable identifier (persisted nowhere, but used in test parameter
/// names and CLI flags); everything else about a scheme — its name, its
/// capabilities, how to build its client/server/engine-adapter — lives in
/// the SchemeDescriptor registered for the kind.
enum class SystemKind : int {
  kScheme1 = 0,   // the paper's computationally efficient scheme (§5.2)
  kScheme2 = 1,   // the paper's communication efficient scheme (§5.5)
  kSwp = 2,       // Song-Wagner-Perrig linear scan baseline
  kGohZidx = 3,   // Goh Z-IDX per-document Bloom filter baseline
  kCgkoSse1 = 4,  // Curtmola et al. SSE-1 inverted index baseline
  kScheme3 = 5,   // forward-private dynamic SSE (Etemad–Küpçü style)
};

std::string_view SystemKindName(SystemKind kind);
Result<SystemKind> SystemKindFromName(std::string_view name);
std::vector<SystemKind> AllSystemKinds();

struct SystemConfig {
  SchemeOptions scheme;
  baselines::GohOptions goh;
  net::InProcessChannel::Options channel;

  /// When > 0, engine-capable schemes (see SchemeTraits) are built as a
  /// sharded engine::ServerEngine with this many shards (thread-safe
  /// Handle, concurrent searches). 0 keeps the classic single-threaded
  /// server. Baselines do not support engine mode.
  size_t engine_shards = 0;
  /// Worker threads for the engine's scatter pool (0 = one per shard).
  size_t engine_workers = 0;

  /// Wrap the client side in a net::RetryingChannel: every call is
  /// session-stamped and transparently retried with backoff under a
  /// deadline. Pair with a server-side reply cache for exactly-once.
  bool with_retry = false;
  net::RetryOptions retry;

  /// At-most-once dedup on engine-backed servers (ignored for the classic
  /// single-threaded servers, which have no reply cache).
  bool engine_reply_cache = true;
};

/// Capabilities a scheme declares so generic call-sites (registry, CLI,
/// parameterized tests, benches) can decide what to exercise without
/// enumerating kinds.
struct SchemeTraits {
  /// Has a sharding adapter: can run behind engine::ServerEngine (and so
  /// behind the full durable/replicated/batched server stack).
  bool engine_capable = false;
  /// Updates after a search are unlinkable to previously released
  /// trapdoors (forward privacy).
  bool forward_private = false;
  /// Clients keep protocol state that must persist across sessions
  /// (SerializeState returns a non-empty, meaningful blob).
  bool stateful_client = false;
};

/// One scheme's registration: identity, capabilities, and the three
/// factories every call-site needs. Adding a scheme means adding one
/// descriptor to the table in scheme_registry.cc — the registry, engine
/// wiring, CLI, benches and parameterized tests all pick it up from there.
struct SchemeDescriptor {
  SystemKind kind{};
  std::string_view name;
  /// One-line human description for CLI listings and status output.
  std::string_view summary;
  SchemeTraits traits;

  /// Classic single-threaded server (applies
  /// SchemeOptions::document_log_path itself when set).
  std::function<Result<std::unique_ptr<PersistableHandler>>(
      const SystemConfig&)>
      make_server;

  /// Sharding adapter for engine mode; null unless traits.engine_capable.
  std::function<std::unique_ptr<engine::SchemeAdapter>(const SystemConfig&)>
      make_adapter;

  std::function<Result<std::unique_ptr<SseClientInterface>>(
      const crypto::MasterKey&, const SystemConfig&, net::Channel*,
      RandomSource*)>
      make_client;
};

/// Descriptor lookup. Pointers are to process-lifetime storage; nullptr
/// when the kind/name is not registered.
const SchemeDescriptor* FindScheme(SystemKind kind);
const SchemeDescriptor* FindScheme(std::string_view name);

/// All registered schemes, in SystemKind order.
const std::vector<SchemeDescriptor>& AllSchemes();

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME_DESCRIPTOR_H_
