// Experiment E-phr — the paper's §6 application profiles, end to end.
//
// Simulates a clinic day for each system: per patient visit, the GP first
// retrieves the patient's history (one search) and afterwards stores a new
// record (one update). Reports application-level throughput, traffic and —
// for Scheme 2 — chain consumption, connecting Table 1's asymptotics to
// the scenario the paper motivates.

#include <cstdio>

#include "bench_common.h"
#include "sse/core/scheme2_client.h"
#include "sse/phr/phr_store.h"

namespace sse::bench {
namespace {

void Run() {
  std::printf(
      "E-phr: clinic-day simulation (Section 6 GP profile): per visit, one\n"
      "patient-history search then one record update. 64 patients x 4\n"
      "visits. Scheme 2's one-round flows and delta updates should win the\n"
      "traffic columns; the O(n) baselines pay in search time as the\n"
      "archive grows. Scheme 2's ms/visit is dominated by the client's\n"
      "Lamport-chain walk (~l-ctr hash steps per touched keyword, l=1024\n"
      "here) — the computation/communication trade Table 1 prices in.\n\n");
  TablePrinter table({"system", "visits", "total_ms", "ms/visit",
                      "rounds/visit", "KB/visit", "chain_spent"});
  table.PrintHeader();
  for (core::SystemKind kind : core::AllSystemKinds()) {
    DeterministicRandom rng(61);
    core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                            /*chain_length=*/1 << 10);
    core::SseSystem sys = MustCreate(kind, config, &rng);
    phr::PhrStore store(sys.client.get());

    phr::PhrWorkload::Params params;
    params.num_patients = 64;
    params.visits_per_patient = 4;
    phr::PhrWorkload workload(params);
    const auto& records = workload.records();

    sys.channel->ResetStats();
    Timer timer;
    size_t visits = 0;
    // Visit order: round-robin over patients, as a day would interleave.
    for (size_t v = 0; v < params.visits_per_patient; ++v) {
      for (size_t p = 0; p < params.num_patients; ++p) {
        const phr::PatientRecord& record =
            records[p * params.visits_per_patient + v];
        // Pre-visit retrieval (empty on the first visit).
        MustValue(store.FindByPatient(record.patient_id), "history");
        // Post-visit update.
        MustOk(store.AddRecord(record), "store visit");
        ++visits;
      }
    }
    const double total_ms = timer.ElapsedMillis();
    const auto& stats = sys.channel->stats();
    std::string chain = "-";
    if (kind == core::SystemKind::kScheme2) {
      chain = FmtU(
          static_cast<core::Scheme2Client*>(sys.client.get())->counter());
    }
    table.PrintRow(
        {std::string(core::SystemKindName(kind)), FmtU(visits),
         Fmt("%.0f", total_ms), Fmt("%.2f", total_ms / visits),
         Fmt("%.1f", static_cast<double>(stats.rounds) / visits),
         Fmt("%.1f", static_cast<double>(stats.TotalBytes()) / visits / 1024.0),
         chain});
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
