#!/usr/bin/env bash
# Refreshes the committed benchmark snapshot (BENCH_search.json).
#
# Builds the benchmarks, runs the Table-1 search profile — including the
# reactor connection-scale sweep (f), which raises RLIMIT_NOFILE itself
# when the environment allows — and leaves the machine-readable result at
# the repo root for trend tracking across PRs.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_search.json}"

echo "==> build benchmarks"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_table1_search

echo "==> run bench_table1_search -> ${OUT}"
./build/bench/bench_table1_search "${OUT}"

echo "==> snapshot:"
cat "${OUT}"
