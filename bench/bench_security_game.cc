// Experiment E-game — Definition 4 as a measurement: the distinguishing
// advantage of a battery of concrete adversaries against the real Scheme 1,
// with a deliberately unmasked strawman as the positive control.

#include <cstdio>

#include "bench_common.h"
#include "sse/security/game.h"

namespace sse::bench {
namespace {

security::History MakeHistory(bool skewed) {
  security::History history;
  constexpr size_t kDocs = 16;
  for (size_t i = 0; i < kDocs; ++i) {
    const std::string content = "record-" + std::string(8, 'x');
    if (!skewed) {
      history.documents.push_back(core::Document::Make(
          i, content,
          {"p" + std::to_string(i / 2),
           "f" + std::to_string(((i + 3) % 16) / 2)}));
    } else {
      std::vector<std::string> kws = {"all"};
      if (i < 15) kws.push_back("s" + std::to_string(i));
      history.documents.push_back(core::Document::Make(i, content, kws));
    }
  }
  return history;
}

void Run() {
  std::printf(
      "E-game: distinguishing experiment (Definition 4). Two equal-trace\n"
      "histories — uniform vs one-hot keyword popularity — and a battery\n"
      "of adversaries. 'real' = Scheme 1; 'strawman' = same shape but the\n"
      "posting bitmaps stored unmasked. A secure scheme keeps every row's\n"
      "'real' column inside noise (~|0.39| at 60 trials); the strawman\n"
      "column shows the same adversaries are not toothless.\n\n");
  const security::History h0 = MakeHistory(false);
  const security::History h1 = MakeHistory(true);
  core::SchemeOptions options;
  options.max_documents = 16;
  options.elgamal_group = crypto::ElGamalGroupId::kToy512;

  TablePrinter table({"adversary", "adv_real", "adv_strawman"});
  table.PrintHeader();
  const int trials = 60;
  for (const security::Distinguisher& adversary :
       security::BuiltinDistinguishers()) {
    DeterministicRandom coin(17);
    DeterministicRandom scheme(18);
    auto real = security::PlayScheme1Game(h0, h1, options, adversary, trials,
                                          coin, scheme);
    DeterministicRandom coin2(19);
    DeterministicRandom scheme2(20);
    auto straw = security::PlayStrawmanGame(h0, h1, options, adversary,
                                            trials, coin2, scheme2);
    MustOk(real.ok() ? Status::OK() : real.status(), "real game");
    MustOk(straw.ok() ? Status::OK() : straw.status(), "strawman game");
    table.PrintRow({adversary.name, Fmt("%+.3f", real->Advantage()),
                    Fmt("%+.3f", straw->Advantage())});
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
