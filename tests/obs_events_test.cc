// Unit tests for the bounded structured event journal: dense sequence
// stamps, oldest-first tails, ring eviction, JSON rendering, and ordering
// under concurrent emitters (the TSan target).

#include "sse/obs/events.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sse {
namespace {

using obs::Event;
using obs::EventJournal;
using obs::EventKind;

TEST(EventJournalTest, SequencesAreDenseAndMonotonic) {
  EventJournal journal(8);
  EXPECT_EQ(journal.Emit(EventKind::kBrownoutEnter, "a"), 1u);
  EXPECT_EQ(journal.Emit(EventKind::kBrownoutExit, "b"), 2u);
  EXPECT_EQ(journal.Emit(EventKind::kPromotion, "c"), 3u);
  EXPECT_EQ(journal.emitted(), 3u);
  const auto tail = journal.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 1u);
  EXPECT_EQ(tail[0].detail, "a");
  EXPECT_EQ(tail[2].seq, 3u);
  EXPECT_EQ(tail[2].kind, EventKind::kPromotion);
}

TEST(EventJournalTest, RingEvictsOldestButKeepsSeqs) {
  EventJournal journal(4);
  for (int i = 1; i <= 10; ++i) {
    journal.Emit(EventKind::kWalCompaction, "e" + std::to_string(i));
  }
  EXPECT_EQ(journal.emitted(), 10u);
  const auto tail = journal.Tail();
  ASSERT_EQ(tail.size(), 4u);
  // Only the newest four survive, oldest first, seqs intact — the gap
  // from seq 1 to 7 is visible to any reader tracking seqs.
  EXPECT_EQ(tail[0].seq, 7u);
  EXPECT_EQ(tail[3].seq, 10u);
  EXPECT_EQ(tail[3].detail, "e10");
}

TEST(EventJournalTest, TailRespectsMaxEvents) {
  EventJournal journal(16);
  for (int i = 0; i < 10; ++i) {
    journal.Emit(EventKind::kBreakerOpen, "x");
  }
  const auto tail = journal.Tail(/*max_events=*/3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 8u);
  EXPECT_EQ(tail[2].seq, 10u);
}

TEST(EventJournalTest, ClearKeepsCounterMonotonic) {
  EventJournal journal(4);
  journal.Emit(EventKind::kFailover, "before");
  journal.Clear();
  EXPECT_TRUE(journal.Tail().empty());
  // History never renumbers: the next event continues the sequence.
  EXPECT_EQ(journal.Emit(EventKind::kFailover, "after"), 2u);
  const auto tail = journal.Tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].detail, "after");
}

TEST(EventJournalTest, ToJsonEscapesDetails) {
  std::vector<Event> events(1);
  events[0].seq = 7;
  events[0].wall_ms = 123;
  events[0].kind = EventKind::kWalSalvage;
  events[0].detail = "quote \" slash \\ newline \n tab \t";
  const std::string json = EventJournal::ToJson(events);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"wal_salvage\""), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  // No raw control characters may survive into the payload.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(EventJournalTest, EmptyJournalRendersEmptyArray) {
  EventJournal journal(4);
  EXPECT_TRUE(journal.Tail().empty());
  EXPECT_EQ(EventJournal::ToJson(journal.Tail()), "[]");
}

TEST(EventJournalTest, ConcurrentEmittersGetUniqueDenseSeqs) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  // Capacity holds everything, so every seq must be present afterwards.
  EventJournal journal(kThreads * kPerThread);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Emit(EventKind::kBrownoutEnter,
                     "t" + std::to_string(t) + "#" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(journal.emitted(), static_cast<uint64_t>(kThreads * kPerThread));
  const auto tail = journal.Tail(kThreads * kPerThread);
  ASSERT_EQ(tail.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<uint64_t> seqs;
  for (size_t i = 0; i < tail.size(); ++i) {
    seqs.insert(tail[i].seq);
    if (i > 0) EXPECT_LT(tail[i - 1].seq, tail[i].seq);  // oldest first
  }
  // Dense: exactly 1..N with no gaps or duplicates.
  EXPECT_EQ(seqs.size(), tail.size());
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(EventJournalTest, ConcurrentEmitAndTailStayConsistent) {
  // A small ring wraps constantly while a reader tails it: every returned
  // slice must be strictly ordered with self-consistent (seq, detail)
  // pairs — the mutex either shows a slot fully updated or not at all.
  EventJournal journal(8);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto tail = journal.Tail();
      for (size_t i = 1; i < tail.size(); ++i) {
        EXPECT_LT(tail[i - 1].seq, tail[i].seq);
      }
      for (const Event& e : tail) {
        // A slot visible in a tail is fully written: kind and detail
        // match what every writer stamps, never a half-updated default.
        EXPECT_EQ(e.kind, EventKind::kBreakerClose);
        EXPECT_EQ(e.detail, "wrap");
      }
    }
  });
  std::vector<std::thread> writers;
  std::atomic<uint64_t> expected{0};
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&journal, &expected] {
      for (int i = 0; i < 2000; ++i) {
        journal.Emit(EventKind::kBreakerClose, "wrap");
        expected.fetch_add(1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(journal.emitted(), expected.load());
}

}  // namespace
}  // namespace sse
