#include "sse/storage/snapshot.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "sse/util/crc32.h"
#include "sse/util/serde.h"

namespace sse::storage {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'E', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr char kGenPrefix[] = "state.snap.";

// Splits "<dir>/<name>" so the parent directory can be fsynced after the
// rename. A bare filename stages and syncs in ".".
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool ParseGenName(const std::string& name, uint64_t* gen) {
  constexpr size_t kPrefixLen = sizeof(kGenPrefix) - 1;
  if (name.size() <= kPrefixLen) return false;
  if (name.compare(0, kPrefixLen, kGenPrefix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = v;
  return true;
}

}  // namespace

Status Snapshot::Write(const std::string& path, BytesView payload, Env* env) {
  BufferWriter w;
  w.PutRaw(BytesView(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic)));
  w.PutU32(kVersion);
  w.PutU64(payload.size());
  w.PutU32(Crc32c(payload));
  w.PutRaw(payload);
  const Bytes& framed = w.data();

  const std::string tmp = path + ".tmp";
  auto file_r = env->NewWritableFile(tmp, true);
  if (!file_r.ok()) return file_r.status();
  std::unique_ptr<WritableFile> file = std::move(file_r).value();
  Status status = file->Append(framed);
  if (status.ok()) status = file->Sync();
  if (status.ok()) status = file->Close();
  if (!status.ok()) {
    (void)env->Remove(tmp);
    return status;
  }
  SSE_RETURN_IF_ERROR(env->Rename(tmp, path));
  // The rename is only durable once the directory entry reaches disk; a
  // crash before this fsync can resurrect the previous snapshot.
  return env->SyncDir(ParentDir(path));
}

Result<Bytes> Snapshot::Read(const std::string& path, Env* env) {
  Bytes raw;
  SSE_ASSIGN_OR_RETURN(raw, env->ReadFile(path));
  // Truncated envelopes — including a zero-byte file left by a torn
  // creation — are corruption, not a reason to misbehave.
  constexpr size_t kEnvelopeMin = sizeof(kMagic) + 4 + 8 + 4;
  if (raw.size() < kEnvelopeMin) {
    return Status::Corruption("snapshot truncated (" +
                              std::to_string(raw.size()) + " bytes): " + path);
  }
  BufferReader r(raw);
  Bytes magic;
  SSE_ASSIGN_OR_RETURN(magic, r.GetRaw(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot magic mismatch");
  }
  uint32_t version = 0;
  SSE_ASSIGN_OR_RETURN(version, r.GetU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  uint64_t length = 0;
  SSE_ASSIGN_OR_RETURN(length, r.GetU64());
  uint32_t crc = 0;
  SSE_ASSIGN_OR_RETURN(crc, r.GetU32());
  if (length != r.remaining()) {
    return Status::Corruption("snapshot payload length mismatch");
  }
  Bytes payload;
  SSE_ASSIGN_OR_RETURN(payload, r.GetRaw(static_cast<size_t>(length)));
  if (Crc32c(payload) != crc) {
    return Status::Corruption("snapshot CRC mismatch");
  }
  return payload;
}

bool Snapshot::Exists(const std::string& path, Env* env) {
  return env->FileExists(path);
}

std::string SnapshotSet::PathFor(uint64_t gen) const {
  return dir_ + "/" + kGenPrefix + std::to_string(gen);
}

Result<std::vector<uint64_t>> SnapshotSet::List() const {
  std::vector<std::string> names;
  SSE_ASSIGN_OR_RETURN(names, env_->ListDir(dir_));
  std::vector<uint64_t> gens;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseGenName(name, &gen)) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Status SnapshotSet::WriteNext(BytesView payload) {
  std::vector<uint64_t> gens;
  SSE_ASSIGN_OR_RETURN(gens, List());
  const uint64_t next = gens.empty() ? 1 : gens.back() + 1;
  SSE_RETURN_IF_ERROR(Snapshot::Write(PathFor(next), payload, env_));
  // Prune only after the new generation is durable. A failed prune is not
  // a durability problem — at worst an extra generation lingers.
  while (gens.size() + 1 > static_cast<size_t>(kKeepGenerations)) {
    SSE_RETURN_IF_ERROR(env_->Remove(PathFor(gens.front())));
    gens.erase(gens.begin());
  }
  return env_->SyncDir(dir_);
}

Result<Bytes> SnapshotSet::ReadNewestValid(uint64_t* gen) const {
  std::vector<uint64_t> gens;
  SSE_ASSIGN_OR_RETURN(gens, List());
  if (gens.empty()) return Status::NotFound("no snapshot in " + dir_);
  Status last_error = Status::OK();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    auto read = Snapshot::Read(PathFor(*it), env_);
    if (read.ok()) {
      if (gen != nullptr) *gen = *it;
      return read;
    }
    last_error = read.status();
  }
  return Status::Corruption("no snapshot generation verifies in " + dir_ +
                            " (last error: " + last_error.ToString() + ")");
}

}  // namespace sse::storage
