#include "sse/baselines/goh_zidx.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::baselines {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

class GohTest : public ::testing::Test {
 protected:
  GohTest() : rng_(66), sys_(MakeTestSystem(SystemKind::kGohZidx, &rng_)) {}
  GohServer* server() { return static_cast<GohServer*>(sys_.server.get()); }

  DeterministicRandom rng_;
  core::SseSystem sys_;
};

TEST_F(GohTest, EverySearchProbesAllFilters) {
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 25; ++i) {
    docs.push_back(Document::Make(i, "d", {"kw" + std::to_string(i % 5)}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  const uint64_t before = server()->filters_probed();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw0"));
  EXPECT_EQ(server()->filters_probed() - before, 25u);  // O(n) scan
}

TEST_F(GohTest, TrapdoorSubkeysAreKeywordSpecific) {
  auto* client = static_cast<GohClient*>(sys_.client.get());
  auto t1 = client->MakeTrapdoor("alpha");
  auto t2 = client->MakeTrapdoor("alpha");
  auto t3 = client->MakeTrapdoor("beta");
  SSE_ASSERT_OK_RESULT(t1);
  SSE_ASSERT_OK_RESULT(t2);
  SSE_ASSERT_OK_RESULT(t3);
  EXPECT_EQ(*t1, *t2);
  EXPECT_NE(*t1, *t3);
  EXPECT_EQ(t1->size(), FastTestConfig().goh.num_keys);
}

TEST_F(GohTest, FalsePositiveRateBounded) {
  // Fill filters close to design load, then measure false positives over
  // many non-member keywords: the scheme's inherent inaccuracy must stay
  // small at these parameters.
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 40; ++i) {
    std::vector<std::string> kws;
    for (int k = 0; k < 10; ++k) {
      kws.push_back("doc" + std::to_string(i) + "kw" + std::to_string(k));
    }
    docs.push_back(Document::Make(i, "d", kws));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  uint64_t false_hits = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    auto outcome = sys_.client->Search("absent" + std::to_string(i));
    SSE_ASSERT_OK_RESULT(outcome);
    false_hits += outcome->ids.size();
  }
  // 80 inserted bits in 2048 -> per-filter fp ~ (0.038)^8 ~ 4e-12.
  EXPECT_EQ(false_hits, 0u);
}

TEST_F(GohTest, WrongTrapdoorSizeRejected) {
  BufferWriter w;
  core::PutBytesList(w, {Bytes(32, 1)});  // only 1 subkey, server expects 8
  auto reply = sys_.channel->Call(net::Message{kMsgGohSearch, w.TakeData()});
  EXPECT_FALSE(reply.ok());
}

TEST_F(GohTest, FilterSizeValidatedOnStore) {
  BufferWriter w;
  w.PutVarint(1);
  w.PutVarint(0);          // id
  w.PutBytes(Bytes{1});    // ciphertext
  w.PutBytes(Bytes(10, 0));  // wrong filter size (needs 2048 bits = 256B)
  auto reply = sys_.channel->Call(net::Message{kMsgGohStore, w.TakeData()});
  EXPECT_FALSE(reply.ok());
}

TEST_F(GohTest, StateSerializationRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"x"})}));
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);
  GohServer restored(FastTestConfig().goh);
  SSE_ASSERT_OK(restored.RestoreState(*state));
  EXPECT_EQ(restored.document_count(), 1u);
}

TEST_F(GohTest, InvalidParametersRejected) {
  DeterministicRandom rng(1);
  net::InProcessChannel channel(nullptr);
  GohOptions bad;
  bad.num_keys = 0;
  EXPECT_FALSE(GohClient::Create(sse::testing::TestMasterKey(), bad, &channel,
                                 &rng)
                   .ok());
}

}  // namespace
}  // namespace sse::baselines
