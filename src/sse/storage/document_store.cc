#include "sse/storage/document_store.h"

namespace sse::storage {

namespace {

Bytes IdKey(uint64_t id) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(id >> (8 * i));
  return out;
}

uint64_t KeyId(BytesView key) {
  uint64_t id = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(key.size()); ++i) {
    id |= static_cast<uint64_t>(key[i]) << (8 * i);
  }
  return id;
}

}  // namespace

Result<DocumentStore> DocumentStore::OpenLogBacked(const std::string& path) {
  DocumentStore store;
  SSE_ASSIGN_OR_RETURN(store.log_, LogStore::Open(path));
  // Build the id/size index from the live log contents.
  SSE_RETURN_IF_ERROR(store.log_->ForEach([&](BytesView key, BytesView value) {
    store.log_sizes_[KeyId(key)] = value.size();
    store.total_bytes_ += value.size();
    return Status::OK();
  }));
  return store;
}

Status DocumentStore::Put(uint64_t id, Bytes ciphertext) {
  if (log_ != nullptr) {
    SSE_RETURN_IF_ERROR(log_->Put(IdKey(id), ciphertext));
    auto it = log_sizes_.find(id);
    if (it != log_sizes_.end()) total_bytes_ -= it->second;
    log_sizes_[id] = ciphertext.size();
    total_bytes_ += ciphertext.size();
    return Status::OK();
  }
  auto it = docs_.find(id);
  if (it != docs_.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(ciphertext);
    total_bytes_ += it->second.size();
    return Status::OK();
  }
  total_bytes_ += ciphertext.size();
  docs_.emplace(id, std::move(ciphertext));
  return Status::OK();
}

Result<Bytes> DocumentStore::Get(uint64_t id) const {
  if (log_ != nullptr) {
    if (log_sizes_.count(id) == 0) {
      return Status::NotFound("document id " + std::to_string(id));
    }
    return log_->Get(IdKey(id));
  }
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("document id " + std::to_string(id));
  }
  return it->second;
}

bool DocumentStore::Contains(uint64_t id) const {
  if (log_ != nullptr) return log_sizes_.count(id) > 0;
  return docs_.count(id) > 0;
}

Result<bool> DocumentStore::Erase(uint64_t id) {
  if (log_ != nullptr) {
    auto it = log_sizes_.find(id);
    if (it == log_sizes_.end()) return false;
    bool deleted = false;
    SSE_ASSIGN_OR_RETURN(deleted, log_->Delete(IdKey(id)));
    total_bytes_ -= it->second;
    log_sizes_.erase(it);
    return deleted;
  }
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  total_bytes_ -= it->second.size();
  docs_.erase(it);
  return true;
}

Result<std::vector<std::pair<uint64_t, Bytes>>> DocumentStore::GetMany(
    const std::vector<uint64_t>& ids) const {
  std::vector<std::pair<uint64_t, Bytes>> out;
  out.reserve(ids.size());
  for (uint64_t id : ids) {
    if (!Contains(id)) continue;
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, Get(id));
    out.emplace_back(id, std::move(blob));
  }
  return out;
}

size_t DocumentStore::size() const {
  return log_ != nullptr ? log_sizes_.size() : docs_.size();
}

Status DocumentStore::ForEach(
    const std::function<bool(uint64_t, const Bytes&)>& fn) const {
  if (log_ != nullptr) {
    for (const auto& [id, unused_size] : log_sizes_) {
      Bytes blob;
      SSE_ASSIGN_OR_RETURN(blob, log_->Get(IdKey(id)));
      if (!fn(id, blob)) return Status::OK();
    }
    return Status::OK();
  }
  for (const auto& [id, blob] : docs_) {
    if (!fn(id, blob)) return Status::OK();
  }
  return Status::OK();
}

Status DocumentStore::Clear() {
  if (log_ != nullptr) {
    for (const auto& [id, unused_size] : log_sizes_) {
      SSE_RETURN_IF_ERROR(log_->Delete(IdKey(id)).status());
    }
    log_sizes_.clear();
    total_bytes_ = 0;
    return Status::OK();
  }
  docs_.clear();
  total_bytes_ = 0;
  return Status::OK();
}

Status DocumentStore::Compact() {
  if (log_ != nullptr) return log_->Compact();
  return Status::OK();
}

}  // namespace sse::storage
