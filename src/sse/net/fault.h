#ifndef SSE_NET_FAULT_H_
#define SSE_NET_FAULT_H_

#include <cstdint>
#include <deque>
#include <map>

#include "sse/net/channel.h"

namespace sse::net {

/// Deterministic fault-injecting decorator over any Channel, for testing
/// client behavior under transport failures at exact call indices (the
/// probabilistic counterpart is ChaosChannel). Three failure points matter
/// and behave differently for the protocols:
///
///  * kRequestLost     — the request never reaches the server (server state
///    unchanged); the client sees an IO error.
///  * kReplyLost       — the server processed the request but the reply was
///    dropped; the client sees the same IO error, yet server-side effects
///    (an applied update!) persist. This is the classic at-most-once vs
///    at-least-once ambiguity clients must tolerate.
///  * kReplyDuplicated — the reply arrives AND a copy of it stays buffered
///    in the stream, so every subsequent Call is answered with the buffered
///    stale reply while its own fresh reply queues behind (a pipelined
///    stream knocked off by one). Only Reset() — a reconnect — clears the
///    backlog. Exercises stale-reply detection in the retry layer.
class FaultInjectionChannel : public Channel {
 public:
  enum class FaultPoint { kRequestLost, kReplyLost, kReplyDuplicated };

  /// `inner` must outlive this wrapper.
  explicit FaultInjectionChannel(Channel* inner) : inner_(inner) {}

  /// Arms a fault for the `call_index`-th Call (0-based, counting every
  /// Call made through this wrapper).
  void FailCall(uint64_t call_index, FaultPoint point) {
    faults_[call_index] = point;
  }

  Result<Message> Call(const Message& request) override {
    const uint64_t index = calls_made_++;
    stats_.rounds += 1;
    stats_.calls_by_type[request.type] += 1;
    stats_.bytes_sent += request.WireSize();

    auto it = faults_.find(index);
    const bool armed = it != faults_.end();
    if (armed && it->second == FaultPoint::kRequestLost) {
      ++faults_injected_;
      stats_.injected_faults += 1;
      return Status::IoError("injected fault: request lost");
    }

    Result<Message> fresh = inner_->Call(request);
    if (!fresh.ok()) return fresh.status();
    stats_.bytes_received += fresh->WireSize();

    if (armed && it->second == FaultPoint::kReplyLost) {
      ++faults_injected_;
      stats_.injected_faults += 1;
      return Status::IoError("injected fault: reply lost");
    }
    if (armed && it->second == FaultPoint::kReplyDuplicated) {
      ++faults_injected_;
      stats_.injected_faults += 1;
      stale_replies_.push_back(*fresh);
    }
    if (!stale_replies_.empty()) {
      Message stale = std::move(stale_replies_.front());
      stale_replies_.pop_front();
      stale_replies_.push_back(std::move(fresh).value());
      return stale;
    }
    return fresh;
  }

  /// Drops the buffered stale replies, like the reconnect it models.
  void Reset() override {
    stale_replies_.clear();
    inner_->Reset();
  }

  void SetIoDeadlineMs(double ms) override { inner_->SetIoDeadlineMs(ms); }

  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Clear();
    inner_->ResetStats();
  }

  uint64_t calls_made() const { return calls_made_; }
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  Channel* inner_;
  std::map<uint64_t, FaultPoint> faults_;
  std::deque<Message> stale_replies_;
  ChannelStats stats_;
  uint64_t calls_made_ = 0;
  uint64_t faults_injected_ = 0;
};

}  // namespace sse::net

#endif  // SSE_NET_FAULT_H_
