#!/usr/bin/env bash
# Rebuilds the project, runs the full test suite, then every benchmark, and
# records the transcripts the repository documents reference:
#   test_output.txt   — ctest transcript
#   bench_output.txt  — every experiment's output, in order
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "=== $(basename "$b") ===" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: test_output.txt, bench_output.txt"
