file(REMOVE_RECURSE
  "CMakeFiles/aead_test.dir/aead_test.cc.o"
  "CMakeFiles/aead_test.dir/aead_test.cc.o.d"
  "aead_test"
  "aead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
