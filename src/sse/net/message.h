#ifndef SSE_NET_MESSAGE_H_
#define SSE_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::net {

/// Wire message: a 16-bit type tag plus an opaque payload. Each scheme
/// defines its own type constants (see sse/core/*_messages.h); the channel
/// layer only needs the envelope to frame, count and transcribe traffic.
struct Message {
  uint16_t type = 0;
  Bytes payload;

  /// Envelope size on the wire: type(2) ‖ u32 length ‖ payload.
  size_t WireSize() const { return 2 + 4 + payload.size(); }

  /// Serializes to the framed wire form.
  Bytes Encode() const;

  /// Parses a framed message; rejects trailing bytes.
  static Result<Message> Decode(BytesView data);
};

/// Message type ranges. Keeping ranges disjoint per scheme makes
/// transcripts self-describing.
inline constexpr uint16_t kMsgRangeCommon = 0x0000;
inline constexpr uint16_t kMsgRangeScheme1 = 0x0100;
inline constexpr uint16_t kMsgRangeScheme2 = 0x0200;
inline constexpr uint16_t kMsgRangeBaseline = 0x0300;

/// Common messages.
inline constexpr uint16_t kMsgError = kMsgRangeCommon + 1;
inline constexpr uint16_t kMsgPutDocument = kMsgRangeCommon + 2;
inline constexpr uint16_t kMsgPutDocumentAck = kMsgRangeCommon + 3;
inline constexpr uint16_t kMsgFetchDocuments = kMsgRangeCommon + 4;
inline constexpr uint16_t kMsgFetchDocumentsResult = kMsgRangeCommon + 5;

/// Human-readable name for a message type (for transcripts and benches).
std::string MessageTypeName(uint16_t type);

/// Builds the standard error reply carrying a status.
Message MakeErrorMessage(const Status& status);

/// If `msg` is an error reply, decodes it into a Status (always non-OK);
/// otherwise returns OK.
Status DecodeErrorMessage(const Message& msg);

}  // namespace sse::net

#endif  // SSE_NET_MESSAGE_H_
