#ifndef SSE_STORAGE_WAL_H_
#define SSE_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sse/storage/env.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Tuning and behaviour knobs for the write-ahead log.
struct WalOptions {
  /// Filesystem to operate on; tests substitute a FaultyEnv.
  Env* env = Env::Default();
  /// Rotate to a new segment once the current one reaches this size.
  uint64_t segment_bytes = 8ull << 20;
  /// When true, Replay quarantines corrupt mid-segment record ranges into
  /// `<segment>.quarantine` and keeps every intact record after the damage
  /// instead of aborting with CORRUPTION (the strict default).
  bool salvage = false;
};

/// What Replay saw. `lowest_seq` lets a caller decide whether WAL-only
/// recovery covers history from the beginning (lowest_seq == 1) or whether
/// a snapshot below `lowest_seq` is required.
struct WalReplayReport {
  uint64_t records = 0;             // records delivered to the callback
  uint64_t segments = 0;            // segment files scanned
  uint64_t torn_bytes = 0;          // trailing bytes dropped as torn writes
  uint64_t quarantined_records = 0; // records lost to salvaged corruption
  uint64_t quarantined_bytes = 0;   // bytes copied into *.quarantine files
  uint64_t lowest_seq = 0;          // first seq of oldest segment (0 = empty)
  uint64_t next_seq = 1;            // seq the next append will receive
};

/// Segmented, sequence-stamped append-only write-ahead log.
///
/// The SSE server journals every mutation before applying it, so a crash
/// between a client update and the next snapshot cannot lose acknowledged
/// writes. The log lives in a directory as numbered segment files
/// `wal.<number>.log`, each starting with a 16-byte header
/// (magic "SSEWALS1" ‖ u64 first record sequence) followed by records
/// framed as: u32 payload length ‖ u32 CRC-32C(seq ‖ payload) ‖ u64 seq ‖
/// payload, all little-endian. Sequence numbers are global, monotonic,
/// start at 1 and are never reused — a failed append does not consume its
/// sequence, and each segment header pins the sequence its records start
/// at, so replay can prove continuity across segment boundaries and tell a
/// benign torn tail (unsynced, therefore unacknowledged, bytes dropped by
/// a crash) from real corruption of acknowledged records.
///
/// Failure model: any append, sync, rotation or reset failure poisons the
/// log object — every later mutation attempt returns the original cause.
/// In particular a failed fsync is never retried (the kernel may have
/// discarded the dirty pages while reporting the error only once —
/// fsyncgate), so the owning server must fail-stop to read-only and let
/// recovery re-establish a consistent image from disk.
class WriteAheadLog {
 public:
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&&) noexcept = default;
  WriteAheadLog& operator=(WriteAheadLog&&) noexcept = default;
  ~WriteAheadLog() = default;

  /// Opens the log in directory `dir` (which must exist), creating the
  /// first segment if the log is empty. A last segment with a torn or
  /// invalid header is deleted (it cannot contain acknowledged records); a
  /// last segment with a torn tail is sealed and appends continue in a
  /// fresh segment, so torn bytes are never buried under new records.
  static Result<WriteAheadLog> Open(const std::string& dir,
                                    WalOptions options = {});

  /// Appends one record, stamping it with the next sequence number. The
  /// payload may be empty. On failure the log is poisoned (fail-stop).
  Status Append(BytesView payload);

  /// Fsyncs the current segment. On failure the log is poisoned.
  Status Sync();

  /// Seals the current segment and starts a new one. Called automatically
  /// by Append when the segment exceeds `segment_bytes`.
  Status Rotate();

  /// Deletes every segment whose records all have sequence < `seq` (never
  /// the segment currently open for appends). Called after a checkpoint;
  /// keeping `seq` at the previous retained snapshot's cut keeps enough
  /// history to recover from the older snapshot generation as well.
  Status CompactBefore(uint64_t seq);

  /// Deletes all segments and starts a fresh one. Sequence numbers are NOT
  /// reset — they stay unique across the log's whole lifetime.
  Status Reset();

  /// Reset(), but first advances the sequence counter to at least
  /// `next_seq` so the fresh segment's header pins that sequence. Used by a
  /// replication follower installing a shipped snapshot whose WAL cut is
  /// ahead of everything it has locally: its log resumes exactly at the
  /// cut, with no discontinuity for recovery to reject. Sequences never
  /// move backwards — a `next_seq` at or below the current counter is a
  /// plain Reset().
  Status ResetAt(uint64_t next_seq);

  /// Replays every intact record with seq >= `min_seq`, oldest first, as
  /// fn(seq, payload). Strict mode fails with CORRUPTION on any damage to
  /// non-tail bytes; salvage mode quarantines the damaged range and
  /// continues with the next provably-intact record (see WalOptions).
  static Status Replay(const std::string& dir, const WalOptions& options,
                       uint64_t min_seq,
                       const std::function<Status(uint64_t, BytesView)>& fn,
                       WalReplayReport* report = nullptr);

  /// Sequence number the next successful Append will use.
  uint64_t next_seq() const { return next_seq_; }

  /// Records appended through this object since Open (diagnostic).
  uint64_t appended_records() const { return appended_records_; }

  bool poisoned() const { return !poison_.ok(); }
  const Status& poison_cause() const { return poison_; }

  const std::string& dir() const { return dir_; }

 private:
  struct SegmentInfo {
    uint64_t number = 0;
    uint64_t first_seq = 0;
  };

  WriteAheadLog(std::string dir, WalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  std::string SegmentPath(uint64_t number) const;
  Status CreateSegment(uint64_t number, uint64_t first_seq);
  Status Poison(Status cause);

  std::string dir_;
  WalOptions options_;
  std::vector<SegmentInfo> segments_;  // oldest first; back() is live
  std::unique_ptr<WritableFile> file_; // live segment
  uint64_t next_seq_ = 1;
  uint64_t appended_records_ = 0;
  Status poison_ = Status::OK();
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_WAL_H_
