#include "sse/crypto/hkdf.h"

#include <gtest/gtest.h>

namespace sse::crypto {
namespace {

TEST(HkdfTest, Rfc5869TestCase1) {
  // RFC 5869 A.1.
  Bytes ikm(22, 0x0b);
  Bytes salt = *HexDecode("000102030405060708090a0b0c");
  // info = 0xf0f1...f9
  std::string info;
  for (int i = 0; i < 10; ++i) info.push_back(static_cast<char>(0xf0 + i));
  auto okm = HkdfSha256(ikm, salt, info, 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(HexEncode(*okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, EmptySaltUsesZeroBlock) {
  // RFC 5869 A.3 (salt and info empty).
  Bytes ikm(22, 0x0b);
  auto okm = HkdfSha256(ikm, /*salt=*/{}, "", 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(HexEncode(*okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, DifferentInfoDifferentKeys) {
  Bytes ikm(32, 7);
  auto a = HkdfSha256(ikm, {}, "purpose-a", 32);
  auto b = HkdfSha256(ikm, {}, "purpose-b", 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(HkdfTest, LongOutputHasNoRepeatingBlocks) {
  Bytes ikm(32, 9);
  auto okm = HkdfSha256(ikm, {}, "stretch", 256);
  ASSERT_TRUE(okm.ok());
  ASSERT_EQ(okm->size(), 256u);
  // Consecutive 32-byte blocks must differ.
  for (size_t i = 0; i + 64 <= okm->size(); i += 32) {
    Bytes b1(okm->begin() + i, okm->begin() + i + 32);
    Bytes b2(okm->begin() + i + 32, okm->begin() + i + 64);
    EXPECT_NE(b1, b2);
  }
}

TEST(HkdfTest, RejectsInvalidLengths) {
  Bytes ikm(32, 1);
  EXPECT_FALSE(HkdfSha256(ikm, {}, "x", 0).ok());
  EXPECT_FALSE(HkdfSha256(ikm, {}, "x", 255 * 32 + 1).ok());
  EXPECT_TRUE(HkdfSha256(ikm, {}, "x", 255 * 32).ok());
}

}  // namespace
}  // namespace sse::crypto
