#include "sse/core/reply_cache.h"

#include <utility>

#include "sse/util/serde.h"

namespace sse::core {

namespace {
/// Snapshot section magic, "RPLC".
constexpr uint32_t kReplyCacheMagic = 0x52504c43;
}  // namespace

ReplyCache::Outcome ReplyCache::Begin(uint64_t client, uint64_t seq,
                                      net::Message* cached_reply) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientState& state = clients_[client];
  state.last_used = ++tick_;

  auto it = state.replies.find(seq);
  if (it != state.replies.end()) {
    if (cached_reply != nullptr) {
      Result<net::Message> decoded = net::Message::Decode(it->second);
      // The cache only ever stores bytes produced by Message::Encode, so a
      // decode failure would mean in-memory corruption; treat the entry as
      // absent and let the handler re-answer a (non-mutating) request or
      // refuse it below.
      if (decoded.ok()) {
        *cached_reply = std::move(decoded).value();
        hits_ += 1;
        EvictClientsLocked();
        return Outcome::kCached;
      }
      state.replies.erase(it);
    } else {
      hits_ += 1;
      EvictClientsLocked();
      return Outcome::kCached;
    }
  }

  if (state.in_flight.count(seq) != 0) {
    refusals_ += 1;
    EvictClientsLocked();
    return Outcome::kInFlight;
  }
  if (seq < state.low_water) {
    // The reply for this seq has been evicted; executing again could be a
    // second application of a non-idempotent update. Refuse.
    refusals_ += 1;
    EvictClientsLocked();
    return Outcome::kTooOld;
  }

  state.in_flight.insert(seq);
  if (seq >= state.max_seen) state.max_seen = seq;
  EvictClientsLocked();
  return Outcome::kNew;
}

void ReplyCache::Commit(uint64_t client, uint64_t seq,
                        const net::Message& reply) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientState& state = clients_[client];
  state.last_used = ++tick_;
  state.in_flight.erase(seq);
  state.replies[seq] = reply.Encode();
  if (seq >= state.max_seen) state.max_seen = seq;
  while (state.replies.size() > options_.per_client_entries) {
    auto oldest = state.replies.begin();
    const uint64_t evicted = oldest->first;
    state.replies.erase(oldest);
    if (evicted >= state.low_water) state.low_water = evicted + 1;
  }
  EvictClientsLocked();
}

void ReplyCache::Abort(uint64_t client, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  it->second.in_flight.erase(seq);
}

Status ReplyCache::RefusalStatus(Outcome outcome) {
  switch (outcome) {
    case Outcome::kInFlight:
      return Status::Unavailable(
          "duplicate call still executing; retry shortly");
    case Outcome::kTooOld:
      return Status::FailedPrecondition(
          "retry of a call older than the dedup window; refusing to risk "
          "re-execution");
    default:
      return Status::OK();
  }
}

void ReplyCache::EvictClientsLocked() {
  while (clients_.size() > options_.max_clients) {
    auto victim = clients_.end();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
      // Never evict a client with a call mid-execution.
      if (!it->second.in_flight.empty()) continue;
      if (victim == clients_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == clients_.end()) return;  // everything in flight
    clients_.erase(victim);
  }
}

Bytes ReplyCache::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BufferWriter w;
  w.PutU32(kReplyCacheMagic);
  w.PutVarint(clients_.size());
  for (const auto& [client, state] : clients_) {
    w.PutU64(client);
    w.PutU64(state.max_seen);
    w.PutU64(state.low_water);
    w.PutVarint(state.replies.size());
    for (const auto& [seq, bytes] : state.replies) {
      w.PutU64(seq);
      w.PutBytes(bytes);
    }
  }
  return w.TakeData();
}

Status ReplyCache::Restore(BytesView data) {
  BufferReader r(data);
  uint32_t magic = 0;
  SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kReplyCacheMagic) {
    return Status::Corruption("reply cache snapshot: bad magic");
  }
  uint64_t n_clients = 0;
  SSE_ASSIGN_OR_RETURN(n_clients, r.GetVarint());
  std::unordered_map<uint64_t, ClientState> restored;
  for (uint64_t i = 0; i < n_clients; ++i) {
    uint64_t client = 0;
    SSE_ASSIGN_OR_RETURN(client, r.GetU64());
    ClientState state;
    SSE_ASSIGN_OR_RETURN(state.max_seen, r.GetU64());
    SSE_ASSIGN_OR_RETURN(state.low_water, r.GetU64());
    uint64_t n_replies = 0;
    SSE_ASSIGN_OR_RETURN(n_replies, r.GetVarint());
    for (uint64_t j = 0; j < n_replies; ++j) {
      uint64_t seq = 0;
      SSE_ASSIGN_OR_RETURN(seq, r.GetU64());
      Bytes bytes;
      SSE_ASSIGN_OR_RETURN(bytes, r.GetBytes());
      state.replies[seq] = std::move(bytes);
    }
    restored[client] = std::move(state);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  std::lock_guard<std::mutex> lock(mutex_);
  clients_ = std::move(restored);
  // Restored clients become equally "old"; later activity re-ranks them.
  tick_ = 0;
  for (auto& [client, state] : clients_) state.last_used = ++tick_;
  return Status::OK();
}

void ReplyCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  clients_.clear();
  tick_ = 0;
}

size_t ReplyCache::client_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clients_.size();
}

size_t ReplyCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [client, state] : clients_) n += state.replies.size();
  return n;
}

uint64_t ReplyCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t ReplyCache::refusals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refusals_;
}

}  // namespace sse::core
