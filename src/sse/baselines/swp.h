#ifndef SSE_BASELINES_SWP_H_
#define SSE_BASELINES_SWP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/types.h"
#include "sse/core/wire_common.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"
#include "sse/storage/document_store.h"

namespace sse::baselines {

/// Baseline: Song–Wagner–Perrig (S&P 2000), the "hidden search" scheme the
/// paper's §2/§3 argue against. Every keyword occurrence is stored as a
/// 32-byte searchable block; a search hands the server a deterministic
/// word ciphertext X and a check key k, and the server *scans every block
/// of every document*: O(total keyword occurrences) per query — the linear
/// cost our Scheme 1/2 avoid.
///
/// Block construction per occurrence (client side):
///   X = PRF(k_word, w)            (32 bytes, split X = L ‖ R, 16+16)
///   k = PRF(k_check, L)
///   S = fresh random 16 bytes
///   C = X ⊕ (S ‖ PRF(k, S)[0..16))
/// Server-side test given trapdoor (X, k): split C ⊕ X = (a ‖ b) and check
/// b == PRF(k, a)[0..16).
///
/// Updates are trivially cheap (append new blocks) — the trade-off runs
/// exactly opposite to CGKO SSE-1, bracketing the paper's design point.
inline constexpr uint16_t kMsgSwpStore = net::kMsgRangeBaseline + 1;
inline constexpr uint16_t kMsgSwpStoreAck = net::kMsgRangeBaseline + 2;
inline constexpr uint16_t kMsgSwpSearch = net::kMsgRangeBaseline + 3;
inline constexpr uint16_t kMsgSwpSearchResult = net::kMsgRangeBaseline + 4;

class SwpServer : public core::PersistableHandler {
 public:
  SwpServer() = default;

  Result<net::Message> Handle(const net::Message& request) override;
  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  size_t document_count() const { return docs_.size(); }
  /// Total searchable blocks scanned across all searches.
  uint64_t blocks_scanned() const { return blocks_scanned_; }

 private:
  Result<net::Message> HandleStore(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg);

  // Per document: its searchable word blocks (32 bytes each, concatenated).
  std::vector<std::pair<uint64_t, Bytes>> blocks_;
  storage::DocumentStore docs_;
  uint64_t blocks_scanned_ = 0;
};

class SwpClient : public core::SseClientInterface {
 public:
  static Result<std::unique_ptr<SwpClient>> Create(
      const crypto::MasterKey& key, net::Channel* channel, RandomSource* rng);

  Status Store(const std::vector<core::Document>& docs) override;
  Result<core::SearchOutcome> Search(std::string_view keyword) override;
  std::string name() const override { return "swp"; }

 private:
  SwpClient(crypto::Prf word_prf, crypto::Prf check_prf, crypto::Aead aead,
            net::Channel* channel, RandomSource* rng);

  Result<Bytes> WordCiphertext(std::string_view keyword) const;

  crypto::Prf word_prf_;
  crypto::Prf check_prf_;
  crypto::Aead aead_;
  net::Channel* channel_;
  RandomSource* rng_;
};

}  // namespace sse::baselines

#endif  // SSE_BASELINES_SWP_H_
