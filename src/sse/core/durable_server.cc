#include "sse/core/durable_server.h"

namespace sse::core {

namespace {
std::string SnapshotPath(const std::string& dir) { return dir + "/state.snap"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner) {
  return Open(dir, inner, Options{});
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner, Options options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner handler must be non-null");
  }
  // 1. Restore the last checkpoint, if any.
  if (storage::Snapshot::Exists(SnapshotPath(dir))) {
    Bytes state;
    SSE_ASSIGN_OR_RETURN(state, storage::Snapshot::Read(SnapshotPath(dir)));
    SSE_RETURN_IF_ERROR(inner->RestoreState(state));
  }
  // 2. Replay journaled requests on top. Replies are discarded — they were
  // already delivered before the crash.
  Status replay = storage::WriteAheadLog::Replay(
      WalPath(dir), [&](BytesView record) -> Status {
        Result<net::Message> msg = net::Message::Decode(record);
        if (!msg.ok()) return msg.status();
        Result<net::Message> reply = inner->Handle(msg.value());
        if (!reply.ok()) return reply.status();
        return Status::OK();
      });
  SSE_RETURN_IF_ERROR(replay);

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<DurableServer>(
      new DurableServer(dir, inner, std::move(wal).value(), options));
}

Result<net::Message> DurableServer::Handle(const net::Message& request) {
  if (!inner_->IsMutating(request.type)) {
    return inner_->Handle(request);
  }
  // Apply first, journal second, reply last. Journaling a request the
  // handler would reject poisons the log (replay re-runs the rejection and
  // recovery fails), so only *accepted* mutations are written; because the
  // reply is not produced until the journal entry is durable, an
  // acknowledged update can never be lost. A crash between apply and
  // append loses only an unacknowledged update.
  Result<net::Message> reply = inner_->Handle(request);
  if (!reply.ok()) return reply;
  SSE_RETURN_IF_ERROR(wal_->Append(request.Encode()));
  if (options_.sync_every_append) {
    SSE_RETURN_IF_ERROR(wal_->Sync());
  }
  return reply;
}

Status DurableServer::Checkpoint() {
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, inner_->SerializeState());
  SSE_RETURN_IF_ERROR(storage::Snapshot::Write(SnapshotPath(dir_), state));
  return wal_->Reset();
}

}  // namespace sse::core
