#include "sse/net/chaos.h"

#include <chrono>
#include <thread>

namespace sse::net {

ChaosChannel::ChaosChannel(Channel* inner, const ChaosOptions& options)
    : inner_(inner), options_(options), rng_(options.seed) {}

bool ChaosChannel::Roll(double p) {
  if (p <= 0.0) return false;
  return rng_.NextDouble() < p;
}

void ChaosChannel::CorruptPayload(Message& msg) {
  if (msg.payload.empty()) {
    // Nothing to flip in the payload; damage the checksum itself instead,
    // which a receiver detects the same way.
    msg.payload_crc ^= 0xdeadbeef;
    return;
  }
  const size_t index =
      static_cast<size_t>(rng_.Next() % msg.payload.size());
  uint8_t flip = static_cast<uint8_t>(rng_.Next() & 0xff);
  if (flip == 0) flip = 0x01;  // XOR with 0 would be a no-op
  msg.payload[index] ^= flip;
}

void ChaosChannel::Reset() {
  stale_replies_.clear();
  inner_->Reset();
}

Result<Message> ChaosChannel::Call(const Message& request) {
  chaos_stats_.calls += 1;
  stats_.rounds += 1;
  stats_.calls_by_type[request.type] += 1;

  if (Roll(options_.p_delay)) {
    chaos_stats_.delays += 1;
    stats_.injected_faults += 1;
    const double ms =
        options_.delay_min_ms +
        rng_.NextDouble() * (options_.delay_max_ms - options_.delay_min_ms);
    if (sleep_fn_) {
      sleep_fn_(ms);
    } else if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  }

  Message outbound = request;
  if (Roll(options_.p_request_corrupt)) {
    chaos_stats_.request_corruptions += 1;
    stats_.injected_faults += 1;
    CorruptPayload(outbound);
  }
  stats_.bytes_sent += outbound.WireSize();
  if (Roll(options_.p_request_drop)) {
    chaos_stats_.request_drops += 1;
    stats_.injected_faults += 1;
    return Status::IoError("chaos: request dropped");
  }

  Result<Message> fresh = inner_->Call(outbound);
  if (Roll(options_.p_request_duplicate)) {
    // The doubled request reaches the server as a second identical copy;
    // its reply lands behind ours in the stream.
    chaos_stats_.request_duplicates += 1;
    stats_.injected_faults += 1;
    Result<Message> second = inner_->Call(outbound);
    if (second.ok()) stale_replies_.push_back(std::move(second).value());
  }
  if (!fresh.ok()) return fresh.status();
  stats_.bytes_received += fresh->WireSize();

  if (Roll(options_.p_reply_drop)) {
    chaos_stats_.reply_drops += 1;
    stats_.injected_faults += 1;
    return Status::IoError("chaos: reply dropped (server DID process)");
  }
  if (Roll(options_.p_reply_duplicate)) {
    chaos_stats_.reply_duplicates += 1;
    stats_.injected_faults += 1;
    stale_replies_.push_back(*fresh);
  }

  Message delivered;
  if (!stale_replies_.empty()) {
    // The stream is off by one: the oldest buffered reply answers this
    // call; the genuine reply queues behind it.
    delivered = std::move(stale_replies_.front());
    stale_replies_.pop_front();
    stale_replies_.push_back(std::move(fresh).value());
    chaos_stats_.stale_served += 1;
  } else {
    delivered = std::move(fresh).value();
  }

  if (Roll(options_.p_reply_corrupt)) {
    chaos_stats_.reply_corruptions += 1;
    stats_.injected_faults += 1;
    CorruptPayload(delivered);
  }
  return delivered;
}

}  // namespace sse::net
