// Experiment E-leak — §5.7: what updates leak to the honest-but-curious
// server, and how batching and fake-update padding reduce it. Measures the
// per-update keyword counts an observer extracts from the transcript and
// the entropy of the update-size sequence.

#include <cstdio>

#include <set>

#include "bench_common.h"
#include "sse/security/leakage.h"

namespace sse::bench {
namespace {

core::SseSystem TranscribingSystem(DeterministicRandom* rng) {
  core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                          /*chain_length=*/2048);
  config.channel.record_transcript = true;
  return MustCreate(core::SystemKind::kScheme2, config, rng);
}

void SweepBatchSize() {
  std::printf(
      "E-leak (a): batching (Section 5.7). Storing 64 documents in batches\n"
      "of b leaks 64/b observations; each observation only aggregates over\n"
      "the batch, so per-document keyword counts blur as b grows.\n\n");
  TablePrinter table({"batch_docs", "observations", "mean_kw/obs",
                      "size_entropy_bits"});
  table.PrintHeader();
  for (size_t batch : {1u, 4u, 16u, 64u}) {
    DeterministicRandom rng(51);
    core::SseSystem sys = TranscribingSystem(&rng);
    auto docs = phr::GenerateDocuments(64, /*vocabulary=*/48,
                                       /*keywords_per_doc=*/4, 1.0, 17);
    for (size_t start = 0; start < docs.size(); start += batch) {
      std::vector<core::Document> chunk(
          docs.begin() + start,
          docs.begin() + std::min(start + batch, docs.size()));
      MustOk(sys.client->Store(chunk), "store");
    }
    security::LeakageReport report =
        security::AnalyzeTranscript(sys.channel->transcript());
    double mean = 0;
    for (uint64_t c : report.update_keyword_counts) {
      mean += static_cast<double>(c);
    }
    mean /= static_cast<double>(report.update_keyword_counts.size());
    table.PrintRow({FmtU(batch), FmtU(report.update_keyword_counts.size()),
                    Fmt("%.1f", mean),
                    Fmt("%.2f", report.UpdateSizeEntropy())});
  }
  table.PrintRule();
  std::printf("\n");
}

void FakePadding() {
  std::printf(
      "E-leak (b): fake-update padding. Updates padded to a constant\n"
      "keyword count produce a zero-entropy size sequence: the observer\n"
      "learns nothing from update sizes.\n\n");
  TablePrinter table({"padding", "updates", "distinct_sizes",
                      "size_entropy_bits"});
  table.PrintHeader();
  for (bool pad : {false, true}) {
    DeterministicRandom rng(52);
    core::SseSystem sys = TranscribingSystem(&rng);
    DeterministicRandom shape(53);
    const size_t pad_to = 6;
    for (int i = 0; i < 48; ++i) {
      std::vector<std::string> kws;
      const size_t real = 1 + shape.Next() % 5;
      for (size_t k = 0; k < real; ++k) {
        kws.push_back("kw" + std::to_string(i) + "_" + std::to_string(k));
      }
      if (pad) {
        for (size_t k = kws.size(); k < pad_to; ++k) {
          kws.push_back("pad" + std::to_string(i) + "_" + std::to_string(k));
        }
      }
      MustOk(sys.client->FakeUpdate(kws), "padded update");
    }
    security::LeakageReport report =
        security::AnalyzeTranscript(sys.channel->transcript());
    std::set<uint64_t> distinct(report.update_keyword_counts.begin(),
                                report.update_keyword_counts.end());
    table.PrintRow({pad ? "pad_to_6" : "none",
                    FmtU(report.update_keyword_counts.size()),
                    FmtU(distinct.size()),
                    Fmt("%.2f", report.UpdateSizeEntropy())});
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::SweepBatchSize();
  sse::bench::FakePadding();
  return 0;
}
