// Kill-the-primary chaos harness: a real 3-process replication cluster
// over localhost TCP. Each node is a forked copy of this binary running
// `--node` (ReplNode over a Scheme1Server behind a TcpServer); the parent
// drives a seeded sweep of SIGKILL / SIGSTOP events against it while a
// client thread keeps storing documents through the failover router.
//
// The oracle leans on Scheme 1's XOR posting updates: a record applied
// twice toggles its posting back OFF, so "every acked document is found
// by search after failover" checks durability AND exactly-once at once.
//
// This file has its own main (the `--node` re-exec entry), so CMake links
// it without gtest_main and labels it `cluster`.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/stats_rpc.h"
#include "sse/repl/failover_channel.h"
#include "sse/repl/messages.h"
#include "sse/repl/node.h"
#include "sse/util/random.h"
#include "test_util.h"

namespace sse::repl {
namespace {

using net::TcpChannel;
using net::TcpServer;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

// ---------------------------------------------------------------------------
// Child side: one cluster node process.

int RunNode(int argc, char** argv) {
  std::string dir;
  std::string role = "follower";
  uint16_t port = 0;
  std::string ack = "async";
  std::vector<ReplSender::Endpoint> peers;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::stoi(next()));
    } else if (arg == "--role") {
      role = next();
    } else if (arg == "--ack") {
      ack = next();
    } else if (arg == "--peer") {
      const std::string hp = next();
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) return 2;
      peers.push_back({hp.substr(0, colon),
                       static_cast<uint16_t>(std::stoi(hp.substr(colon + 1)))});
    }
  }
  if (dir.empty() || port == 0) {
    std::fprintf(stderr, "node: --dir and --port are required\n");
    return 2;
  }

  const core::SchemeOptions options = FastTestConfig().scheme;
  ReplNode::Options nopts;
  nopts.initial_role =
      role == "primary" ? ReplNode::Role::kPrimary : ReplNode::Role::kFollower;
  nopts.peers = std::move(peers);
  nopts.sender.ack_mode = ack == "wait_one" ? ReplSender::AckMode::kWaitOne
                                            : ReplSender::AckMode::kAsync;
  // Generous ack deadline: the sweep partitions one follower at a time, so
  // a healthy peer always acks quickly and a timeout would mean the write
  // was acked WITHOUT follower durability — exactly what the oracle must
  // not tolerate while a kill is scheduled.
  nopts.sender.ack_timeout_ms = 5000;
  nopts.sender.probe_interval_ms = 20;
  nopts.sender.connect_timeout_ms = 300;
  nopts.sender.io_timeout_ms = 1000;
  nopts.sender.initial_backoff_ms = 10;
  nopts.sender.max_backoff_ms = 200;
  // Small segments so the sweep crosses rotation boundaries and a SIGKILL
  // can land mid-segment on either end of the ship.
  nopts.durable.wal_segment_bytes = 4096;
  nopts.sender.wal_segment_bytes = 4096;
  nopts.follower_checkpoint_every_records = 16;

  auto node = ReplNode::Open(
      dir, [options] { return std::make_unique<core::Scheme1Server>(options); },
      std::move(nopts));
  if (!node.ok()) {
    std::fprintf(stderr, "node: open failed: %s\n",
                 node.status().ToString().c_str());
    return 1;
  }
  TcpServer::Options sopts;
  sopts.serve_stats = false;  // the node injects its own sse_repl_* lines
  auto server = TcpServer::Start(node->get(), port, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "node: listen on %u failed: %s\n", port,
                 server.status().ToString().c_str());
    return 1;
  }
  // Serve until the parent kills us (SIGKILL is the point of the harness).
  for (;;) pause();
}

// ---------------------------------------------------------------------------
// Parent-side process and cluster plumbing.

uint16_t ReservePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// One spawned node process.
struct NodeProc {
  TempDir dir;
  uint16_t port = 0;
  pid_t pid = -1;

  void Spawn(const std::string& role, const std::string& ack,
             const std::vector<uint16_t>& peer_ports) {
    std::vector<std::string> args = {"/proc/self/exe", "--node",
                                     "--dir",          dir.path(),
                                     "--port",         std::to_string(port),
                                     "--role",         role,
                                     "--ack",          ack};
    for (const uint16_t peer : peer_ports) {
      args.push_back("--peer");
      args.push_back("127.0.0.1:" + std::to_string(peer));
    }
    pid = ::fork();
    ASSERT_GE(pid, 0) << "fork: " << std::strerror(errno);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& a : args) argv.push_back(::strdup(a.c_str()));
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "execv: %s\n", std::strerror(errno));
      ::_exit(127);
    }
  }

  void Kill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }
  void Pause() const { ::kill(pid, SIGSTOP); }
  void Resume() const { ::kill(pid, SIGCONT); }

  ~NodeProc() { Kill(); }
};

/// Scrapes one node's stats RPC and extracts `metric`; false when the
/// node is unreachable or the series is absent.
bool ScrapeMetric(uint16_t port, const std::string& metric, double* value) {
  TcpChannel::Options copts;
  copts.connect_timeout_ms = 300.0;
  copts.send_timeout_ms = 1000.0;
  copts.recv_timeout_ms = 1000.0;
  auto channel = TcpChannel::Connect(port, "127.0.0.1", copts);
  if (!channel.ok()) return false;
  auto reply = (*channel)->Call(obs::StatsRequest{}.ToMessage());
  if (!reply.ok()) return false;
  auto stats = obs::StatsReply::FromMessage(*reply);
  if (!stats.ok()) return false;
  return FindMetricValue(stats->prometheus_text, metric, value);
}

bool NodeServing(uint16_t port) {
  double unused = 0;
  return ScrapeMetric(port, "sse_repl_epoch", &unused);
}

/// Orders a follower to take over; true when it acked the promotion.
bool Promote(uint16_t port) {
  auto channel = TcpChannel::Connect(port);
  if (!channel.ok()) return false;
  auto reply = (*channel)->Call(ReplPromote{}.ToMessage());
  if (!reply.ok()) return false;
  auto ack = ReplAck::FromMessage(*reply);
  return ack.ok() && ack->accepted;
}

/// The failover controller's choice: the reachable follower with the
/// highest durable cursor holds every wait_one-acked write (cursors are
/// contiguous), so it is always safe to promote.
int PickFollowerToPromote(const std::vector<uint16_t>& follower_ports) {
  int best = -1;
  double best_seq = -1;
  for (size_t i = 0; i < follower_ports.size(); ++i) {
    double seq = 0;
    if (!ScrapeMetric(follower_ports[i], "sse_repl_node_next_seq", &seq)) {
      continue;
    }
    if (seq > best_seq) {
      best_seq = seq;
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// Client stack: Scheme1Client → RetryingChannel → FailoverChannel.
struct ClusterClient {
  std::unique_ptr<FailoverChannel> failover;
  std::unique_ptr<net::RetryingChannel> retry;
  std::unique_ptr<core::Scheme1Client> scheme;
  DeterministicRandom rng{1234};

  void Connect(const std::vector<uint16_t>& ports) {
    std::vector<ReplSender::Endpoint> endpoints;
    for (const uint16_t port : ports) endpoints.push_back({"127.0.0.1", port});
    FailoverChannel::Options fopts;
    fopts.channel.connect_timeout_ms = 300.0;
    fopts.channel.send_timeout_ms = 2000.0;
    fopts.channel.recv_timeout_ms = 2000.0;
    fopts.backoff_initial_ms = 10;
    fopts.backoff_max_ms = 200;
    failover = std::make_unique<FailoverChannel>(std::move(endpoints), fopts);
    net::RetryOptions ropts;
    ropts.max_attempts = 15;
    ropts.initial_backoff_ms = 20.0;
    ropts.max_backoff_ms = 400.0;
    retry = std::make_unique<net::RetryingChannel>(failover.get(), ropts);
    auto client = core::Scheme1Client::Create(
        TestMasterKey(), FastTestConfig().scheme, retry.get(), &rng);
    SSE_ASSERT_OK_RESULT(client);
    scheme = std::move(client).value();
  }
};

/// The seeded sweep: stores `total_docs` documents one at a time from a
/// writer thread while chaos events fire at acked-count thresholds. Each
/// document carries its own keyword and a shared "all" keyword.
struct SweepResult {
  std::vector<uint64_t> acked_ids;
  bool all_stores_ok = true;
};

/// Synchronizes the writer with the chaos schedule: the writer blocks
/// before storing document `i` until the parent has released past `i`.
/// Without this the toy-sized stores finish in milliseconds and every
/// "mid-stream" kill would actually land after the stream ended.
struct ChaosGate {
  std::mutex mutex;
  std::condition_variable cv;
  int released = 0;

  void ReleaseUpTo(int n) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      released = std::max(released, n);
    }
    cv.notify_all();
  }
  void AwaitRelease(int i) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return released > i; });
  }
};

SweepResult RunWriter(ClusterClient* client, int total_docs,
                      std::atomic<int>* acked_count, ChaosGate* gate) {
  SweepResult result;
  for (int i = 0; i < total_docs; ++i) {
    gate->AwaitRelease(i);
    const std::string name = "doc" + std::to_string(i);
    const std::string kw = "kw" + std::to_string(i);
    const Status status = client->scheme->Store(
        {core::Document::Make(static_cast<uint64_t>(i), name, {kw, "all"})});
    if (!status.ok()) {
      ADD_FAILURE() << "store " << i << " failed: " << status.ToString();
      result.all_stores_ok = false;
      continue;
    }
    result.acked_ids.push_back(static_cast<uint64_t>(i));
    acked_count->store(static_cast<int>(result.acked_ids.size()),
                      std::memory_order_release);
  }
  return result;
}

TEST(ClusterTest, KillPrimaryMidStreamPromotesWithoutLosingAckedWrites) {
  // Layout: node 0 primary, nodes 1-2 followers, wait_one acks.
  std::vector<NodeProc> nodes(3);
  for (NodeProc& node : nodes) node.port = ReservePort();
  const std::vector<uint16_t> all_ports = {nodes[0].port, nodes[1].port,
                                           nodes[2].port};
  // Every node knows the OTHER two as peers: a promoted follower starts
  // shipping to the rest of the cluster immediately.
  nodes[1].Spawn("follower", "wait_one", {nodes[0].port, nodes[2].port});
  nodes[2].Spawn("follower", "wait_one", {nodes[0].port, nodes[1].port});
  nodes[0].Spawn("primary", "wait_one", {nodes[1].port, nodes[2].port});
  for (const NodeProc& node : nodes) {
    ASSERT_TRUE(WaitFor([&] { return NodeServing(node.port); }, 15000))
        << "node on port " << node.port << " never served";
  }

  ClusterClient client;
  client.Connect(all_ports);

  constexpr int kTotalDocs = 30;
  constexpr int kPartitionAt = 5;   // SIGSTOP follower 2
  constexpr int kResumeAt = 12;     // SIGCONT follower 2
  constexpr int kKillAt = 18;       // SIGKILL the primary, promote
  std::atomic<int> acked{0};
  ChaosGate gate;
  SweepResult sweep;
  std::thread writer(
      [&] { sweep = RunWriter(&client, kTotalDocs, &acked, &gate); });

  auto reached = [&](int n) {
    return WaitFor([&] { return acked.load(std::memory_order_acquire) >= n; },
                   60000);
  };
  gate.ReleaseUpTo(kPartitionAt);
  ASSERT_TRUE(reached(kPartitionAt));
  nodes[2].Pause();  // partitioned follower: wait_one now rides on node 1
  gate.ReleaseUpTo(kResumeAt);
  ASSERT_TRUE(reached(kResumeAt));
  nodes[2].Resume();
  gate.ReleaseUpTo(kKillAt);
  ASSERT_TRUE(reached(kKillAt));
  // Kill the primary while the writer is parked at the gate, then release
  // it BEFORE promoting: store #18 is genuinely in flight against a dead
  // endpoint and must ride its retries through the promotion.
  nodes[0].Kill();
  gate.ReleaseUpTo(kTotalDocs);
  const int promote_idx =
      PickFollowerToPromote({nodes[1].port, nodes[2].port});
  ASSERT_GE(promote_idx, 0) << "no follower reachable to promote";
  const uint16_t new_primary_port = nodes[1 + promote_idx].port;
  ASSERT_TRUE(Promote(new_primary_port));

  writer.join();
  EXPECT_TRUE(sweep.all_stores_ok);
  ASSERT_EQ(sweep.acked_ids.size(), static_cast<size_t>(kTotalDocs));
  // The router actually had to fail over (the kill was mid-stream).
  EXPECT_GE(client.failover->failovers(), 1u);

  // Oracle: every acked document is found by search after the failover.
  // Scheme 1's XOR updates make this exactly-once-sensitive — a record
  // applied twice on any surviving node would erase its posting.
  auto outcome = client.scheme->Search("all");
  SSE_ASSERT_OK_RESULT(outcome);
  const std::set<uint64_t> found(outcome->ids.begin(), outcome->ids.end());
  for (const uint64_t id : sweep.acked_ids) {
    EXPECT_TRUE(found.count(id)) << "acked doc " << id
                                 << " lost across failover";
  }
  EXPECT_EQ(found.size(), sweep.acked_ids.size())
      << "search returned documents nobody acked (double-apply or ghost)";
  for (const uint64_t id : {uint64_t{0}, uint64_t{17}, uint64_t{29}}) {
    auto one = client.scheme->Search("kw" + std::to_string(id));
    SSE_ASSERT_OK_RESULT(one);
    EXPECT_EQ(one->ids, std::vector<uint64_t>{id});
  }

  // The surviving follower (including the once-partitioned one) converges
  // on the new primary's log end.
  double log_end = 0;
  ASSERT_TRUE(WaitFor(
      [&] {
        return ScrapeMetric(new_primary_port, "sse_repl_log_end_seq",
                            &log_end);
      },
      5000));
  const uint16_t other_port = nodes[1 + (1 - promote_idx)].port;
  EXPECT_TRUE(WaitFor(
      [&] {
        double seq = 0;
        return ScrapeMetric(other_port, "sse_repl_node_next_seq", &seq) &&
               seq >= log_end + 1;
      },
      15000))
      << "surviving follower never caught up to seq " << log_end + 1;
}

TEST(ClusterTest, KilledFollowerRestartsFromItsTornLogAndCatchesUp) {
  // Async acks: the primary must shrug off a follower dying mid-ship.
  std::vector<NodeProc> nodes(2);
  for (NodeProc& node : nodes) node.port = ReservePort();
  nodes[1].Spawn("follower", "async", {nodes[0].port});
  nodes[0].Spawn("primary", "async", {nodes[1].port});
  for (const NodeProc& node : nodes) {
    ASSERT_TRUE(WaitFor([&] { return NodeServing(node.port); }, 15000));
  }

  ClusterClient client;
  client.Connect({nodes[0].port, nodes[1].port});

  constexpr int kTotalDocs = 20;
  constexpr int kKillFollowerAt = 6;
  constexpr int kRestartFollowerAt = 10;
  std::atomic<int> acked{0};
  ChaosGate gate;
  SweepResult sweep;
  std::thread writer(
      [&] { sweep = RunWriter(&client, kTotalDocs, &acked, &gate); });

  auto reached = [&](int n) {
    return WaitFor([&] { return acked.load(std::memory_order_acquire) >= n; },
                   60000);
  };
  // SIGKILL the follower mid-ship: its local WAL may end in a torn
  // record, which recovery must truncate before resuming the stream.
  gate.ReleaseUpTo(kKillFollowerAt);
  ASSERT_TRUE(reached(kKillFollowerAt));
  nodes[1].Kill();
  gate.ReleaseUpTo(kRestartFollowerAt);
  ASSERT_TRUE(reached(kRestartFollowerAt));
  nodes[1].Spawn("follower", "async", {nodes[0].port});  // same dir + port
  ASSERT_TRUE(WaitFor([&] { return NodeServing(nodes[1].port); }, 15000));
  gate.ReleaseUpTo(kTotalDocs);

  writer.join();
  EXPECT_TRUE(sweep.all_stores_ok);

  // The restarted follower converges on the primary's full log.
  double log_end = 0;
  ASSERT_TRUE(WaitFor(
      [&] {
        return ScrapeMetric(nodes[0].port, "sse_repl_log_end_seq", &log_end) &&
               log_end > 0;
      },
      5000));
  EXPECT_TRUE(WaitFor(
      [&] {
        double seq = 0;
        return ScrapeMetric(nodes[1].port, "sse_repl_node_next_seq", &seq) &&
               seq >= log_end + 1;
      },
      20000));

  // And the primary still answers for every acked document.
  auto outcome = client.scheme->Search("all");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids.size(), sweep.acked_ids.size());
}

}  // namespace
}  // namespace sse::repl

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--node") {
    return sse::repl::RunNode(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
