#include "sse/net/admission.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sse/net/message.h"
#include "sse/util/serde.h"

namespace sse::net {

namespace {

// Mutating request types per docs/PROTOCOL.md §2/§3/§8. net/ sits below
// the core scheme headers that name these constants, so the values are
// spelled numerically here; the protocol doc is the one normative source
// both layers encode.
bool IsMutationType(uint16_t type) {
  switch (type) {
    case 0x0103:  // Scheme1.UpdateRequest
    case 0x0201:  // Scheme2.UpdateRequest
    case 0x0207:  // Scheme2.ReinitRequest
    case 0x0401:  // Scheme3.UpdateRequest
    case kMsgPutDocument:
      return true;
    default:
      return false;
  }
}

bool IsSearchType(uint16_t type) {
  switch (type) {
    case 0x0101:  // Scheme1.NonceRequest (update round 1: reads state)
    case 0x0105:  // Scheme1.SearchRequest
    case 0x0107:  // Scheme1.SearchFinish
    case 0x0203:  // Scheme2.SearchRequest
    case 0x0205:  // Scheme2.FetchAllRequest
    case 0x0403:  // Scheme3.SearchRequest
    case kMsgFetchDocuments:
      return true;
    default:
      return false;
  }
}

bool IsControlType(uint16_t type) {
  return type == kMsgStats || type == kMsgReplAppend ||
         type == kMsgReplAck || type == kMsgReplSnapshot ||
         type == kMsgReplPromote;
}

OpClass ClassifyType(uint16_t type) {
  if (IsControlType(type)) return OpClass::kControl;
  if (IsSearchType(type)) return OpClass::kSearch;
  // Mutations and anything unknown: the conservative class (shed first).
  return OpClass::kMutation;
}

constexpr char kRetryAfterPrefix[] = " [retry-after-ms=";

}  // namespace

OpClass ClassifyFrame(BytesView frame) {
  BufferReader r(frame);
  auto tag = r.GetU16();
  if (!tag.ok()) return OpClass::kMutation;
  const uint16_t flags = *tag;
  const uint16_t type = static_cast<uint16_t>(
      flags & ~(kMsgFlagSession | kMsgFlagTrace | kMsgFlagDeadline));
  if (type != kMsgBatch) return ClassifyType(type);
  // Batch envelope: skip the length field and any optional headers, then
  // light-parse to the first sub-op's type tag.
  if (!r.GetU32().ok()) return OpClass::kMutation;
  if ((flags & kMsgFlagSession) != 0 &&
      !r.GetRaw(Message::kSessionHeaderSize).ok()) {
    return OpClass::kMutation;
  }
  if ((flags & kMsgFlagTrace) != 0 &&
      !r.GetRaw(Message::kTraceHeaderSize).ok()) {
    return OpClass::kMutation;
  }
  if ((flags & kMsgFlagDeadline) != 0 &&
      !r.GetRaw(Message::kDeadlineHeaderSize).ok()) {
    return OpClass::kMutation;
  }
  if (!r.GetVarint().ok()) return OpClass::kMutation;  // op count
  if (!r.GetVarint().ok()) return OpClass::kMutation;  // first op seq
  auto op_type = r.GetU16();
  if (!op_type.ok()) return OpClass::kMutation;
  // MultiCall rounds are homogeneous (a Store round or a MultiSearch
  // round), so the first sub-op stands for the envelope.
  return ClassifyType(*op_type);
}

Status WithRetryAfter(Status status, uint32_t retry_after_ms) {
  if (status.ok()) return status;
  char hint[48];
  std::snprintf(hint, sizeof(hint), "%s%u]", kRetryAfterPrefix,
                retry_after_ms);
  return Status(status.code(), status.message() + hint);
}

bool RetryAfterHintMs(const Status& status, uint32_t* retry_after_ms) {
  const std::string& text = status.message();
  const size_t pos = text.rfind(kRetryAfterPrefix);
  if (pos == std::string::npos) return false;
  const char* digits = text.c_str() + pos + sizeof(kRetryAfterPrefix) - 1;
  char* end = nullptr;
  const unsigned long value = std::strtoul(digits, &end, 10);
  if (end == digits || end == nullptr || *end != ']') return false;
  *retry_after_ms = static_cast<uint32_t>(
      std::min<unsigned long>(value, 0xfffffffful));
  return true;
}

QueueAdmissionController::QueueAdmissionController(Options options)
    : options_(options) {
  if (options_.mutation_queue_depth == 0 && options_.max_queue_depth > 0) {
    options_.mutation_queue_depth =
        std::max<size_t>(1, options_.max_queue_depth / 2);
  }
  if (options_.mutation_queue_wait_ms <= 0.0 &&
      options_.max_queue_wait_ms > 0.0) {
    options_.mutation_queue_wait_ms = options_.max_queue_wait_ms / 2.0;
  }
  if (options_.wait_ewma_alpha <= 0.0 || options_.wait_ewma_alpha > 1.0) {
    options_.wait_ewma_alpha = 0.2;
  }
  if (options_.retry_after_ms == 0) options_.retry_after_ms = 25;
}

double QueueAdmissionController::wait_ewma_ms() const {
  return static_cast<double>(wait_ewma_us_.load(std::memory_order_relaxed)) /
         1000.0;
}

void QueueAdmissionController::OnQueueWait(uint64_t wait_ns) {
  // Lossy EWMA update: a racing sample may be dropped, which is fine for
  // a shedding heuristic — the signal converges either way.
  const double sample_us = static_cast<double>(wait_ns) / 1000.0;
  const double old_us =
      static_cast<double>(wait_ewma_us_.load(std::memory_order_relaxed));
  const double next_us =
      old_us + options_.wait_ewma_alpha * (sample_us - old_us);
  wait_ewma_us_.store(next_us <= 0.0 ? 0 : static_cast<uint64_t>(next_us),
                      std::memory_order_relaxed);
}

AdmissionDecision QueueAdmissionController::Shed(OpClass op,
                                                 const char* reason,
                                                 double overload) {
  (void)op;
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  AdmissionDecision d;
  d.admit = false;
  d.reason = reason;
  // Scale the hint with the overload factor so deep saturation pushes
  // clients further out; capped so hints stay actionable.
  const double scale = std::clamp(overload, 1.0, 8.0);
  d.retry_after_ms =
      static_cast<uint32_t>(static_cast<double>(options_.retry_after_ms) * scale);
  return d;
}

AdmissionDecision QueueAdmissionController::Admit(OpClass op,
                                                  size_t queue_depth) {
  if (op == OpClass::kControl) return AdmissionDecision{};
  if (options_.max_queue_depth > 0) {
    const size_t limit = op == OpClass::kMutation
                             ? options_.mutation_queue_depth
                             : options_.max_queue_depth;
    if (queue_depth >= limit) {
      return Shed(op, "queue_full",
                  static_cast<double>(queue_depth) /
                      static_cast<double>(limit));
    }
  }
  if (options_.max_queue_wait_ms > 0.0) {
    const double wait_ms = wait_ewma_ms();
    const double limit = op == OpClass::kMutation
                             ? options_.mutation_queue_wait_ms
                             : options_.max_queue_wait_ms;
    if (wait_ms >= limit) return Shed(op, "queue_wait", wait_ms / limit);
  }
  if (op == OpClass::kMutation && options_.memory_pressure &&
      options_.memory_pressure()) {
    return Shed(op, "memory", 2.0);
  }
  return AdmissionDecision{};
}

}  // namespace sse::net
