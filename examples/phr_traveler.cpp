// PHR⁺ traveler scenario (paper §6, first usage profile).
//
// A traveler keeps her medical record on an untrusted cloud server and
// retrieves pieces of it from anywhere — e.g. proving a vaccination to a
// border clinic. Searches dominate, updates are rare: Scheme 1's profile.
// Its search takes two rounds, which is fine on a broadband link — the
// example simulates a 40 ms intercontinental RTT and reports the virtual
// network time so the trade-off is visible.
//
//   ./build/examples/phr_traveler

#include <cstdio>
#include <cstdlib>

#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/phr/phr_store.h"

namespace {

template <typename T>
T MustValue(sse::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void MustOk(const sse::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace sse;

  core::SchemeOptions options;
  options.max_documents = 1 << 12;
  // Production-strength ElGamal group: the traveler's searches pay one
  // 2048-bit decryption client-side — still instant on a laptop.
  options.elgamal_group = crypto::ElGamalGroupId::kModp2048;

  core::Scheme1Server server(options);
  net::InProcessChannel::Options link;
  link.rtt_ms = 40.0;                       // intercontinental round trip
  link.bandwidth_bytes_per_sec = 2.5e6;     // ~20 Mbit/s hotel wifi
  net::InProcessChannel channel(&server, link);

  auto key = MustValue(
      crypto::MasterKey::FromPassphrase("travelers-own-secret-passphrase"),
      "derive key");
  SystemRandom& rng = SystemRandom::Instance();
  auto client = MustValue(
      core::Scheme1Client::Create(key, options, &channel, &rng), "client");
  phr::PhrStore store(client.get());

  // Before the trip (at home): upload the medical history once.
  phr::PatientRecord base;
  base.patient_id = "t42";
  base.name = "sofia de vries";
  base.practitioner = "dr mulder";
  base.visit_date = "2026-01-10";
  base.conditions = {"asthma"};
  base.medications = {"albuterol"};
  base.allergies = {"penicillin"};
  base.notes = "yellow fever vaccination administered booster valid ten years";
  MustOk(store.AddRecord(base), "upload record");

  phr::PatientRecord checkup = base;
  checkup.visit_date = "2026-06-02";
  checkup.notes = "pre travel checkup all clear typhoid vaccination done";
  MustOk(store.AddRecord(checkup), "upload record");

  std::printf("records uploaded. leaving for the trip...\n\n");

  // Abroad: a clinic asks for vaccination proof. Free-text search over the
  // encrypted notes.
  channel.ResetStats();
  auto proof = MustValue(store.FindByNoteTerm("vaccination"),
                         "vaccination lookup");
  std::printf("search \"vaccination\": %zu record(s)\n", proof.size());
  for (const auto& record : proof) {
    std::printf("  %s — %s\n", record.visit_date.c_str(),
                record.notes.c_str());
  }
  std::printf(
      "network: %llu rounds, %llu bytes, ~%.0f ms simulated link time\n",
      static_cast<unsigned long long>(channel.stats().rounds),
      static_cast<unsigned long long>(channel.stats().TotalBytes()),
      channel.virtual_time_ms());

  // The allergy question at a foreign pharmacy.
  channel.ResetStats();
  auto allergy = MustValue(store.FindByPatient("t42"), "full record");
  bool penicillin = false;
  for (const auto& record : allergy) {
    for (const auto& a : record.allergies) {
      if (a == "penicillin") penicillin = true;
    }
  }
  std::printf("\npenicillin allergy on file: %s (fetched %zu records, ~%.0f ms)\n",
              penicillin ? "YES" : "no", allergy.size(),
              channel.virtual_time_ms());

  // Privacy maintenance: a fake update re-randomizes the stored masks so
  // the server cannot correlate long-lived entries across sessions.
  MustOk(client->FakeUpdate({"condition:asthma", "med:albuterol"}),
         "fake update");
  std::printf("\nfake update sent: server-side entries re-randomized, "
              "no real change.\n");
  return 0;
}
