#ifndef SSE_NET_CONNECTION_H_
#define SSE_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sse/net/frame.h"
#include "sse/net/reactor.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::net {

/// One accepted socket on an EventLoop: a state machine that
///  1. reassembles length-prefixed frames incrementally (FrameAssembler,
///     shared with the client channel),
///  2. hands each decoded frame to `on_frame` (which dispatches it into a
///     process-wide pool — NOT on the loop thread),
///  3. drains a buffered write queue on EPOLLOUT, resuming partial writes
///     where they stopped, and
///  4. applies backpressure: once `max_outstanding` frames are dispatched
///     but their replies not yet fully written, the connection drops
///     EPOLLIN interest and stops pulling bytes off the socket; TCP flow
///     control pushes back to the client. Reading resumes as replies
///     drain.
///
/// Threading: every member is owned by the connection's loop thread.
/// `SendFrame` is the one cross-thread entry point — it posts the framed
/// bytes to the loop. Dispatch callbacks hold the connection alive via
/// shared_ptr; after Close() their completions are counted and dropped,
/// so a late handler reply can never touch a reused fd.
class Connection : public EventLoop::Handler,
                   public std::enable_shared_from_this<Connection> {
 public:
  struct Options {
    /// Backpressure bound: frames dispatched whose replies are not yet
    /// fully on the wire. 1 restores strict request->reply lockstep.
    size_t max_outstanding = 64;
    uint32_t max_frame = kMaxFrameSize;
  };

  struct Callbacks {
    /// A decoded request frame. Runs on the loop thread; implementations
    /// must hand the work off (e.g. WorkerPool::Submit) and later call
    /// conn->SendFrame(reply) or conn->AbandonReply().
    std::function<void(const std::shared_ptr<Connection>&, Bytes frame)>
        on_frame;
    /// The connection fully closed (fd released). Loop thread.
    std::function<void(Connection*)> on_close;
  };

  /// Takes ownership of `fd` (non-blocking). Call Register() afterwards.
  Connection(int fd, EventLoop* loop, Options options, Callbacks callbacks);
  ~Connection() override;

  /// Registers with the loop and starts reading. Any thread.
  void Register();

  /// Queues one reply frame (payload only; framing added here) and
  /// schedules the write. Any thread. Pairs 1:1 with an `on_frame`
  /// delivery. If the connection has closed meanwhile the reply is
  /// dropped but still accounted, so outstanding counts stay balanced.
  void SendFrame(Bytes payload);

  /// Accounts a dispatched frame that will never produce a reply frame.
  /// Any thread.
  void AbandonReply();

  /// Stops reading new frames; queued requests still complete and queued
  /// replies still flush ("drain" half of graceful shutdown). Any thread.
  void BeginDrain();

  /// Hard-closes: drops queued replies and releases the fd. Any thread.
  void Close();

  /// Dispatched-but-not-fully-written frames (approximate cross-thread).
  size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  /// Reply frames queued or mid-write (approximate cross-thread).
  size_t queued_replies() const {
    return queued_replies_.load(std::memory_order_relaxed);
  }
  bool closed() const { return closed_flag_.load(std::memory_order_acquire); }

  int fd() const { return fd_; }
  EventLoop* loop() const { return loop_; }

  /// Steady-clock milliseconds of the last byte read or written (set at
  /// construction, then on socket activity). Cross-thread readable; the
  /// idle sweeper compares it against NowMs().
  int64_t last_activity_ms() const {
    return last_activity_ms_.load(std::memory_order_relaxed);
  }
  /// The activity clock's notion of "now".
  static int64_t NowMs();

 private:
  void OnEvents(uint32_t events) override;
  void HandleReadable();
  void HandleWritable();
  /// Pops reassembled frames and hands them to on_frame until the
  /// backpressure window fills; recomputes the read-pause state.
  void DeliverFrames();
  /// Appends one framed reply to the write queue (loop thread).
  void QueueReply(Bytes framed);
  /// Flushes as much of the write queue as the socket accepts.
  void FlushWrites();
  void UpdateInterest();
  void CloseNow();
  /// One reply fully left the state machine (written, dropped or
  /// abandoned): releases a backpressure slot.
  void ReplyRetired();

  int fd_;
  EventLoop* loop_;
  Options options_;
  Callbacks callbacks_;

  FrameAssembler assembler_;
  std::deque<Bytes> write_queue_;  // framed bytes
  size_t write_offset_ = 0;        // into write_queue_.front()

  uint32_t interest_ = 0;      // current epoll mask
  bool registered_ = false;
  bool reading_ = true;        // EPOLLIN wanted (false: paused or draining)
  bool draining_ = false;
  bool peer_eof_ = false;
  bool closed_ = false;        // loop-thread view

  std::atomic<size_t> outstanding_{0};
  std::atomic<size_t> queued_replies_{0};
  std::atomic<bool> closed_flag_{false};
  std::atomic<int64_t> last_activity_ms_{0};
};

}  // namespace sse::net

#endif  // SSE_NET_CONNECTION_H_
