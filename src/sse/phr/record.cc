#include "sse/phr/record.h"

#include <sstream>

#include "sse/phr/tokenizer.h"

namespace sse::phr {

namespace {

std::string JoinList(const std::vector<std::string>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += "; ";
    out += items[i];
  }
  return out;
}

std::vector<std::string> SplitList(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ';') {
      if (!current.empty()) out.push_back(current);
      current.clear();
      if (i + 1 < line.size() && line[i + 1] == ' ') ++i;
    } else {
      current.push_back(line[i]);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace

std::string PatientRecord::ToText() const {
  std::ostringstream os;
  os << "patient_id: " << patient_id << "\n";
  os << "name: " << name << "\n";
  os << "visit_date: " << visit_date << "\n";
  os << "practitioner: " << practitioner << "\n";
  os << "conditions: " << JoinList(conditions) << "\n";
  os << "medications: " << JoinList(medications) << "\n";
  os << "allergies: " << JoinList(allergies) << "\n";
  os << "notes: " << notes << "\n";
  return os.str();
}

Result<PatientRecord> PatientRecord::FromText(const std::string& text) {
  PatientRecord record;
  std::istringstream is(text);
  std::string line;
  bool saw_patient_id = false;
  while (std::getline(is, line)) {
    const size_t colon = line.find(": ");
    std::string key;
    std::string value;
    if (colon == std::string::npos) {
      // "key:" with empty value.
      if (!line.empty() && line.back() == ':') {
        key = line.substr(0, line.size() - 1);
      } else {
        continue;
      }
    } else {
      key = line.substr(0, colon);
      value = line.substr(colon + 2);
    }
    if (key == "patient_id") {
      record.patient_id = value;
      saw_patient_id = true;
    } else if (key == "name") {
      record.name = value;
    } else if (key == "visit_date") {
      record.visit_date = value;
    } else if (key == "practitioner") {
      record.practitioner = value;
    } else if (key == "conditions") {
      record.conditions = SplitList(value);
    } else if (key == "medications") {
      record.medications = SplitList(value);
    } else if (key == "allergies") {
      record.allergies = SplitList(value);
    } else if (key == "notes") {
      record.notes = value;
    }
  }
  if (!saw_patient_id) {
    return Status::Corruption("record text lacks a patient_id line");
  }
  return record;
}

std::vector<std::string> PatientRecord::SearchKeywords() const {
  std::vector<std::string> keywords;
  keywords.push_back(Tag("patient", patient_id));
  if (!practitioner.empty()) keywords.push_back(Tag("gp", practitioner));
  if (visit_date.size() >= 7) {
    keywords.push_back(Tag("date", visit_date.substr(0, 7)));  // year-month
  }
  for (const std::string& c : conditions) {
    keywords.push_back(Tag("condition", c));
  }
  for (const std::string& m : medications) keywords.push_back(Tag("med", m));
  for (const std::string& a : allergies) keywords.push_back(Tag("allergy", a));
  for (std::string& token : Tokenize(notes)) {
    keywords.push_back(std::move(token));
  }
  return keywords;
}

core::Document RecordToDocument(uint64_t doc_id, const PatientRecord& record) {
  return core::Document::Make(doc_id, record.ToText(),
                              record.SearchKeywords());
}

Result<PatientRecord> DocumentToRecord(const Bytes& content) {
  return PatientRecord::FromText(BytesToString(content));
}

}  // namespace sse::phr
