#include "sse/util/bytes.h"

#include <algorithm>
#include <cstring>

namespace sse {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes ToBytes(BytesView view) { return Bytes(view.begin(), view.end()); }

Bytes StringToBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s.data()),
               reinterpret_cast<const uint8_t*>(s.data()) + s.size());
}

std::string BytesToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string HexEncode(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes Concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes Concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

namespace {

/// XOR `n` bytes of `src` into `dst`, a machine word at a time. memcpy in
/// and out keeps the word loads/stores alignment-safe and free of aliasing
/// UB; compilers reduce each round trip to a single 8-byte load/xor/store.
/// Scheme 1 masks whole posting bitmaps (max_documents/8 bytes per
/// keyword), so this runs on every update and search.
void XorWords(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t d = 0;
    uint64_t s = 0;
    std::memcpy(&d, dst + i, sizeof(d));
    std::memcpy(&s, src + i, sizeof(s));
    d ^= s;
    std::memcpy(dst + i, &d, sizeof(d));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

Status XorInPlace(Bytes& dst, BytesView src) {
  if (dst.size() != src.size()) {
    return Status::InvalidArgument("XOR operands differ in size");
  }
  XorWords(dst.data(), src.data(), dst.size());
  return Status::OK();
}

Result<Bytes> Xor(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("XOR operands differ in size");
  }
  Bytes out(a.begin(), a.end());
  XorWords(out.data(), b.data(), out.size());
  return out;
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

int Compare(BytesView a, BytesView b) {
  const size_t n = std::min(a.size(), b.size());
  if (n != 0) {
    int c = std::memcmp(a.data(), b.data(), n);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace sse
