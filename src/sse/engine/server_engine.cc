#include "sse/engine/server_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sse/net/batch.h"
#include "sse/net/deadline.h"
#include "sse/util/serde.h"

namespace sse::engine {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

}  // namespace

ServerEngine::ServerEngine(std::unique_ptr<SchemeAdapter> adapter,
                           EngineOptions options)
    : adapter_(std::move(adapter)),
      options_(options),
      metrics_(options.num_shards) {}

Result<std::unique_ptr<ServerEngine>> ServerEngine::Create(
    std::unique_ptr<SchemeAdapter> adapter, const EngineOptions& options) {
  if (adapter == nullptr) {
    return Status::InvalidArgument("engine adapter must be non-null");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("engine needs at least one shard");
  }
  auto engine = std::unique_ptr<ServerEngine>(
      new ServerEngine(std::move(adapter), options));
  if (options.enable_reply_cache) {
    engine->reply_cache_ =
        std::make_unique<core::ReplyCache>(options.reply_cache);
  }
  engine->slots_.reserve(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->shard = engine->adapter_->CreateShard();
    engine->slots_.push_back(std::move(slot));
  }
  if (!options.document_log_path.empty()) {
    SSE_ASSIGN_OR_RETURN(
        engine->docs_,
        storage::DocumentStore::OpenLogBacked(options.document_log_path));
  }
  size_t workers = options.worker_threads;
  if (workers == 0) workers = options.num_shards;
  if (workers > options.num_shards) workers = options.num_shards;
  engine->pool_ = std::make_unique<WorkerPool>(workers);

  // Expose this engine in the process-wide registry. Several engines in
  // one process (common in tests) register the same names; the registry
  // merges them at scrape time.
  auto& registry = obs::MetricsRegistry::Global();
  ServerEngine* raw = engine.get();
  engine->registrations_.push_back(registry.RegisterHistogram(
      "sse_engine_handle_seconds",
      [raw] { return raw->metrics_.handle_latency().Snap(); },
      "Whole-request engine handling latency"));
  engine->registrations_.push_back(registry.RegisterHistogram(
      "sse_engine_lock_wait_seconds",
      [raw] { return raw->metrics_.lock_wait().Snap(); },
      "Per-sub-request shard lock acquisition wait"));
  engine->registrations_.push_back(registry.RegisterGauge(
      "sse_engine_degraded",
      [raw] { return raw->metrics_.degraded() ? 1.0 : 0.0; },
      "1 once the storage layer fail-stopped this engine to read-only"));
  engine->registrations_.push_back(registry.RegisterGauge(
      "sse_engine_requests",
      [raw] { return static_cast<double>(raw->metrics_.Snap().requests); },
      "Requests handled by live engines"));
  if (raw->reply_cache_ != nullptr) {
    engine->registrations_.push_back(registry.RegisterGauge(
        "sse_engine_reply_cache_entries",
        [raw] {
          return static_cast<double>(raw->reply_cache_->entry_count());
        },
        "Replies retained in the at-most-once dedup cache"));
  }
  return engine;
}

Result<net::Message> ServerEngine::Handle(const net::Message& request) {
  metrics_.AddRequest();
  // Parent to the thread-local context (in-process call chains) or to the
  // message's wire trace header (TCP dispatch threads).
  obs::ScopedSpan handle_span("engine.handle", obs::ParentFor(request));
  handle_span.Annotate("msg_type", request.type);
  const Clock::time_point t0 = Clock::now();
  Result<net::Message> reply = request.type == net::kMsgBatch
                                   ? HandleBatch(request)
                                   : HandleDeduped(request, /*allow_pool=*/true);
  metrics_.handle_latency().Record(NanosSince(t0));
  return reply;
}

Result<net::Message> ServerEngine::HandleBatch(const net::Message& request) {
  net::BatchRequest batch;
  SSE_ASSIGN_OR_RETURN(batch, net::BatchRequest::FromMessage(request));
  const size_t n = batch.ops.size();
  metrics_.AddBatch(n);

  // Rebuild each sub-op as a standalone message. A stamped envelope stamps
  // each sub with (envelope client_id, op seq) — the op's dedup identity,
  // stable across retried envelopes — via full StampSession so the sub
  // round-trips WAL journaling (DurableServer encodes and replays it).
  std::vector<net::Message> subs(n);
  for (size_t i = 0; i < n; ++i) {
    subs[i].type = batch.ops[i].type;
    subs[i].payload = std::move(batch.ops[i].payload);
    if (request.has_session) {
      subs[i].StampSession(request.client_id, batch.ops[i].seq);
    }
  }

  // Fan the sub-ops across the worker pool; each travels the normal
  // single-op path (dedup, routing, shard locks) and so cannot be told
  // apart from a client that sent it alone. Sub-ops running as pool tasks
  // must not re-enter the pool for their own scatters (allow_pool=false).
  const bool use_pool = options_.parallel_scatter && n > 1;
  // Captured explicitly: pool workers carry their own (empty) thread-local
  // context, so batch sub-op spans must parent through this value.
  const obs::TraceContext batch_ctx = obs::CurrentContext();
  // Same capture trick for the caller's deadline: checked at every sub-op
  // boundary so a batch that outlives its budget stops burning workers —
  // already-finished neighbors keep their real replies, the rest get
  // per-op DEADLINE_EXCEEDED entries (retryable, and their stable sub-op
  // seqs make the re-send dedup cleanly).
  const net::Deadline batch_deadline = net::CurrentDeadline();
  auto run_one = [this, &subs, use_pool, batch_ctx,
                  batch_deadline](size_t i) -> net::Message {
    if (subs[i].type == net::kMsgBatch) {
      return net::MakeErrorMessage(
          Status::InvalidArgument("batch envelopes cannot nest"));
    }
    if (batch_deadline.Expired()) {
      return net::MakeErrorMessage(net::DeadlineExceededStatus("mid-batch"));
    }
    // Pool workers carry an empty thread-local deadline; re-publish the
    // envelope's for anything below (e.g. the durable pre-append check).
    net::ScopedDeadline op_deadline(batch_deadline);
    obs::ScopedSpan op_span("engine.batch_op", batch_ctx);
    op_span.Annotate("batch_index", i);
    op_span.Annotate("seq", subs[i].seq);
    Result<net::Message> r = HandleDeduped(subs[i], /*allow_pool=*/!use_pool);
    if (!r.ok()) return net::MakeErrorMessage(r.status());
    return std::move(r).value();
  };
  std::vector<net::Message> outs(n);
  if (use_pool) {
    // One pool task per contiguous chunk of sub-ops, not one per sub-op:
    // a small sub-op finishes faster than a queue handoff costs, so
    // per-op tasks would spend more time in the pool mutex than in the
    // index. Chunking bounds handoffs at the worker count.
    const size_t chunks =
        std::max<size_t>(1, std::min(pool_->thread_count(), n));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * n / chunks;
      const size_t end = (c + 1) * n / chunks;
      tasks.push_back([&outs, &run_one, begin, end] {
        for (size_t i = begin; i < end; ++i) outs[i] = run_one(i);
      });
    }
    pool_->RunBatch(std::move(tasks));
  } else {
    for (size_t i = 0; i < n; ++i) outs[i] = run_one(i);
  }

  // Reply entries are (type, payload) only: the sub replies' individual
  // session stamps are redundant inside the envelope, whose own echoed
  // stamp and CRC cover the assembled reply end to end.
  net::BatchReply breply;
  breply.entries.reserve(n);
  for (net::Message& out : outs) {
    breply.entries.push_back(
        net::BatchReply::Entry{out.type, std::move(out.payload)});
  }
  net::Message reply = breply.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Result<net::Message> ServerEngine::HandleDeduped(const net::Message& request,
                                                 bool allow_pool) {
  if (metrics_.degraded() && IsMutating(request.type) &&
      request.type != net::kMsgBatch) {
    // Read-only after a storage fault: the DurableServer in front of us
    // already rejects mutations, but a bare engine (or a bug above) must
    // not mutate state that can no longer be journaled. Batch envelopes
    // pass through — their sub-ops are classified individually here.
    return Status::Unavailable("engine degraded after storage fault");
  }
  if (reply_cache_ == nullptr || !request.has_session) {
    return HandleInternal(request, allow_pool);
  }
  if (!IsMutating(request.type)) {
    // Read-only calls are idempotent: re-executing a retry is harmless and
    // cheaper than recording multi-KB search results in the cache. Echo
    // the stamp so the client can still match the reply to its call.
    Result<net::Message> reply = HandleInternal(request, allow_pool);
    if (reply.ok()) reply->EchoSession(request);
    return reply;
  }
  net::Message cached;
  const core::ReplyCache::Outcome outcome =
      reply_cache_->Begin(request.client_id, request.seq, &cached);
  switch (outcome) {
    case core::ReplyCache::Outcome::kCached: {
      // A retry of an answered call: serve the recorded reply without
      // touching the shards (re-applying a Scheme 1 XOR update would
      // corrupt postings).
      static auto* dedup_hits = obs::MetricsRegistry::Global().GetCounter(
          "sse_engine_dedup_hits_total",
          "Retried calls served from the reply cache");
      dedup_hits->Add();
      cached.EchoSession(request);
      return cached;
    }
    case core::ReplyCache::Outcome::kInFlight:
    case core::ReplyCache::Outcome::kTooOld:
      return core::ReplyCache::RefusalStatus(outcome);
    case core::ReplyCache::Outcome::kNew:
      break;
  }
  Result<net::Message> reply = HandleInternal(request, allow_pool);
  if (reply.ok()) {
    reply->EchoSession(request);
    reply_cache_->Commit(request.client_id, request.seq, *reply);
  } else {
    // The handler rejected the request without changing state; a retry may
    // re-execute it.
    reply_cache_->Abort(request.client_id, request.seq);
  }
  return reply;
}

Result<net::Message> ServerEngine::HandleInternal(const net::Message& request,
                                                  bool allow_pool) {
  if (request.type == net::kMsgFetchDocuments) {
    return HandleFetchDocuments(request);
  }

  RequestPlan plan;
  SSE_ASSIGN_OR_RETURN(plan, adapter_->Route(request, slots_.size()));
  if (plan.subs.size() > 1) {
    if (plan.subs.size() == slots_.size()) {
      metrics_.AddBroadcast();
    } else {
      metrics_.AddScatter();
    }
  }

  std::vector<net::Message> replies(plan.subs.size());
  Status first_error = Status::OK();
  const obs::TraceContext scatter_ctx = obs::CurrentContext();
  if (plan.subs.size() == 1) {
    Result<net::Message> reply = DispatchSub(plan.subs[0], scatter_ctx);
    if (!reply.ok()) return reply.status();
    replies[0] = std::move(reply).value();
  } else if (!plan.subs.empty()) {
    std::vector<Status> statuses(plan.subs.size(), Status::OK());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(plan.subs.size());
    for (size_t i = 0; i < plan.subs.size(); ++i) {
      tasks.push_back([this, &plan, &replies, &statuses, scatter_ctx, i] {
        Result<net::Message> reply = DispatchSub(plan.subs[i], scatter_ctx);
        if (reply.ok()) {
          replies[i] = std::move(reply).value();
        } else {
          statuses[i] = reply.status();
        }
      });
    }
    if (options_.parallel_scatter && allow_pool) {
      pool_->RunBatch(std::move(tasks));
    } else {
      for (auto& task : tasks) task();
    }
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
  }

  if (!plan.documents.empty()) {
    std::unique_lock<std::shared_mutex> lock(docs_mutex_);
    for (core::WireDocument& doc : plan.documents) {
      SSE_RETURN_IF_ERROR(docs_.Put(doc.id, std::move(doc.ciphertext)));
    }
    metrics_.AddDocPuts(plan.documents.size());
  }

  DocumentFetcher fetcher =
      [this](const std::vector<uint64_t>& ids)
      -> Result<std::vector<std::pair<uint64_t, Bytes>>> {
    std::shared_lock<std::shared_mutex> lock(docs_mutex_);
    metrics_.AddDocFetches(ids.size());
    return docs_.GetMany(ids);
  };
  return adapter_->Merge(request, plan, std::move(replies), fetcher);
}

Result<net::Message> ServerEngine::HandleFetchDocuments(
    const net::Message& request) {
  BufferReader r(request.payload);
  std::vector<uint64_t> ids;
  SSE_ASSIGN_OR_RETURN(ids, core::GetIdList(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());

  std::vector<std::pair<uint64_t, Bytes>> fetched;
  {
    std::shared_lock<std::shared_mutex> lock(docs_mutex_);
    SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(ids));
  }
  metrics_.AddDocFetches(ids.size());

  std::vector<core::WireDocument> docs;
  docs.reserve(fetched.size());
  for (auto& [id, blob] : fetched) {
    docs.push_back(core::WireDocument{id, std::move(blob)});
  }
  BufferWriter w;
  core::PutWireDocuments(w, docs);
  net::Message reply;
  reply.type = net::kMsgFetchDocumentsResult;
  reply.payload = w.TakeData();
  return reply;
}

Result<net::Message> ServerEngine::DispatchSub(
    const SubRequest& sub, const obs::TraceContext& parent) {
  Slot& slot = *slots_[sub.shard];
  ShardCounters& counters = metrics_.shard(sub.shard);
  const LockMode mode = adapter_->LockModeFor(sub.message.type);
  obs::ScopedSpan shard_span("engine.shard", parent);
  shard_span.Annotate("shard", sub.shard);
  shard_span.Annotate("exclusive", mode == LockMode::kExclusive ? 1 : 0);
  Result<net::Message> reply = [&]() -> Result<net::Message> {
    const Clock::time_point t0 = Clock::now();
    if (mode == LockMode::kExclusive) {
      std::unique_lock<std::shared_mutex> lock(slot.mutex);
      metrics_.lock_wait().Record(NanosSince(t0));
      counters.writes.fetch_add(1, std::memory_order_relaxed);
      return slot.shard->Handle(sub.message);
    }
    std::shared_lock<std::shared_mutex> lock(slot.mutex);
    metrics_.lock_wait().Record(NanosSince(t0));
    counters.reads.fetch_add(1, std::memory_order_relaxed);
    return slot.shard->Handle(sub.message);
  }();
  if (!reply.ok()) counters.errors.fetch_add(1, std::memory_order_relaxed);
  return reply;
}

void ServerEngine::OnStorageDegraded(const Status& cause) {
  (void)cause;
  metrics_.SetDegraded();
}

bool ServerEngine::IsMutating(uint16_t msg_type) const {
  // A batch envelope may carry mutating sub-ops; callers that cannot see
  // inside it (WAL policy, serialization guards) must assume it does.
  if (msg_type == net::kMsgBatch) return true;
  return adapter_->IsMutating(msg_type);
}

Result<Bytes> ServerEngine::SerializeState() const {
  BufferWriter w;
  w.PutU32(kEngineSnapshotMagic);
  w.PutVarint(slots_.size());
  {
    std::shared_lock<std::shared_mutex> lock(docs_mutex_);
    w.PutVarint(docs_.size());
    SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
      w.PutVarint(id);
      w.PutBytes(blob);
      return true;
    }));
  }
  for (const std::unique_ptr<Slot>& slot : slots_) {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    Bytes state;
    SSE_ASSIGN_OR_RETURN(state, slot->shard->SerializeState());
    w.PutBytes(state);
  }
  if (reply_cache_ != nullptr) {
    // Optional trailing section (absent in pre-dedup snapshots): the reply
    // cache, so at-most-once state survives checkpoint/restore.
    w.PutBytes(reply_cache_->Serialize());
  }
  return w.TakeData();
}

Status ServerEngine::RestoreState(BytesView data) {
  BufferReader r(data);
  uint32_t magic = 0;
  SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kEngineSnapshotMagic) {
    return Status::Corruption(
        "not an engine snapshot (single-server state cannot be restored "
        "into a sharded engine)");
  }
  uint64_t shard_count = 0;
  SSE_ASSIGN_OR_RETURN(shard_count, r.GetVarint());
  if (shard_count != slots_.size()) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(shard_count) +
        " shards but the engine is configured with " +
        std::to_string(slots_.size()) +
        "; restore requires an identical shard count");
  }

  // Parse and restore into fresh state before touching live state, so a
  // corrupt snapshot leaves the engine unchanged.
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  std::vector<std::pair<uint64_t, Bytes>> docs;
  docs.reserve(static_cast<size_t>(doc_count));
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    docs.emplace_back(id, std::move(blob));
  }
  std::vector<std::unique_ptr<SchemeShard>> shards;
  shards.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    Bytes state;
    SSE_ASSIGN_OR_RETURN(state, r.GetBytes());
    std::unique_ptr<SchemeShard> shard = adapter_->CreateShard();
    SSE_RETURN_IF_ERROR(shard->RestoreState(state));
    shards.push_back(std::move(shard));
  }
  // Trailing reply-cache section; absent in snapshots taken before dedup
  // existed, in which case the cache starts empty.
  Bytes cache_bytes;
  if (!r.AtEnd()) {
    SSE_ASSIGN_OR_RETURN(cache_bytes, r.GetBytes());
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (reply_cache_ != nullptr) {
    if (cache_bytes.empty()) {
      reply_cache_->Clear();
    } else {
      SSE_RETURN_IF_ERROR(reply_cache_->Restore(cache_bytes));
    }
  }

  // Swap in under every lock, shards in index order.
  std::unique_lock<std::shared_mutex> docs_lock(docs_mutex_);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(slots_.size());
  for (const std::unique_ptr<Slot>& slot : slots_) {
    shard_locks.emplace_back(slot->mutex);
  }
  SSE_RETURN_IF_ERROR(docs_.Clear());
  for (auto& [id, blob] : docs) {
    SSE_RETURN_IF_ERROR(docs_.Put(id, std::move(blob)));
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i]->shard = std::move(shards[i]);
  }
  return Status::OK();
}

size_t ServerEngine::unique_keywords() const {
  size_t total = 0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    total += slot->shard->unique_keywords();
  }
  return total;
}

uint64_t ServerEngine::stored_index_bytes() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    total += slot->shard->stored_index_bytes();
  }
  return total;
}

size_t ServerEngine::document_count() const {
  std::shared_lock<std::shared_mutex> lock(docs_mutex_);
  return docs_.size();
}

uint64_t ServerEngine::document_bytes() const {
  std::shared_lock<std::shared_mutex> lock(docs_mutex_);
  return docs_.total_bytes();
}

}  // namespace sse::engine
