#include "sse/storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

TEST(SnapshotTest, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  Bytes payload = StringToBytes("serialized server state");
  ASSERT_TRUE(Snapshot::Write(path, payload).ok());
  EXPECT_TRUE(Snapshot::Exists(path));
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, payload);
}

TEST(SnapshotTest, EmptyPayload) {
  TempDir dir;
  const std::string path = dir.path() + "/empty.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes{}).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(SnapshotTest, MissingFileNotFound) {
  TempDir dir;
  auto restored = Snapshot::Read(dir.path() + "/nope.snap");
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(Snapshot::Exists(dir.path() + "/nope.snap"));
}

TEST(SnapshotTest, OverwriteReplacesAtomically) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, StringToBytes("v1")).ok());
  ASSERT_TRUE(Snapshot::Write(path, StringToBytes("v2")).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(BytesToString(*restored), "v2");
}

TEST(SnapshotTest, CorruptedPayloadDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes(100, 0x5a)).ok());
  // Flip a byte inside the payload region.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0xff, f);
  std::fclose(f);
  auto restored = Snapshot::Read(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, WrongMagicDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTASNAPSHOTFILE________", f);
  std::fclose(f);
  auto restored = Snapshot::Read(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, TruncatedFileDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes(100, 1)).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 50), 0);
  std::fclose(f);
  EXPECT_FALSE(Snapshot::Read(path).ok());
}

TEST(SnapshotTest, LargePayload) {
  TempDir dir;
  const std::string path = dir.path() + "/big.snap";
  DeterministicRandom rng(5);
  Bytes payload(1 << 20);
  ASSERT_TRUE(rng.Fill(payload).ok());
  ASSERT_TRUE(Snapshot::Write(path, payload).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, payload);
}

}  // namespace
}  // namespace sse::storage
