file(REMOVE_RECURSE
  "CMakeFiles/bench_phr.dir/bench_phr.cc.o"
  "CMakeFiles/bench_phr.dir/bench_phr.cc.o.d"
  "bench_phr"
  "bench_phr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
