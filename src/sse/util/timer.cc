#include "sse/util/timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sse {

double LatencyStats::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyStats::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::Percentile(double q) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t idx = static_cast<size_t>(pos + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double LatencyStats::Stddev() const {
  if (samples_.size() < 2) return 0;
  const double mean = Mean();
  double acc = 0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string LatencyStats::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus", count(),
                Mean(), Percentile(0.50), Percentile(0.99), Max());
  return buf;
}

}  // namespace sse
