// Experiment E-opt2 — §5.6 Optimization 2 ablation: increment the global
// counter only when a search occurred since the last update. Measures how
// many chain elements a mixed update/search workload consumes with the
// policy on vs off — the factor that delays chain exhaustion and
// re-initialization.

#include <cstdio>

#include "bench_common.h"
#include "sse/core/scheme2_client.h"

namespace sse::bench {
namespace {

void Run() {
  std::printf(
      "E-opt2: Scheme 2 counter policy (Optimization 2).\n"
      "Workload: bursts of x updates followed by one search, until 512\n"
      "operations ran. 'chain spent' counts consumed elements; with the\n"
      "policy on, a burst of x updates costs one element, so the spend\n"
      "drops by ~x — exactly the l/x factor in the exhaustion analysis.\n\n");
  TablePrinter table({"opt2", "x_burst", "updates_run", "chain_spent",
                      "updates_per_element"});
  table.PrintHeader();
  for (bool opt2 : {true, false}) {
    for (size_t x : {1u, 4u, 16u}) {
      DeterministicRandom rng(43);
      core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                              /*chain_length=*/4096);
      config.scheme.counter_after_search_only = opt2;
      core::SseSystem sys =
          MustCreate(core::SystemKind::kScheme2, config, &rng);
      auto* client = static_cast<core::Scheme2Client*>(sys.client.get());

      uint64_t doc_id = 0;
      uint64_t updates = 0;
      while (updates < 512) {
        for (size_t i = 0; i < x && updates < 512; ++i) {
          MustOk(sys.client->Store({core::Document::Make(
                     doc_id++, "d", {"kw" + std::to_string(doc_id % 8)})}),
                 "store");
          ++updates;
        }
        MustValue(sys.client->Search("kw0"), "search");
      }
      table.PrintRow(
          {opt2 ? "on" : "off", FmtU(x), FmtU(updates),
           FmtU(client->counter()),
           Fmt("%.1f", static_cast<double>(updates) / client->counter())});
    }
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
