# Empty dependencies file for bench_security_game.
# This may be replaced when dependencies are built.
