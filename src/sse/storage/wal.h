#ifndef SSE_STORAGE_WAL_H_
#define SSE_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Append-only write-ahead log.
///
/// The SSE server journals every mutation (document put, searchable
/// representation change) before applying it, so a crash between a client
/// update and the next snapshot cannot lose acknowledged writes. Record
/// framing: u32 payload length ‖ u32 CRC-32C(payload) ‖ payload, all
/// little-endian. Replay stops cleanly at a torn tail (truncated or
/// CRC-failing final record) and reports genuine corruption elsewhere.
class WriteAheadLog {
 public:
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  ~WriteAheadLog();

  /// Opens (creating if absent) the log at `path` for appending.
  static Result<WriteAheadLog> Open(const std::string& path);

  /// Appends one record. The payload may be empty.
  Status Append(BytesView payload);

  /// Flushes buffered writes to the OS and fsyncs.
  Status Sync();

  /// Reads every intact record from `path` in order. A torn final record is
  /// tolerated (returns OK and reports how many bytes were dropped via
  /// `torn_bytes` if non-null); corruption elsewhere returns CORRUPTION.
  static Status Replay(const std::string& path,
                       const std::function<Status(BytesView)>& fn,
                       uint64_t* torn_bytes = nullptr);

  /// Truncates the log to zero length (after a snapshot subsumes it).
  Status Reset();

  uint64_t appended_records() const { return appended_records_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t appended_records_ = 0;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_WAL_H_
