#ifndef SSE_UTIL_CRC32_H_
#define SSE_UTIL_CRC32_H_

#include <cstdint>

#include "sse/util/bytes.h"

namespace sse {

/// CRC-32C (Castagnoli) checksum, used to detect torn or corrupted records
/// in the write-ahead log and snapshot files.
uint32_t Crc32c(BytesView data);

/// Incremental form: pass the previous return value as `seed` (start at 0).
uint32_t Crc32cExtend(uint32_t seed, BytesView data);

}  // namespace sse

#endif  // SSE_UTIL_CRC32_H_
