#ifndef SSE_OBS_METRICS_REGISTRY_H_
#define SSE_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sse/obs/histogram.h"

namespace sse::obs {

/// Process-wide metric namespace. Two kinds of series:
///
///  * Counters — monotonically increasing atomic u64s owned by the
///    registry. GetCounter() is idempotent per name, so any layer can
///    bump "sse_net_frames_sent_total" without plumbing a handle through
///    constructors. Incrementing is one relaxed fetch_add.
///  * Providers — gauge / histogram-snapshot callbacks registered by
///    components that already keep their own state (EngineMetrics, the
///    WAL). Registration is RAII so a destroyed engine stops being
///    scraped; several instances may register the same name (e.g. two
///    servers in one test process) and RenderPrometheus() merges them
///    into one series.
///
/// RenderPrometheus() emits the Prometheus text exposition format; this is
/// the payload served over the kMsgStats admin RPC.
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> value_{0};
  };

  /// RAII handle for a provider; unregisters on destruction. Movable so
  /// components can keep it as a member.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept;
    ~Registration() { Release(); }

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    void Release();

    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  static MetricsRegistry& Global();

  /// The process-wide counter named `name` (created on first use; `help`
  /// is kept from the first caller that supplies one). Pointers stay valid
  /// for the life of the process.
  Counter* GetCounter(const std::string& name, const std::string& help = "");

  /// Registers a gauge read via `fn` at scrape time. Same-name gauges sum.
  [[nodiscard]] Registration RegisterGauge(const std::string& name,
                                           std::function<double()> fn,
                                           const std::string& help = "");

  /// Registers a histogram scraped via `fn`. Same-name histograms merge
  /// via LatencyHistogram::Snapshot::Merge.
  [[nodiscard]] Registration RegisterHistogram(
      const std::string& name, std::function<LatencyHistogram::Snapshot()> fn,
      const std::string& help = "");

  /// Prometheus text format: counters, then gauges, then histograms
  /// (bucket `le` labels and sums in seconds, per convention).
  std::string RenderPrometheus() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A fresh registry, for tests that want isolation from Global().
  MetricsRegistry() = default;

 private:
  void Unregister(uint64_t id);

  struct GaugeEntry {
    std::string name;
    std::string help;
    std::function<double()> fn;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    std::function<LatencyHistogram::Snapshot()> fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>>
      counters_;
  std::map<uint64_t, GaugeEntry> gauges_;
  std::map<uint64_t, HistogramEntry> histograms_;
  uint64_t next_id_ = 1;
};

/// --- Per-op crypto timing -------------------------------------------------
///
/// Histograms for PRF / PRG / ElGamal latency, recorded inside the crypto
/// primitives but only when explicitly enabled: the gate is one relaxed
/// atomic load, so the default-off path stays within the observability
/// overhead budget even though these primitives run millions of times per
/// search.
struct CryptoTimers {
  LatencyHistogram prf;
  LatencyHistogram prg;
  LatencyHistogram elgamal_encrypt;
  LatencyHistogram elgamal_decrypt;

  static CryptoTimers& Global();
};

bool CryptoTimingEnabled();
void SetCryptoTimingEnabled(bool enabled);

/// RAII timer for one primitive call: reads the clock only when the gate
/// is on, records into `hist` on destruction.
class ScopedCryptoTimer {
 public:
  explicit ScopedCryptoTimer(LatencyHistogram& hist)
      : hist_(CryptoTimingEnabled() ? &hist : nullptr) {
    if (hist_ != nullptr) {
      start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    }
  }
  ~ScopedCryptoTimer() {
    if (hist_ != nullptr) {
      const int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      hist_->Record(static_cast<uint64_t>(now_ns - start_ns_));
    }
  }
  ScopedCryptoTimer(const ScopedCryptoTimer&) = delete;
  ScopedCryptoTimer& operator=(const ScopedCryptoTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  int64_t start_ns_ = 0;
};

}  // namespace sse::obs

#endif  // SSE_OBS_METRICS_REGISTRY_H_
