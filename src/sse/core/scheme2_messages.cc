#include "sse/core/scheme2_messages.h"

#include "sse/util/serde.h"

namespace sse::core {

namespace {

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected message type " +
                                 net::MessageTypeName(want) + ", got " +
                                 net::MessageTypeName(msg.type));
  }
  return Status::OK();
}

void PutSegment(BufferWriter& w, const S2Segment& seg) {
  w.PutBytes(seg.ciphertext);
  w.PutBytes(seg.tag);
}

Result<S2Segment> GetSegment(BufferReader& r) {
  S2Segment seg;
  SSE_ASSIGN_OR_RETURN(seg.ciphertext, r.GetBytes());
  SSE_ASSIGN_OR_RETURN(seg.tag, r.GetBytes());
  return seg;
}

void PutUpdateEntries(BufferWriter& w,
                      const std::vector<S2UpdateEntry>& entries) {
  w.PutVarint(entries.size());
  for (const S2UpdateEntry& e : entries) {
    w.PutBytes(e.token);
    PutSegment(w, e.segment);
  }
}

Result<std::vector<S2UpdateEntry>> GetUpdateEntries(BufferReader& r) {
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("entry count exceeds payload");
  }
  std::vector<S2UpdateEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    S2UpdateEntry e;
    SSE_ASSIGN_OR_RETURN(e.token, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(e.segment, GetSegment(r));
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

net::Message S2UpdateRequest::ToMessage() const {
  BufferWriter w;
  PutUpdateEntries(w, entries);
  PutWireDocuments(w, documents);
  return net::Message{kMsgS2UpdateRequest, w.TakeData()};
}

Result<S2UpdateRequest> S2UpdateRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2UpdateRequest));
  BufferReader r(msg.payload);
  S2UpdateRequest out;
  SSE_ASSIGN_OR_RETURN(out.entries, GetUpdateEntries(r));
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2UpdateAck::ToMessage() const {
  BufferWriter w;
  w.PutVarint(keywords_updated);
  return net::Message{kMsgS2UpdateAck, w.TakeData()};
}

Result<S2UpdateAck> S2UpdateAck::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2UpdateAck));
  BufferReader r(msg.payload);
  S2UpdateAck out;
  SSE_ASSIGN_OR_RETURN(out.keywords_updated, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2SearchRequest::ToMessage() const {
  BufferWriter w;
  w.PutBytes(token);
  w.PutBytes(chain_element);
  return net::Message{kMsgS2SearchRequest, w.TakeData()};
}

Result<S2SearchRequest> S2SearchRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2SearchRequest));
  BufferReader r(msg.payload);
  S2SearchRequest out;
  SSE_ASSIGN_OR_RETURN(out.token, r.GetBytes());
  SSE_ASSIGN_OR_RETURN(out.chain_element, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2SearchResult::ToMessage() const {
  BufferWriter w;
  w.PutBool(found);
  PutIdList(w, ids);
  PutWireDocuments(w, documents);
  w.PutVarint(chain_steps);
  w.PutVarint(segments_decrypted);
  return net::Message{kMsgS2SearchResult, w.TakeData()};
}

Result<S2SearchResult> S2SearchResult::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2SearchResult));
  BufferReader r(msg.payload);
  S2SearchResult out;
  SSE_ASSIGN_OR_RETURN(out.found, r.GetBool());
  SSE_ASSIGN_OR_RETURN(out.ids, GetIdList(r));
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_ASSIGN_OR_RETURN(out.chain_steps, r.GetVarint());
  SSE_ASSIGN_OR_RETURN(out.segments_decrypted, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2FetchAllRequest::ToMessage() const {
  return net::Message{kMsgS2FetchAllRequest, {}};
}

Result<S2FetchAllRequest> S2FetchAllRequest::FromMessage(
    const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2FetchAllRequest));
  if (!msg.payload.empty()) {
    return Status::ProtocolError("fetch-all request carries a payload");
  }
  return S2FetchAllRequest{};
}

net::Message S2FetchAllReply::ToMessage() const {
  BufferWriter w;
  w.PutVarint(keywords.size());
  for (const S2KeywordDump& kw : keywords) {
    w.PutBytes(kw.token);
    w.PutVarint(kw.segments.size());
    for (const S2Segment& seg : kw.segments) PutSegment(w, seg);
  }
  return net::Message{kMsgS2FetchAllReply, w.TakeData()};
}

Result<S2FetchAllReply> S2FetchAllReply::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2FetchAllReply));
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("keyword count exceeds payload");
  }
  S2FetchAllReply out;
  out.keywords.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    S2KeywordDump kw;
    SSE_ASSIGN_OR_RETURN(kw.token, r.GetBytes());
    uint64_t seg_count = 0;
    SSE_ASSIGN_OR_RETURN(seg_count, r.GetVarint());
    if (seg_count > r.remaining()) {
      return Status::Corruption("segment count exceeds payload");
    }
    kw.segments.reserve(static_cast<size_t>(seg_count));
    for (uint64_t j = 0; j < seg_count; ++j) {
      S2Segment seg;
      SSE_ASSIGN_OR_RETURN(seg, GetSegment(r));
      kw.segments.push_back(std::move(seg));
    }
    out.keywords.push_back(std::move(kw));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2ReinitRequest::ToMessage() const {
  BufferWriter w;
  PutUpdateEntries(w, entries);
  return net::Message{kMsgS2ReinitRequest, w.TakeData()};
}

Result<S2ReinitRequest> S2ReinitRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2ReinitRequest));
  BufferReader r(msg.payload);
  S2ReinitRequest out;
  SSE_ASSIGN_OR_RETURN(out.entries, GetUpdateEntries(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S2ReinitAck::ToMessage() const {
  BufferWriter w;
  w.PutVarint(keywords);
  return net::Message{kMsgS2ReinitAck, w.TakeData()};
}

Result<S2ReinitAck> S2ReinitAck::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS2ReinitAck));
  BufferReader r(msg.payload);
  S2ReinitAck out;
  SSE_ASSIGN_OR_RETURN(out.keywords, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace sse::core
