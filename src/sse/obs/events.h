#ifndef SSE_OBS_EVENTS_H_
#define SSE_OBS_EVENTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sse::obs {

/// Kinds of operator-significant state transitions. These are *events*,
/// not metrics: rare, discrete, and most useful as an ordered narrative
/// ("brownout entered, then the breaker opened, then the failover") when
/// reconstructing an incident after the fact.
enum class EventKind : uint8_t {
  kStorageDegraded = 0,  // fail-stop: mutations now refused (durable_server)
  kWalSalvage = 1,       // recovery quarantined corrupt WAL ranges
  kWalCompaction = 2,    // checkpoint cut + old segments deleted
  kBrownoutEnter = 3,    // admission began shedding (tcp server)
  kBrownoutExit = 4,     // shedding stopped; admitting normally again
  kBreakerOpen = 5,      // client-side circuit breaker opened an endpoint
  kBreakerClose = 6,     // breaker settled closed after a half-open probe
  kFailover = 7,         // client demoted its cached primary
  kPromotion = 8,        // follower promoted to primary (repl node)
  kFenced = 9,           // deposed primary fenced by a newer epoch
};

const char* EventKindName(EventKind kind);

/// One journal entry. `seq` is a process-lifetime monotonic stamp (dense:
/// no gaps), so a reader holding the last seen seq can tell exactly how
/// many events it missed even after the ring evicted them.
struct Event {
  uint64_t seq = 0;
  int64_t wall_ms = 0;  // wall-clock ms since the Unix epoch
  EventKind kind = EventKind::kStorageDegraded;
  std::string detail;
};

/// Bounded, seq-stamped, thread-safe journal of state transitions.
///
/// A fixed-capacity ring under one mutex: emission is rare (state
/// *transitions*, not per-request traffic), so a lock is the right tool —
/// it buys dense sequence numbers and a consistent ordered view, which
/// the lock-free span rings deliberately gave up. Every Emit also writes
/// one SSE_LOG(Info) line, so the journal narrative survives in logs even
/// when the process dies before anyone scrapes it.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit EventJournal(size_t capacity = kDefaultCapacity);

  /// The process-wide journal every subsystem hook emits into and the
  /// stats RPC serves.
  static EventJournal& Global();

  /// Appends one event; returns its sequence number.
  uint64_t Emit(EventKind kind, std::string detail);

  /// The newest `max_events` events, oldest first. Events older than the
  /// ring capacity are gone (their seqs show the gap).
  std::vector<Event> Tail(size_t max_events = kDefaultCapacity) const;

  /// Total events ever emitted (>= Tail().size()).
  uint64_t emitted() const;
  size_t capacity() const { return capacity_; }

  /// Drops all entries but keeps the sequence counter monotonic (tests
  /// isolate themselves without renumbering history).
  void Clear();

  /// JSON array of events (stable schema: seq, wall_ms, kind, detail).
  static std::string ToJson(const std::vector<Event>& events);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 1;
};

}  // namespace sse::obs

#endif  // SSE_OBS_EVENTS_H_
