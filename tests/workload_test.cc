#include "sse/phr/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace sse::phr {
namespace {

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  ZipfSampler sampler(10, 0.0);
  DeterministicRandom rng(1);
  std::map<size_t, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i], draws / 10, draws / 40) << "rank " << i;
  }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  ZipfSampler sampler(100, 1.2);
  DeterministicRandom rng(2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], 2000);
}

TEST(ZipfSamplerTest, BoundsRespected) {
  ZipfSampler sampler(5, 2.0);
  DeterministicRandom rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(sampler.Sample(rng), 5u);
}

TEST(PhrWorkloadTest, DeterministicInSeed) {
  PhrWorkload::Params params;
  params.num_patients = 5;
  params.visits_per_patient = 2;
  PhrWorkload a(params);
  PhrWorkload b(params);
  ASSERT_EQ(a.records().size(), 10u);
  ASSERT_EQ(b.records().size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.records()[i].ToText(), b.records()[i].ToText());
  }
  params.seed = 43;
  PhrWorkload c(params);
  bool any_differ = false;
  for (size_t i = 0; i < 10; ++i) {
    if (a.records()[i].ToText() != c.records()[i].ToText()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(PhrWorkloadTest, ChronicConditionPersistsAcrossVisits) {
  PhrWorkload::Params params;
  params.num_patients = 8;
  params.visits_per_patient = 3;
  PhrWorkload workload(params);
  const auto& records = workload.records();
  for (size_t p = 0; p < params.num_patients; ++p) {
    const std::string& chronic =
        records[p * params.visits_per_patient].conditions[0];
    for (size_t v = 1; v < params.visits_per_patient; ++v) {
      EXPECT_EQ(records[p * params.visits_per_patient + v].conditions[0],
                chronic);
    }
  }
}

TEST(PhrWorkloadTest, ToDocumentsAssignsSequentialIds) {
  PhrWorkload::Params params;
  params.num_patients = 3;
  params.visits_per_patient = 2;
  PhrWorkload workload(params);
  auto docs = workload.ToDocuments();
  ASSERT_EQ(docs.size(), 6u);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].id, i);
    EXPECT_FALSE(docs[i].keywords.empty());
    EXPECT_FALSE(docs[i].content.empty());
  }
}

TEST(GenerateDocumentsTest, ShapeAndDeterminism) {
  auto docs = GenerateDocuments(/*num_docs=*/50, /*vocabulary=*/20,
                                /*keywords_per_doc=*/5, /*skew=*/0.9,
                                /*seed=*/7);
  ASSERT_EQ(docs.size(), 50u);
  std::set<std::string> vocab;
  for (const auto& doc : docs) {
    EXPECT_EQ(doc.keywords.size(), 5u);
    std::set<std::string> unique(doc.keywords.begin(), doc.keywords.end());
    EXPECT_EQ(unique.size(), doc.keywords.size());  // no dups within a doc
    vocab.insert(doc.keywords.begin(), doc.keywords.end());
  }
  EXPECT_LE(vocab.size(), 20u);
  EXPECT_GT(vocab.size(), 10u);

  auto again = GenerateDocuments(50, 20, 5, 0.9, 7);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(again[i].keywords, docs[i].keywords);
    EXPECT_EQ(again[i].content, docs[i].content);
  }
}

TEST(GenerateDocumentsTest, FirstIdOffset) {
  auto docs = GenerateDocuments(5, 10, 2, 1.0, 1, 16, /*first_id=*/100);
  EXPECT_EQ(docs.front().id, 100u);
  EXPECT_EQ(docs.back().id, 104u);
}

TEST(GenerateDocumentsTest, TinyVocabularyTerminates) {
  // keywords_per_doc > vocabulary: generator must cap, not loop forever.
  auto docs = GenerateDocuments(3, 2, 5, 1.0, 1);
  for (const auto& doc : docs) {
    EXPECT_LE(doc.keywords.size(), 5u);
    EXPECT_GE(doc.keywords.size(), 1u);
  }
}

}  // namespace
}  // namespace sse::phr
