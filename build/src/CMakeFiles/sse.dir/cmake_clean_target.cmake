file(REMOVE_RECURSE
  "libsse.a"
)
