#include "sse/core/durable_server.h"

#include <chrono>
#include <utility>
#include <vector>

#include "sse/net/batch.h"
#include "sse/net/deadline.h"
#include "sse/obs/events.h"
#include "sse/obs/trace.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {

uint64_t NanosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
/// Snapshot wrapper magic, "SDR2": the blob is [magic ‖ u64 wal_seq ‖
/// bytes(inner state) ‖ bytes(reply cache)]. `wal_seq` is the WAL sequence
/// the checkpoint was cut at — recovery replays records with seq >= it, so
/// a snapshot generation plus the retained WAL segments always form a
/// consistent pair, whichever generation recovery ends up restoring.
constexpr uint32_t kDurableSnapshotMagic = 0x53445232;
}  // namespace

Result<DurableServer::SnapshotBlob> DurableServer::DecodeSnapshot(
    BytesView blob) {
  BufferReader r(blob);
  uint32_t magic = 0;
  SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kDurableSnapshotMagic) {
    return Status::Corruption("durable snapshot magic mismatch");
  }
  SnapshotBlob out;
  SSE_ASSIGN_OR_RETURN(out.wal_seq, r.GetU64());
  SSE_ASSIGN_OR_RETURN(out.state, r.GetBytes());
  SSE_ASSIGN_OR_RETURN(out.cache, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

Bytes DurableServer::EncodeSnapshot(const SnapshotBlob& contents) {
  BufferWriter w;
  w.PutU32(kDurableSnapshotMagic);
  w.PutU64(contents.wal_seq);
  w.PutBytes(contents.state);
  w.PutBytes(contents.cache);
  return w.TakeData();
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner) {
  return Open(dir, inner, Options{});
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner, Options options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner handler must be non-null");
  }
  std::unique_ptr<ReplyCache> cache;
  if (options.enable_reply_cache) {
    cache = std::make_unique<ReplyCache>(options.reply_cache);
  }
  const storage::WalOptions wal_options{options.env, options.wal_segment_bytes,
                                        options.wal_salvage};

  // 1. Restore the newest snapshot generation that verifies AND restores,
  // falling back generation by generation. The WAL is compacted only up to
  // the older retained generation's cut, so whichever generation survives,
  // the log still covers everything after it.
  storage::SnapshotSet snapshots(dir, options.env);
  std::vector<uint64_t> generations;
  SSE_ASSIGN_OR_RETURN(generations, snapshots.List());
  uint64_t min_seq = 1;
  bool restored = false;
  Status snapshot_error = Status::OK();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<Bytes> blob =
        storage::Snapshot::Read(snapshots.PathFor(*it), options.env);
    if (!blob.ok()) {
      snapshot_error = blob.status();
      continue;
    }
    Result<SnapshotBlob> contents = DecodeSnapshot(*blob);
    if (!contents.ok()) {
      snapshot_error = contents.status();
      continue;
    }
    const Status restore = inner->RestoreState(contents->state);
    if (!restore.ok()) {
      snapshot_error = restore;
      continue;
    }
    if (cache != nullptr && !contents->cache.empty()) {
      SSE_RETURN_IF_ERROR(cache->Restore(contents->cache));
    }
    min_seq = contents->wal_seq;
    restored = true;
    break;
  }
  if (!generations.empty() && !restored) {
    // Every generation is damaged. WAL-only replay is sound only when the
    // log still reaches back to sequence 1; the check below (lowest_seq)
    // enforces that, so fall through with min_seq = 1.
    min_seq = 1;
  }

  // 2. Replay journaled requests on top. Client-facing replies were already
  // delivered before the crash, but session-stamped ones are re-committed
  // into the reply cache so a post-recovery retry still dedups instead of
  // re-applying.
  storage::WalReplayReport report;
  Status replay = storage::WriteAheadLog::Replay(
      dir, wal_options, min_seq,
      [&](uint64_t /*seq*/, BytesView record) -> Status {
        Result<net::Message> msg = net::Message::Decode(record);
        if (!msg.ok()) return msg.status();
        Result<net::Message> reply = inner->Handle(msg.value());
        if (!reply.ok()) return reply.status();
        if (cache != nullptr && msg->has_session) {
          reply->EchoSession(*msg);
          cache->Commit(msg->client_id, msg->seq, *reply);
        }
        return Status::OK();
      },
      &report);
  SSE_RETURN_IF_ERROR(replay);
  if (report.quarantined_records > 0 || report.torn_bytes > 0) {
    obs::EventJournal::Global().Emit(
        obs::EventKind::kWalSalvage,
        "recovery salvaged WAL: " +
            std::to_string(report.quarantined_records) +
            " record(s) quarantined (" +
            std::to_string(report.quarantined_bytes) + " bytes), " +
            std::to_string(report.torn_bytes) + " torn byte(s) dropped");
  }
  if (report.lowest_seq != 0 && report.lowest_seq > min_seq) {
    // Records in [min_seq, lowest_seq) are gone; acknowledged updates
    // would be silently lost.
    return Status::Corruption(
        "WAL does not cover history since the restored snapshot (needs seq " +
        std::to_string(min_seq) + ", oldest segment starts at " +
        std::to_string(report.lowest_seq) +
        (restored ? ")" : "; no snapshot generation verified: " +
                              snapshot_error.ToString() + ")"));
  }

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(dir, wal_options);
  if (!wal.ok()) return wal.status();
  if (wal->next_seq() < min_seq) {
    // A snapshot from the "future" of this WAL: appends would reuse
    // sequence numbers below the checkpoint cut and be skipped by the
    // next recovery.
    return Status::Corruption("WAL is behind the restored snapshot (next seq " +
                              std::to_string(wal->next_seq()) +
                              " < checkpoint cut " + std::to_string(min_seq) +
                              ")");
  }
  auto server = std::unique_ptr<DurableServer>(
      new DurableServer(dir, inner, std::move(wal).value(), options,
                        std::move(cache), min_seq));
  auto& registry = obs::MetricsRegistry::Global();
  DurableServer* raw = server.get();
  server->registrations_.push_back(registry.RegisterHistogram(
      "sse_wal_append_seconds",
      [raw] { return raw->wal_append_hist_.Snap(); },
      "WAL record append latency (excluding fsync)"));
  server->registrations_.push_back(registry.RegisterHistogram(
      "sse_wal_fsync_seconds", [raw] { return raw->wal_fsync_hist_.Snap(); },
      "WAL fsync latency (leader syncs under group commit)"));
  server->registrations_.push_back(registry.RegisterHistogram(
      "sse_checkpoint_seconds", [raw] { return raw->checkpoint_hist_.Snap(); },
      "Whole-checkpoint duration (serialize + write + compact)"));
  server->registrations_.push_back(registry.RegisterGauge(
      "sse_storage_degraded",
      [raw] { return raw->degraded() ? 1.0 : 0.0; },
      "1 once a storage fault fail-stopped this server to read-only"));
  if (raw->reply_cache_ != nullptr) {
    server->registrations_.push_back(registry.RegisterGauge(
        "sse_engine_reply_cache_entries",
        [raw] {
          return static_cast<double>(raw->reply_cache_->entry_count());
        },
        "Replies retained in the at-most-once dedup cache"));
  }
  return server;
}

Status DurableServer::DegradedStatus() const {
  std::lock_guard<std::mutex> lock(degraded_mutex_);
  return Status::Unavailable("storage degraded (read-only): " +
                             degraded_cause_.ToString());
}

Status DurableServer::EnterDegraded(const Status& cause) {
  bool expected = false;
  if (degraded_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(degraded_mutex_);
      degraded_cause_ = cause;
    }
    obs::EventJournal::Global().Emit(
        obs::EventKind::kStorageDegraded,
        "fail-stop to read-only: " + cause.ToString());
    inner_->OnStorageDegraded(cause);
  }
  return DegradedStatus();
}

Status DurableServer::degraded_cause() const {
  std::lock_guard<std::mutex> lock(degraded_mutex_);
  return degraded_cause_;
}

Result<net::Message> DurableServer::Handle(const net::Message& request) {
  if (request.type == net::kMsgBatch) return HandleBatch(request);
  const bool mutating = inner_->IsMutating(request.type);
  // Fail-stop: once a storage fault has been observed, no further mutation
  // may touch the inner state (it could never be journaled, so it would
  // diverge from what recovery reconstructs). UNAVAILABLE is retryable —
  // a client can fail over or wait for the operator to restart us.
  if (mutating && degraded()) return DegradedStatus();
  // The caller's propagated deadline, checked before apply+journal: an
  // expired mutation must not cost an fsync (let alone a WAL record) for
  // a reply nobody is waiting on. Checked before the dedup Begin so no
  // in-flight cache entry needs unwinding. The retried call re-sends the
  // same seq and dedups normally.
  if (mutating && net::CurrentDeadline().Expired()) {
    return net::DeadlineExceededStatus("before durable apply");
  }
  // Only mutations go through the dedup table: re-executing a read-only
  // retry is harmless, and not recording search results keeps the cache
  // small and the fault-free overhead low.
  const bool dedup =
      mutating && reply_cache_ != nullptr && request.has_session;

  if (dedup) {
    net::Message cached;
    const ReplyCache::Outcome outcome =
        reply_cache_->Begin(request.client_id, request.seq, &cached);
    switch (outcome) {
      case ReplyCache::Outcome::kCached:
        // Retry of an answered call: serve the recorded reply; never
        // re-apply (nor re-journal) the request.
        cached.EchoSession(request);
        return cached;
      case ReplyCache::Outcome::kInFlight:
      case ReplyCache::Outcome::kTooOld:
        return ReplyCache::RefusalStatus(outcome);
      case ReplyCache::Outcome::kNew:
        break;
    }
  }

  if (mutating) {
    // The commit lock spans apply, journal AND the cache commit: a
    // checkpoint can then never capture the applied state without the
    // matching dedup entry (which would let a post-recovery retry
    // double-apply).
    std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);
    Result<net::Message> reply = HandleNew(request);
    if (dedup) {
      if (reply.ok()) {
        // Runs after the WAL record is durable (HandleNew returns
        // post-sync), so a cache entry never promises a lost update.
        reply->EchoSession(request);
        reply_cache_->Commit(request.client_id, request.seq, *reply);
      } else {
        reply_cache_->Abort(request.client_id, request.seq);
      }
    }
    return reply;
  }

  Result<net::Message> reply = inner_->Handle(request);
  // Stamped read-only calls still get their session echoed (the client
  // matches replies to calls by it) unless the inner handler — e.g. an
  // engine with its own cache — already did.
  if (reply.ok() && request.has_session && !reply->has_session) {
    reply->EchoSession(request);
  }
  return reply;
}

/// Precondition for mutating requests: caller holds commit_mutex_ shared.
Result<net::Message> DurableServer::HandleNew(const net::Message& request) {
  // Apply first, journal second, reply last. Journaling a request the
  // handler would reject poisons the log (replay re-runs the rejection and
  // recovery fails), so only *accepted* mutations are written; because the
  // reply is not produced until the journal entry is durable, an
  // acknowledged update can never be lost. A crash between apply and
  // append loses only an unacknowledged update.
  Result<net::Message> reply = inner_->Handle(request);
  if (!reply.ok()) return reply;
  uint64_t my_seq = 0;
  uint64_t my_wal_seq = 0;
  bool synced_inline = false;
  {
    obs::ScopedSpan append_span("wal.append", obs::ParentFor(request));
    std::lock_guard<std::mutex> lock(wal_mutex_);
    const auto t0 = std::chrono::steady_clock::now();
    const Bytes encoded = request.Encode();
    const Status appended = wal_->Append(encoded);
    wal_append_hist_.Record(NanosSince(t0));
    if (!appended.ok()) return EnterDegraded(appended);
    my_seq = ++appended_seq_;
    my_wal_seq = wal_->next_seq() - 1;
    if (options_.shipper != nullptr) {
      options_.shipper->OnAppend(my_wal_seq, encoded);
    }
    append_span.Annotate("wal_seq", my_seq);
    if (options_.sync_every_append && !options_.group_commit) {
      // Per-append-fsync baseline: sync inline under the WAL mutex.
      const auto sync_t0 = std::chrono::steady_clock::now();
      const Status synced = wal_->Sync();
      wal_fsync_hist_.Record(NanosSince(sync_t0));
      if (!synced.ok()) return EnterDegraded(synced);
      synced_seq_ = appended_seq_;
      ++syncs_performed_;
      synced_inline = true;
    }
  }
  if (!synced_inline && options_.sync_every_append) {
    const Status synced = SyncUpTo(my_seq);
    if (!synced.ok()) return EnterDegraded(synced);
  }
  // Ack-mode gate: in wait-one mode the shipper blocks (bounded) until a
  // follower acknowledged this sequence, so the reply implies replication.
  if (options_.shipper != nullptr && options_.sync_every_append) {
    options_.shipper->WaitReplicated(my_wal_seq);
  }
  return reply;
}

Result<net::Message> DurableServer::HandleBatch(const net::Message& request) {
  net::BatchRequest batch;
  SSE_ASSIGN_OR_RETURN(batch, net::BatchRequest::FromMessage(request));
  const size_t n = batch.ops.size();

  // One shared commit-lock span for the whole envelope: a checkpoint can
  // never slice between a sub-op's apply and its journal record.
  std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);

  // Envelope deadline, re-checked at every sub-op: once it expires the
  // rest of the batch is refused per-op — completed neighbors keep their
  // committed outcomes, refused ones never reach the WAL.
  const net::Deadline batch_deadline = net::CurrentDeadline();

  // Sub-ops whose cache commit is deferred until the group sync lands.
  struct PendingCommit {
    size_t index;
    uint64_t seq;
  };
  std::vector<net::Message> outs(n);
  std::vector<PendingCommit> pending;
  uint64_t max_wal_seq = 0;
  uint64_t max_ship_seq = 0;
  bool need_sync = false;

  for (size_t i = 0; i < n; ++i) {
    net::Message sub;
    sub.type = batch.ops[i].type;
    sub.payload = std::move(batch.ops[i].payload);
    if (request.has_session) {
      // (envelope client, op seq) is the op's dedup identity; it is stable
      // across retried envelopes, which is what makes a partial batch
      // retry apply each sub-op exactly once.
      sub.StampSession(request.client_id, batch.ops[i].seq);
    }
    if (sub.type == net::kMsgBatch) {
      outs[i] = net::MakeErrorMessage(
          Status::InvalidArgument("batch envelopes cannot nest"));
      continue;
    }
    if (batch_deadline.Expired()) {
      outs[i] = net::MakeErrorMessage(
          net::DeadlineExceededStatus("mid-batch, before durable apply"));
      continue;
    }

    const bool mutating = inner_->IsMutating(sub.type);
    if (mutating && degraded()) {
      // Fail-stop mid-envelope too: earlier sub-ops may have committed,
      // but from the first storage fault on, nothing touches the state.
      outs[i] = net::MakeErrorMessage(DegradedStatus());
      continue;
    }
    const bool dedup =
        mutating && reply_cache_ != nullptr && sub.has_session;
    if (dedup) {
      net::Message cached;
      const ReplyCache::Outcome outcome =
          reply_cache_->Begin(sub.client_id, sub.seq, &cached);
      if (outcome == ReplyCache::Outcome::kCached) {
        cached.EchoSession(sub);
        outs[i] = std::move(cached);
        continue;
      }
      if (outcome != ReplyCache::Outcome::kNew) {
        outs[i] = net::MakeErrorMessage(ReplyCache::RefusalStatus(outcome));
        continue;
      }
    }

    Result<net::Message> reply = inner_->Handle(sub);
    if (!reply.ok()) {
      // Rejected without a state change; a retried envelope may re-run it.
      if (dedup) reply_cache_->Abort(sub.client_id, sub.seq);
      outs[i] = net::MakeErrorMessage(reply.status());
      continue;
    }
    if (mutating) {
      // Journal the accepted sub-op as its own stamped record — replay
      // cannot tell it from a standalone request — but defer the fsync to
      // one group sync after the loop.
      std::lock_guard<std::mutex> lock(wal_mutex_);
      const auto t0 = std::chrono::steady_clock::now();
      const Bytes encoded = sub.Encode();
      Status appended = wal_->Append(encoded);
      wal_append_hist_.Record(NanosSince(t0));
      if (!appended.ok()) {
        if (dedup) reply_cache_->Abort(sub.client_id, sub.seq);
        outs[i] = net::MakeErrorMessage(EnterDegraded(appended));
        continue;
      }
      max_wal_seq = ++appended_seq_;
      max_ship_seq = wal_->next_seq() - 1;
      if (options_.shipper != nullptr) {
        options_.shipper->OnAppend(max_ship_seq, encoded);
      }
      need_sync = true;
    }
    if (sub.has_session && !reply->has_session) reply->EchoSession(sub);
    outs[i] = std::move(reply).value();
    if (dedup) pending.push_back(PendingCommit{i, batch.ops[i].seq});
  }

  if (need_sync && options_.sync_every_append) {
    // Even with group_commit off, a batch pays one fsync — amortizing the
    // sync across the envelope is the point of the batch path.
    Status synced = SyncUpTo(max_wal_seq);
    if (!synced.ok()) {
      // Durability is unknown: withdraw the claims so retries re-resolve
      // against whatever state recovery reconstructs.
      const Status refusal = EnterDegraded(synced);
      for (const PendingCommit& p : pending) {
        reply_cache_->Abort(request.client_id, p.seq);
        outs[p.index] = net::MakeErrorMessage(refusal);
      }
      pending.clear();
    } else if (options_.shipper != nullptr) {
      options_.shipper->WaitReplicated(max_ship_seq);
    }
  }
  for (const PendingCommit& p : pending) {
    reply_cache_->Commit(request.client_id, p.seq, outs[p.index]);
  }

  net::BatchReply breply;
  breply.entries.reserve(n);
  for (net::Message& out : outs) {
    breply.entries.push_back(
        net::BatchReply::Entry{out.type, std::move(out.payload)});
  }
  net::Message reply = breply.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Status DurableServer::SyncUpTo(uint64_t seq) {
  std::unique_lock<std::mutex> lock(wal_mutex_);
  while (synced_seq_ < seq) {
    if (!sync_in_progress_) {
      // Become the leader: one fsync covers every record appended so far,
      // including those of the followers waiting behind us.
      sync_in_progress_ = true;
      const uint64_t target = appended_seq_;
      obs::ScopedSpan fsync_span("wal.fsync");
      fsync_span.Annotate("covers_up_to", target);
      const auto t0 = std::chrono::steady_clock::now();
      Status s = wal_->Sync();
      wal_fsync_hist_.Record(NanosSince(t0));
      sync_in_progress_ = false;
      if (!s.ok()) {
        sync_cv_.notify_all();
        return s;
      }
      if (target > synced_seq_) synced_seq_ = target;
      ++syncs_performed_;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock, [this, seq] {
        return synced_seq_ >= seq || !sync_in_progress_;
      });
    }
  }
  return Status::OK();
}

uint64_t DurableServer::wal_syncs() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return syncs_performed_;
}

uint64_t DurableServer::wal_next_seq() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_->next_seq();
}

uint64_t DurableServer::wal_records() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  const uint64_t next = wal_->next_seq();
  return next > last_checkpoint_seq_ ? next - last_checkpoint_seq_ : 0;
}

Status DurableServer::Checkpoint() {
  const auto t0 = std::chrono::steady_clock::now();
  obs::ScopedSpan checkpoint_span("wal.checkpoint");
  // Exclusive commit lock: no mutation is between apply and journal while
  // the snapshot is cut, so snapshot + compacted WAL is a consistent pair.
  std::unique_lock<std::shared_mutex> commit_lock(commit_mutex_);
  if (degraded()) return DegradedStatus();
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, inner_->SerializeState());
  uint64_t cut_seq = 0;
  uint64_t previous_cut = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    cut_seq = wal_->next_seq();
    previous_cut = last_checkpoint_seq_;
  }
  SnapshotBlob blob;
  blob.wal_seq = cut_seq;
  blob.state = std::move(state);
  blob.cache = reply_cache_ != nullptr ? reply_cache_->Serialize() : Bytes{};
  const Status written = snapshots_.WriteNext(EncodeSnapshot(blob));
  // A failed snapshot write (or its fsync) is a storage fault like any
  // other: fail-stop rather than risk pruning state we could not persist.
  if (!written.ok()) return EnterDegraded(written);
  std::lock_guard<std::mutex> lock(wal_mutex_);
  // Segments below the *previous* cut are no longer needed even by the
  // older retained generation; the new cut's segments must stay until the
  // next checkpoint makes this one the fallback.
  SSE_RETURN_IF_ERROR(wal_->CompactBefore(previous_cut));
  last_checkpoint_seq_ = cut_seq;
  obs::EventJournal::Global().Emit(
      obs::EventKind::kWalCompaction,
      "checkpoint cut at seq " + std::to_string(cut_seq) +
          "; segments below seq " + std::to_string(previous_cut) + " deleted");
  checkpoint_hist_.Record(NanosSince(t0));
  return Status::OK();
}

}  // namespace sse::core
