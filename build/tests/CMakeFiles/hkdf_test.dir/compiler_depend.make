# Empty compiler generated dependencies file for hkdf_test.
# This may be replaced when dependencies are built.
