#include "sse/core/wire_common.h"

namespace sse::core {

void PutWireDocuments(BufferWriter& w, const std::vector<WireDocument>& docs) {
  w.PutVarint(docs.size());
  for (const WireDocument& doc : docs) {
    w.PutVarint(doc.id);
    w.PutBytes(doc.ciphertext);
  }
}

Result<std::vector<WireDocument>> GetWireDocuments(BufferReader& r) {
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("document count exceeds payload size");
  }
  std::vector<WireDocument> docs;
  docs.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireDocument doc;
    SSE_ASSIGN_OR_RETURN(doc.id, r.GetVarint());
    SSE_ASSIGN_OR_RETURN(doc.ciphertext, r.GetBytes());
    docs.push_back(std::move(doc));
  }
  return docs;
}

void PutIdList(BufferWriter& w, const std::vector<uint64_t>& ids) {
  w.PutVarint(ids.size());
  for (uint64_t id : ids) w.PutVarint(id);
}

Result<std::vector<uint64_t>> GetIdList(BufferReader& r) {
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("id count exceeds payload size");
  }
  std::vector<uint64_t> ids;
  ids.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    ids.push_back(id);
  }
  return ids;
}

void PutBytesList(BufferWriter& w, const std::vector<Bytes>& items) {
  w.PutVarint(items.size());
  for (const Bytes& item : items) w.PutBytes(item);
}

Result<std::vector<Bytes>> GetBytesList(BufferReader& r) {
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("list count exceeds payload size");
  }
  std::vector<Bytes> items;
  items.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Bytes item;
    SSE_ASSIGN_OR_RETURN(item, r.GetBytes());
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace sse::core
