#include "sse/engine/scheme1_adapter.h"

#include <utility>

#include "sse/core/scheme1_messages.h"
#include "sse/engine/shard_router.h"

namespace sse::engine {

using core::S1NonceReply;
using core::S1NonceRequest;
using core::S1SearchFinish;
using core::S1SearchRequest;
using core::S1SearchResult;
using core::S1UpdateAck;
using core::S1UpdateRequest;

std::unique_ptr<SchemeShard> Scheme1Adapter::CreateShard() const {
  return std::make_unique<ServerShard<core::Scheme1Server>>(options_);
}

bool Scheme1Adapter::IsMutating(uint16_t msg_type) const {
  return msg_type == core::kMsgS1UpdateRequest;
}

LockMode Scheme1Adapter::LockModeFor(uint16_t msg_type) const {
  return msg_type == core::kMsgS1UpdateRequest ? LockMode::kExclusive
                                               : LockMode::kShared;
}

Result<RequestPlan> Scheme1Adapter::Route(const net::Message& request,
                                          size_t num_shards) const {
  RequestPlan plan;
  switch (request.type) {
    case core::kMsgS1NonceRequest: {
      S1NonceRequest req;
      SSE_ASSIGN_OR_RETURN(req, S1NonceRequest::FromMessage(request));
      std::vector<std::vector<size_t>> by_shard(num_shards);
      for (size_t i = 0; i < req.tokens.size(); ++i) {
        by_shard[ShardForToken(req.tokens[i], num_shards)].push_back(i);
      }
      for (size_t s = 0; s < num_shards; ++s) {
        if (by_shard[s].empty()) continue;
        S1NonceRequest sub;
        sub.tokens.reserve(by_shard[s].size());
        for (size_t idx : by_shard[s]) sub.tokens.push_back(req.tokens[idx]);
        plan.subs.push_back(
            SubRequest{s, sub.ToMessage(), std::move(by_shard[s])});
      }
      return plan;
    }
    case core::kMsgS1UpdateRequest: {
      S1UpdateRequest req;
      SSE_ASSIGN_OR_RETURN(req, S1UpdateRequest::FromMessage(request));
      std::vector<std::vector<size_t>> by_shard(num_shards);
      for (size_t i = 0; i < req.entries.size(); ++i) {
        by_shard[ShardForToken(req.entries[i].token, num_shards)].push_back(i);
      }
      for (size_t s = 0; s < num_shards; ++s) {
        if (by_shard[s].empty()) continue;
        S1UpdateRequest sub;
        sub.entries.reserve(by_shard[s].size());
        for (size_t idx : by_shard[s]) {
          sub.entries.push_back(std::move(req.entries[idx]));
        }
        plan.subs.push_back(
            SubRequest{s, sub.ToMessage(), std::move(by_shard[s])});
      }
      plan.documents = std::move(req.documents);
      return plan;
    }
    case core::kMsgS1SearchRequest: {
      S1SearchRequest req;
      SSE_ASSIGN_OR_RETURN(req, S1SearchRequest::FromMessage(request));
      plan.subs.push_back(
          SubRequest{ShardForToken(req.token, num_shards), request, {}});
      return plan;
    }
    case core::kMsgS1SearchFinish: {
      S1SearchFinish req;
      SSE_ASSIGN_OR_RETURN(req, S1SearchFinish::FromMessage(request));
      plan.subs.push_back(
          SubRequest{ShardForToken(req.token, num_shards), request, {}});
      plan.attach_documents = true;
      return plan;
    }
    default:
      // Forward unrecognized messages to shard 0 so the scheme server
      // produces its canonical protocol error.
      plan.subs.push_back(SubRequest{0, request, {}});
      return plan;
  }
}

Result<net::Message> Scheme1Adapter::Merge(const net::Message& request,
                                           const RequestPlan& plan,
                                           std::vector<net::Message> replies,
                                           const DocumentFetcher& fetch_docs)
    const {
  switch (request.type) {
    case core::kMsgS1NonceRequest: {
      size_t total = 0;
      for (const SubRequest& sub : plan.subs) total += sub.positions.size();
      S1NonceReply merged;
      merged.entries.resize(total);
      for (size_t i = 0; i < plan.subs.size(); ++i) {
        S1NonceReply part;
        SSE_ASSIGN_OR_RETURN(part, S1NonceReply::FromMessage(replies[i]));
        if (part.entries.size() != plan.subs[i].positions.size()) {
          return Status::Internal("shard nonce reply misaligned with plan");
        }
        for (size_t j = 0; j < part.entries.size(); ++j) {
          merged.entries[plan.subs[i].positions[j]] =
              std::move(part.entries[j]);
        }
      }
      return merged.ToMessage();
    }
    case core::kMsgS1UpdateRequest: {
      S1UpdateAck merged;
      for (net::Message& reply : replies) {
        S1UpdateAck ack;
        SSE_ASSIGN_OR_RETURN(ack, S1UpdateAck::FromMessage(reply));
        merged.keywords_updated += ack.keywords_updated;
      }
      return merged.ToMessage();
    }
    case core::kMsgS1SearchFinish: {
      S1SearchResult result;
      SSE_ASSIGN_OR_RETURN(result, S1SearchResult::FromMessage(replies.at(0)));
      std::vector<std::pair<uint64_t, Bytes>> fetched;
      SSE_ASSIGN_OR_RETURN(fetched, fetch_docs(result.ids));
      result.documents.clear();
      for (auto& [id, blob] : fetched) {
        result.documents.push_back(core::WireDocument{id, std::move(blob)});
      }
      return result.ToMessage();
    }
    default:
      // Single-shard request/reply (search round 1, forwarded unknowns).
      if (replies.size() != 1) {
        return Status::Internal("expected exactly one shard reply");
      }
      return std::move(replies[0]);
  }
}

}  // namespace sse::engine
