# Empty dependencies file for prg_test.
# This may be replaced when dependencies are built.
