# Empty compiler generated dependencies file for vault_admin.
# This may be replaced when dependencies are built.
