// Experiments F1-F4 — Figures 1-4: the message flows of both protocols.
//
// The paper's figures are message-sequence diagrams; this bench regenerates
// them as measured per-step transcripts: direction, message type and framed
// size for MetadataStorage (Figs. 1 and 3) and Search (Figs. 2 and 4) of
// both schemes.

#include <cstdio>

#include "bench_common.h"
#include "sse/net/channel.h"

namespace sse::bench {
namespace {

void PrintTranscript(const std::vector<net::Exchange>& transcript,
                     size_t from_index) {
  for (size_t i = from_index; i < transcript.size(); ++i) {
    const net::Exchange& ex = transcript[i];
    std::printf("  client -> server  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.request.type).c_str(),
                ex.request.WireSize());
    std::printf("  server -> client  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.reply.type).c_str(),
                ex.reply.WireSize());
  }
}

void Run(core::SystemKind kind, const char* update_fig, const char* search_fig) {
  DeterministicRandom rng(21);
  core::SystemConfig config = BenchConfig(/*max_documents=*/4096,
                                          /*chain_length=*/1024);
  config.channel.record_transcript = true;
  core::SseSystem sys = MustCreate(kind, config, &rng);

  // Seed one batch so the flows below hit existing keywords.
  auto seed = phr::GenerateDocuments(32, /*vocabulary=*/16,
                                     /*keywords_per_doc=*/4, 0.8, 9);
  MustOk(sys.client->Store(seed), "seed");
  sys.channel->ClearTranscript();

  std::printf("%s — MetadataStorage flow, %s (1 document, 4 keywords):\n",
              update_fig, std::string(core::SystemKindName(kind)).c_str());
  auto doc = phr::GenerateDocuments(1, 16, 4, 0.8, 77, 64, /*first_id=*/500);
  MustOk(sys.client->Store(doc), "update");
  PrintTranscript(sys.channel->transcript(), 0);
  const size_t after_update = sys.channel->transcript().size();

  std::printf("\n%s — Search flow, %s (keyword with postings):\n", search_fig,
              std::string(core::SystemKindName(kind)).c_str());
  MustValue(sys.client->Search(phr::SyntheticKeyword(0)), "search");
  PrintTranscript(sys.channel->transcript(), after_update);
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  std::printf(
      "Protocol flows (Figures 1-4). Each line is one framed message as it\n"
      "crossed the instrumented channel. ElGamal group: toy-512; production\n"
      "groups enlarge F(r) to ~0.6-1.2 KB (see bench_crypto).\n\n");
  sse::bench::Run(sse::core::SystemKind::kScheme1, "Figure 1", "Figure 2");
  sse::bench::Run(sse::core::SystemKind::kScheme2, "Figure 3", "Figure 4");
  return 0;
}
