#include "sse/core/padding.h"

#include <set>

namespace sse::core {

size_t PaddingPolicy::TargetFor(size_t real) const {
  switch (mode) {
    case Mode::kNone:
      return real;
    case Mode::kFixedBucket: {
      if (bucket == 0) return real;
      const size_t rounded = ((real + bucket - 1) / bucket) * bucket;
      return rounded == 0 ? bucket : rounded;
    }
    case Mode::kPowerOfTwo: {
      size_t target = 1;
      while (target < real) target <<= 1;
      return target;
    }
  }
  return real;
}

PaddedClient::PaddedClient(SseClientInterface* inner, PaddingPolicy policy,
                           RandomSource* rng)
    : inner_(inner), policy_(policy), rng_(rng) {}

Result<std::string> PaddedClient::MakeDecoy() {
  Bytes suffix;
  SSE_ASSIGN_OR_RETURN(suffix, rng_->Generate(16));
  return std::string(kDecoyPrefix) + HexEncode(suffix);
}

Status PaddedClient::Store(const std::vector<Document>& docs) {
  if (docs.empty() || policy_.mode == PaddingPolicy::Mode::kNone) {
    return inner_->Store(docs);
  }
  // Count the batch's real unique keywords.
  std::set<std::string> unique;
  for (const Document& doc : docs) {
    unique.insert(doc.keywords.begin(), doc.keywords.end());
  }
  const size_t target = policy_.TargetFor(unique.size());
  if (target <= unique.size()) return inner_->Store(docs);

  // Attach decoys to the last document so they travel in the same update.
  std::vector<Document> padded = docs;
  for (size_t i = unique.size(); i < target; ++i) {
    std::string decoy;
    SSE_ASSIGN_OR_RETURN(decoy, MakeDecoy());
    padded.back().keywords.push_back(std::move(decoy));
    ++decoys_added_;
  }
  return inner_->Store(padded);
}

Result<SearchOutcome> PaddedClient::Search(std::string_view keyword) {
  return inner_->Search(keyword);
}

Status PaddedClient::FakeUpdate(const std::vector<std::string>& keywords) {
  if (policy_.mode == PaddingPolicy::Mode::kNone) {
    return inner_->FakeUpdate(keywords);
  }
  const size_t target = policy_.TargetFor(keywords.size());
  std::vector<std::string> padded = keywords;
  while (padded.size() < target) {
    std::string decoy;
    SSE_ASSIGN_OR_RETURN(decoy, MakeDecoy());
    padded.push_back(std::move(decoy));
    ++decoys_added_;
  }
  return inner_->FakeUpdate(padded);
}

}  // namespace sse::core
