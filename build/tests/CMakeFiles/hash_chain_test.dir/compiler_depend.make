# Empty compiler generated dependencies file for hash_chain_test.
# This may be replaced when dependencies are built.
