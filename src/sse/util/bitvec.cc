#include "sse/util/bitvec.h"

#include <bit>

namespace sse {

namespace {
constexpr size_t kWordBits = 64;

size_t WordsFor(size_t num_bits) { return (num_bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVec::BitVec(size_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

Result<BitVec> BitVec::FromPositions(size_t num_bits,
                                     const std::vector<uint64_t>& positions) {
  BitVec v(num_bits);
  for (uint64_t pos : positions) {
    if (pos >= num_bits) {
      return Status::OutOfRange("bit position " + std::to_string(pos) +
                                " >= size " + std::to_string(num_bits));
    }
    v.Set(static_cast<size_t>(pos));
  }
  return v;
}

Result<BitVec> BitVec::FromBytes(size_t num_bits, BytesView bytes) {
  const size_t want = (num_bits + 7) / 8;
  if (bytes.size() != want) {
    return Status::InvalidArgument("bitmap byte size mismatch: got " +
                                   std::to_string(bytes.size()) + ", want " +
                                   std::to_string(want));
  }
  BitVec v(num_bits);
  for (size_t i = 0; i < bytes.size(); ++i) {
    v.words_[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  // Padding bits beyond num_bits must be zero; otherwise two logically
  // equal bitmaps could have different serializations.
  BitVec check = v;
  check.ClearPadding();
  if (check.words_ != v.words_) {
    return Status::InvalidArgument("nonzero padding bits in bitmap");
  }
  return v;
}

bool BitVec::Get(size_t i) const {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::Set(size_t i, bool value) {
  const uint64_t mask = uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::Flip(size_t i) { words_[i / kWordBits] ^= uint64_t{1} << (i % kWordBits); }

void BitVec::Clear() { std::fill(words_.begin(), words_.end(), 0); }

void BitVec::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordsFor(num_bits), 0);
  ClearPadding();
}

size_t BitVec::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

std::vector<uint64_t> BitVec::Ones() const {
  std::vector<uint64_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint64_t>(wi) * kWordBits + bit);
      w &= w - 1;
    }
  }
  return out;
}

Status BitVec::XorWith(const BitVec& other) {
  if (num_bits_ != other.num_bits_) {
    return Status::InvalidArgument("BitVec XOR size mismatch");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return Status::OK();
}

Bytes BitVec::ToBytes() const {
  Bytes out((num_bits_ + 7) / 8, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(words_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

std::string BitVec::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

bool BitVec::operator==(const BitVec& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

void BitVec::ClearPadding() {
  if (words_.empty()) return;
  const size_t used = num_bits_ % kWordBits;
  if (used != 0) {
    words_.back() &= (uint64_t{1} << used) - 1;
  }
}

}  // namespace sse
