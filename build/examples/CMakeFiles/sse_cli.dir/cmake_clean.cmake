file(REMOVE_RECURSE
  "CMakeFiles/sse_cli.dir/sse_cli.cpp.o"
  "CMakeFiles/sse_cli.dir/sse_cli.cpp.o.d"
  "sse_cli"
  "sse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
