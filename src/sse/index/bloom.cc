#include "sse/index/bloom.h"

#include <cmath>

#include "sse/crypto/sha256.h"

namespace sse::index {

namespace {

struct HashPair {
  uint64_t h1;
  uint64_t h2;
};

Result<HashPair> HashItem(BytesView item) {
  Bytes digest;
  SSE_ASSIGN_OR_RETURN(digest, crypto::Sha256(item));
  HashPair out{0, 0};
  for (int i = 0; i < 8; ++i) {
    out.h1 |= static_cast<uint64_t>(digest[i]) << (8 * i);
    out.h2 |= static_cast<uint64_t>(digest[8 + i]) << (8 * i);
  }
  // h2 must be odd so the probe sequence covers the table well.
  out.h2 |= 1;
  return out;
}

}  // namespace

Result<BloomFilter> BloomFilter::Create(size_t num_bits, size_t num_hashes) {
  if (num_bits < 8) return Status::InvalidArgument("bloom needs >= 8 bits");
  if (num_hashes < 1 || num_hashes > 32) {
    return Status::InvalidArgument("bloom num_hashes must be in [1, 32]");
  }
  return BloomFilter(BitVec(num_bits), num_hashes);
}

Result<BloomFilter> BloomFilter::CreateForCapacity(size_t capacity,
                                                   double false_positive_rate) {
  if (capacity == 0) return Status::InvalidArgument("bloom capacity is zero");
  if (false_positive_rate <= 0.0 || false_positive_rate >= 1.0) {
    return Status::InvalidArgument("false positive rate must be in (0, 1)");
  }
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(capacity) *
                   std::log(false_positive_rate) / (ln2 * ln2);
  const double k = (m / static_cast<double>(capacity)) * ln2;
  size_t num_bits = static_cast<size_t>(std::ceil(m));
  size_t num_hashes = static_cast<size_t>(std::round(k));
  if (num_bits < 8) num_bits = 8;
  if (num_hashes < 1) num_hashes = 1;
  if (num_hashes > 32) num_hashes = 32;
  return Create(num_bits, num_hashes);
}

Result<BloomFilter> BloomFilter::FromBits(BitVec bits, size_t num_hashes) {
  if (bits.size() < 8) return Status::InvalidArgument("bloom needs >= 8 bits");
  if (num_hashes < 1 || num_hashes > 32) {
    return Status::InvalidArgument("bloom num_hashes must be in [1, 32]");
  }
  return BloomFilter(std::move(bits), num_hashes);
}

Status BloomFilter::Insert(BytesView item) {
  HashPair h{0, 0};
  SSE_ASSIGN_OR_RETURN(h, HashItem(item));
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = (h.h1 + i * h.h2) % bits_.size();
    bits_.Set(static_cast<size_t>(pos));
  }
  ++inserted_;
  return Status::OK();
}

Result<bool> BloomFilter::Contains(BytesView item) const {
  HashPair h{0, 0};
  SSE_ASSIGN_OR_RETURN(h, HashItem(item));
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = (h.h1 + i * h.h2) % bits_.size();
    if (!bits_.Get(static_cast<size_t>(pos))) return false;
  }
  return true;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double m = static_cast<double>(bits_.size());
  const double k = static_cast<double>(num_hashes_);
  const double n = static_cast<double>(inserted_);
  const double fill = 1.0 - std::exp(-k * n / m);
  return std::pow(fill, k);
}

}  // namespace sse::index
