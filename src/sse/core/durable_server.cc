#include "sse/core/durable_server.h"

#include "sse/util/serde.h"

namespace sse::core {

namespace {
std::string SnapshotPath(const std::string& dir) { return dir + "/state.snap"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

/// Snapshot wrapper magic, "SDRS": the blob is [magic ‖ bytes(inner state)
/// ‖ bytes(reply cache)]. Snapshots written before the reply cache existed
/// are the bare inner state and restore with an empty cache.
constexpr uint32_t kDurableSnapshotMagic = 0x53445253;
}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner) {
  return Open(dir, inner, Options{});
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner, Options options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner handler must be non-null");
  }
  std::unique_ptr<ReplyCache> cache;
  if (options.enable_reply_cache) {
    cache = std::make_unique<ReplyCache>(options.reply_cache);
  }
  // 1. Restore the last checkpoint, if any.
  if (storage::Snapshot::Exists(SnapshotPath(dir))) {
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, storage::Snapshot::Read(SnapshotPath(dir)));
    BufferReader r(blob);
    bool wrapped = false;
    if (blob.size() >= 4) {
      uint32_t magic = 0;
      SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
      wrapped = magic == kDurableSnapshotMagic;
    }
    if (wrapped) {
      Bytes state;
      SSE_ASSIGN_OR_RETURN(state, r.GetBytes());
      Bytes cache_bytes;
      SSE_ASSIGN_OR_RETURN(cache_bytes, r.GetBytes());
      SSE_RETURN_IF_ERROR(r.ExpectEnd());
      SSE_RETURN_IF_ERROR(inner->RestoreState(state));
      if (cache != nullptr && !cache_bytes.empty()) {
        SSE_RETURN_IF_ERROR(cache->Restore(cache_bytes));
      }
    } else {
      SSE_RETURN_IF_ERROR(inner->RestoreState(blob));
    }
  }
  // 2. Replay journaled requests on top. Client-facing replies were already
  // delivered before the crash, but session-stamped ones are re-committed
  // into the reply cache so a post-recovery retry still dedups instead of
  // re-applying.
  Status replay = storage::WriteAheadLog::Replay(
      WalPath(dir), [&](BytesView record) -> Status {
        Result<net::Message> msg = net::Message::Decode(record);
        if (!msg.ok()) return msg.status();
        Result<net::Message> reply = inner->Handle(msg.value());
        if (!reply.ok()) return reply.status();
        if (cache != nullptr && msg->has_session) {
          reply->EchoSession(*msg);
          cache->Commit(msg->client_id, msg->seq, *reply);
        }
        return Status::OK();
      });
  SSE_RETURN_IF_ERROR(replay);

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<DurableServer>(
      new DurableServer(dir, inner, std::move(wal).value(), options,
                        std::move(cache)));
}

Result<net::Message> DurableServer::Handle(const net::Message& request) {
  const bool mutating = inner_->IsMutating(request.type);
  // Only mutations go through the dedup table: re-executing a read-only
  // retry is harmless, and not recording search results keeps the cache
  // small and the fault-free overhead low.
  const bool dedup =
      mutating && reply_cache_ != nullptr && request.has_session;

  if (dedup) {
    net::Message cached;
    const ReplyCache::Outcome outcome =
        reply_cache_->Begin(request.client_id, request.seq, &cached);
    switch (outcome) {
      case ReplyCache::Outcome::kCached:
        // Retry of an answered call: serve the recorded reply; never
        // re-apply (nor re-journal) the request.
        cached.EchoSession(request);
        return cached;
      case ReplyCache::Outcome::kInFlight:
      case ReplyCache::Outcome::kTooOld:
        return ReplyCache::RefusalStatus(outcome);
      case ReplyCache::Outcome::kNew:
        break;
    }
  }

  if (mutating) {
    // The commit lock spans apply, journal AND the cache commit: a
    // checkpoint can then never capture the applied state without the
    // matching dedup entry (which would let a post-recovery retry
    // double-apply).
    std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);
    Result<net::Message> reply = HandleNew(request);
    if (dedup) {
      if (reply.ok()) {
        // Runs after the WAL record is durable (HandleNew returns
        // post-sync), so a cache entry never promises a lost update.
        reply->EchoSession(request);
        reply_cache_->Commit(request.client_id, request.seq, *reply);
      } else {
        reply_cache_->Abort(request.client_id, request.seq);
      }
    }
    return reply;
  }

  Result<net::Message> reply = inner_->Handle(request);
  // Stamped read-only calls still get their session echoed (the client
  // matches replies to calls by it) unless the inner handler — e.g. an
  // engine with its own cache — already did.
  if (reply.ok() && request.has_session && !reply->has_session) {
    reply->EchoSession(request);
  }
  return reply;
}

/// Precondition for mutating requests: caller holds commit_mutex_ shared.
Result<net::Message> DurableServer::HandleNew(const net::Message& request) {
  // Apply first, journal second, reply last. Journaling a request the
  // handler would reject poisons the log (replay re-runs the rejection and
  // recovery fails), so only *accepted* mutations are written; because the
  // reply is not produced until the journal entry is durable, an
  // acknowledged update can never be lost. A crash between apply and
  // append loses only an unacknowledged update.
  Result<net::Message> reply = inner_->Handle(request);
  if (!reply.ok()) return reply;
  uint64_t my_seq = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    SSE_RETURN_IF_ERROR(wal_->Append(request.Encode()));
    my_seq = ++appended_seq_;
    if (options_.sync_every_append && !options_.group_commit) {
      // Per-append-fsync baseline: sync inline under the WAL mutex.
      SSE_RETURN_IF_ERROR(wal_->Sync());
      synced_seq_ = appended_seq_;
      ++syncs_performed_;
      return reply;
    }
  }
  if (options_.sync_every_append) {
    SSE_RETURN_IF_ERROR(SyncUpTo(my_seq));
  }
  return reply;
}

Status DurableServer::SyncUpTo(uint64_t seq) {
  std::unique_lock<std::mutex> lock(wal_mutex_);
  while (synced_seq_ < seq) {
    if (!sync_in_progress_) {
      // Become the leader: one fsync covers every record appended so far,
      // including those of the followers waiting behind us.
      sync_in_progress_ = true;
      const uint64_t target = appended_seq_;
      lock.unlock();
      Status s = wal_->Sync();  // stdio FILE* calls are internally locked
      lock.lock();
      sync_in_progress_ = false;
      if (!s.ok()) {
        sync_cv_.notify_all();
        return s;
      }
      if (target > synced_seq_) synced_seq_ = target;
      ++syncs_performed_;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock, [this, seq] {
        return synced_seq_ >= seq || !sync_in_progress_;
      });
    }
  }
  return Status::OK();
}

uint64_t DurableServer::wal_syncs() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return syncs_performed_;
}

Status DurableServer::Checkpoint() {
  // Exclusive commit lock: no mutation is between apply and journal while
  // the snapshot is cut, so snapshot + truncated WAL is a consistent pair.
  std::unique_lock<std::shared_mutex> commit_lock(commit_mutex_);
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, inner_->SerializeState());
  BufferWriter w;
  w.PutU32(kDurableSnapshotMagic);
  w.PutBytes(state);
  w.PutBytes(reply_cache_ != nullptr ? reply_cache_->Serialize() : Bytes{});
  SSE_RETURN_IF_ERROR(
      storage::Snapshot::Write(SnapshotPath(dir_), w.TakeData()));
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_->Reset();
}

}  // namespace sse::core
