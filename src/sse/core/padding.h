#ifndef SSE_CORE_PADDING_H_
#define SSE_CORE_PADDING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sse/core/types.h"
#include "sse/util/random.h"

namespace sse::core {

/// Update-size padding policy (automating §5.7's fake-update tricks).
///
/// Every update batch reveals its unique-keyword count to the server.
/// Padding rounds that count up to a coarser value by injecting decoy
/// keywords — names drawn from a reserved namespace no application
/// keyword can collide with — so the observer sees only the padded size.
struct PaddingPolicy {
  enum class Mode {
    kNone,         // pass through
    kFixedBucket,  // pad every batch up to the next multiple of `bucket`
    kPowerOfTwo,   // pad up to the next power of two
  };
  Mode mode = Mode::kNone;
  size_t bucket = 8;

  /// The padded keyword count for a batch that really touches `real`.
  size_t TargetFor(size_t real) const;
};

/// Decorator over any SSE client that applies a PaddingPolicy to every
/// Store batch. Decoy keywords ride inside the same protocol run (the same
/// update message) as the real ones, so the wire shape is exactly a larger
/// batch. Decoys are attached to a real document of the batch; since their
/// names are never searched, the extra postings are unreachable.
class PaddedClient : public SseClientInterface {
 public:
  /// `inner` and `rng` must outlive this wrapper.
  PaddedClient(SseClientInterface* inner, PaddingPolicy policy,
               RandomSource* rng);

  Status Store(const std::vector<Document>& docs) override;
  Result<SearchOutcome> Search(std::string_view keyword) override;
  Status FakeUpdate(const std::vector<std::string>& keywords) override;
  std::string name() const override { return inner_->name() + "+padded"; }

  /// Total decoy keywords injected so far (bandwidth cost of the policy).
  uint64_t decoys_added() const { return decoys_added_; }

  /// The reserved decoy namespace prefix ('\x01' cannot appear in
  /// tokenizer output or tags).
  static constexpr char kDecoyPrefix[] = "\x01pad:";

 private:
  Result<std::string> MakeDecoy();

  SseClientInterface* inner_;
  PaddingPolicy policy_;
  RandomSource* rng_;
  uint64_t decoys_added_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_PADDING_H_
