#ifndef SSE_UTIL_RESULT_H_
#define SSE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "sse/util/status.h"

namespace sse {

/// `Result<T>` is either a value of type `T` or a non-OK `Status`
/// (abseil `StatusOr` idiom). It converts implicitly from both so that
/// `return Status::NotFound(...)` and `return value;` both work inside a
/// `Result`-returning function.
template <typename T>
class Result {
 public:
  /// Intentionally implicit, mirroring absl::StatusOr: allows
  /// `return value;` from Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Intentionally implicit: allows `return Status::NotFound(...);`.
  /// `status` must be non-OK; an OK status here is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagates the error if any, otherwise
/// assigns the value into `lhs`, which must already be declared.
#define SSE_ASSIGN_OR_RETURN(lhs, rexpr)              \
  do {                                                \
    auto _sse_result = (rexpr);                       \
    if (!_sse_result.ok()) return _sse_result.status(); \
    lhs = std::move(_sse_result).value();             \
  } while (0)

}  // namespace sse

#endif  // SSE_UTIL_RESULT_H_
