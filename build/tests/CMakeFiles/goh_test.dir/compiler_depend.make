# Empty compiler generated dependencies file for goh_test.
# This may be replaced when dependencies are built.
