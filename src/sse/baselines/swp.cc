#include "sse/baselines/swp.h"

#include <algorithm>

#include "sse/crypto/hkdf.h"
#include "sse/util/serde.h"

namespace sse::baselines {

namespace {

constexpr size_t kBlockSize = 32;
constexpr size_t kHalfSize = 16;

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected " + net::MessageTypeName(want) +
                                 ", got " + net::MessageTypeName(msg.type));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- server --

Result<net::Message> SwpServer::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgSwpStore:
      return HandleStore(request);
    case kMsgSwpSearch:
      return HandleSearch(request);
    default:
      return Status::ProtocolError("swp server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> SwpServer::HandleStore(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgSwpStore));
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("document count exceeds payload");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    Bytes word_blocks;
    SSE_ASSIGN_OR_RETURN(word_blocks, r.GetBytes());
    if (word_blocks.size() % kBlockSize != 0) {
      return Status::ProtocolError("word block payload not a block multiple");
    }
    SSE_RETURN_IF_ERROR(docs_.Put(id, std::move(blob)));
    blocks_.emplace_back(id, std::move(word_blocks));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  BufferWriter w;
  w.PutVarint(count);
  return net::Message{kMsgSwpStoreAck, w.TakeData()};
}

Result<net::Message> SwpServer::HandleSearch(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgSwpSearch));
  BufferReader r(msg.payload);
  Bytes x;
  SSE_ASSIGN_OR_RETURN(x, r.GetBytes());
  Bytes check_key;
  SSE_ASSIGN_OR_RETURN(check_key, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (x.size() != kBlockSize) {
    return Status::ProtocolError("word ciphertext must be 32 bytes");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(check_key);
  if (!prf.ok()) return prf.status();

  // The linear scan: every block of every document.
  std::vector<uint64_t> ids;
  for (const auto& [id, doc_blocks] : blocks_) {
    bool matched = false;
    for (size_t off = 0; off + kBlockSize <= doc_blocks.size();
         off += kBlockSize) {
      ++blocks_scanned_;
      uint8_t a[kHalfSize];
      uint8_t b[kHalfSize];
      for (size_t j = 0; j < kHalfSize; ++j) {
        a[j] = doc_blocks[off + j] ^ x[j];
        b[j] = doc_blocks[off + kHalfSize + j] ^ x[kHalfSize + j];
      }
      Bytes tag;
      SSE_ASSIGN_OR_RETURN(tag, prf->Eval(BytesView(a, kHalfSize)));
      if (ConstantTimeEqual(BytesView(tag.data(), kHalfSize),
                            BytesView(b, kHalfSize))) {
        matched = true;
        break;
      }
    }
    if (matched) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  BufferWriter w;
  core::PutIdList(w, ids);
  std::vector<core::WireDocument> wire_docs;
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(ids));
  for (const auto& [id, blob] : fetched) {
    wire_docs.push_back(core::WireDocument{id, blob});
  }
  core::PutWireDocuments(w, wire_docs);
  return net::Message{kMsgSwpSearchResult, w.TakeData()};
}

Result<Bytes> SwpServer::SerializeState() const {
  BufferWriter w;
  w.PutVarint(blocks_.size());
  for (const auto& [id, doc_blocks] : blocks_) {
    w.PutVarint(id);
    w.PutBytes(doc_blocks);
  }
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status SwpServer::RestoreState(BytesView data) {
  decltype(blocks_) blocks;
  storage::DocumentStore docs;
  BufferReader r(data);
  uint64_t block_count = 0;
  SSE_ASSIGN_OR_RETURN(block_count, r.GetVarint());
  for (uint64_t i = 0; i < block_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes doc_blocks;
    SSE_ASSIGN_OR_RETURN(doc_blocks, r.GetBytes());
    blocks.emplace_back(id, std::move(doc_blocks));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  blocks_ = std::move(blocks);
  docs_ = std::move(docs);
  return Status::OK();
}

bool SwpServer::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgSwpStore;
}

// ---------------------------------------------------------------- client --

SwpClient::SwpClient(crypto::Prf word_prf, crypto::Prf check_prf,
                     crypto::Aead aead, net::Channel* channel,
                     RandomSource* rng)
    : word_prf_(std::move(word_prf)),
      check_prf_(std::move(check_prf)),
      aead_(std::move(aead)),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<SwpClient>> SwpClient::Create(
    const crypto::MasterKey& key, net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  Result<crypto::Prf> word_prf = crypto::Prf::Create(key.keyword_key());
  if (!word_prf.ok()) return word_prf.status();
  Bytes check_key;
  SSE_ASSIGN_OR_RETURN(check_key,
                       crypto::HmacSha256(key.keyword_key(),
                                          StringToBytes("swp.check")));
  Result<crypto::Prf> check_prf = crypto::Prf::Create(check_key);
  if (!check_prf.ok()) return check_prf.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<SwpClient>(
      new SwpClient(std::move(word_prf).value(), std::move(check_prf).value(),
                    std::move(aead).value(), channel, rng));
}

Result<Bytes> SwpClient::WordCiphertext(std::string_view keyword) const {
  return word_prf_.EvalLabeled("swp.word", StringToBytes(keyword));
}

Status SwpClient::Store(const std::vector<core::Document>& docs) {
  if (docs.empty()) return Status::OK();
  BufferWriter w;
  w.PutVarint(docs.size());
  for (const core::Document& doc : docs) {
    w.PutVarint(doc.id);
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(
        blob, aead_.Seal(doc.content, core::EncodeDocId(doc.id), *rng_));
    w.PutBytes(blob);

    Bytes blocks;
    blocks.reserve(doc.keywords.size() * kBlockSize);
    for (const std::string& kw : doc.keywords) {
      Bytes x;
      SSE_ASSIGN_OR_RETURN(x, WordCiphertext(kw));
      Bytes l(x.begin(), x.begin() + kHalfSize);
      Bytes k;
      SSE_ASSIGN_OR_RETURN(k, check_prf_.Eval(l));
      Bytes s;
      SSE_ASSIGN_OR_RETURN(s, rng_->Generate(kHalfSize));
      Result<crypto::Prf> stream = crypto::Prf::Create(k);
      if (!stream.ok()) return stream.status();
      Bytes t;
      SSE_ASSIGN_OR_RETURN(t, stream->Eval(s));
      // C = X ⊕ (S ‖ PRF(k, S)[0..16)).
      for (size_t j = 0; j < kHalfSize; ++j) {
        blocks.push_back(x[j] ^ s[j]);
      }
      for (size_t j = 0; j < kHalfSize; ++j) {
        blocks.push_back(x[kHalfSize + j] ^ t[j]);
      }
    }
    w.PutBytes(blocks);
  }
  net::Message ack;
  SSE_ASSIGN_OR_RETURN(ack, channel_->Call(net::Message{kMsgSwpStore,
                                                        w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(ack, kMsgSwpStoreAck));
  return Status::OK();
}

Result<core::SearchOutcome> SwpClient::Search(std::string_view keyword) {
  Bytes x;
  SSE_ASSIGN_OR_RETURN(x, WordCiphertext(keyword));
  Bytes l(x.begin(), x.begin() + kHalfSize);
  Bytes k;
  SSE_ASSIGN_OR_RETURN(k, check_prf_.Eval(l));

  BufferWriter w;
  w.PutBytes(x);
  w.PutBytes(k);
  net::Message reply;
  SSE_ASSIGN_OR_RETURN(reply, channel_->Call(net::Message{kMsgSwpSearch,
                                                          w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(reply, kMsgSwpSearchResult));
  BufferReader r(reply.payload);
  core::SearchOutcome outcome;
  SSE_ASSIGN_OR_RETURN(outcome.ids, core::GetIdList(r));
  std::vector<core::WireDocument> wire_docs;
  SSE_ASSIGN_OR_RETURN(wire_docs, core::GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  for (const core::WireDocument& wire : wire_docs) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(
        plain, aead_.Open(wire.ciphertext, core::EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

}  // namespace sse::baselines
