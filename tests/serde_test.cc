#include "sse/util/serde.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse {
namespace {

TEST(SerdeTest, FixedWidthRoundTrip) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutBool(true);
  w.PutBool(false);

  BufferReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(*r.GetBool());
  EXPECT_FALSE(*r.GetBool());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerdeTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,    1,    127,        128,
                             255,  300,  16383,      16384,
                             1u << 21,   (1ull << 35) - 1, UINT64_MAX};
  BufferWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  BufferReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, VarintEncodingIsMinimalFor127) {
  BufferWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(SerdeTest, BytesAndStrings) {
  BufferWriter w;
  w.PutBytes(Bytes{1, 2, 3});
  w.PutString("hello");
  w.PutBytes(Bytes{});
  BufferReader r(w.data());
  EXPECT_EQ(*r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetBytes(), Bytes{});
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedReadsFail) {
  BufferWriter w;
  w.PutU32(7);
  BufferReader r(w.data());
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_FALSE(r.GetU32().ok());  // only 2 bytes left
}

TEST(SerdeTest, LengthPrefixBeyondInputFails) {
  BufferWriter w;
  w.PutVarint(1000);  // claims 1000 bytes follow
  w.PutU8(1);
  BufferReader r(w.data());
  EXPECT_FALSE(r.GetBytes().ok());
}

TEST(SerdeTest, LengthPrefixOverMaxLenFails) {
  BufferWriter w;
  w.PutVarint(100);
  for (int i = 0; i < 100; ++i) w.PutU8(0);
  BufferReader r(w.data());
  EXPECT_FALSE(r.GetBytes(/*max_len=*/99).ok());
}

TEST(SerdeTest, MalformedVarintFails) {
  // 10 continuation bytes overflow 64 bits.
  Bytes bad(10, 0xff);
  bad.push_back(0x7f);
  BufferReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(SerdeTest, TruncatedVarintFails) {
  Bytes bad{0x80};  // continuation bit set, no next byte
  BufferReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(SerdeTest, BoolRejectsNonBinary) {
  Bytes bad{2};
  BufferReader r(bad);
  EXPECT_FALSE(r.GetBool().ok());
}

TEST(SerdeTest, ExpectEndFailsOnTrailingBytes) {
  BufferWriter w;
  w.PutU8(1);
  w.PutU8(2);
  BufferReader r(w.data());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(SerdeTest, RandomizedRoundTrip) {
  DeterministicRandom rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BufferWriter w;
    std::vector<uint64_t> varints;
    std::vector<Bytes> blobs;
    const size_t items = rng.Next() % 20;
    for (size_t i = 0; i < items; ++i) {
      uint64_t v = rng.Next() >> (rng.Next() % 64);
      varints.push_back(v);
      w.PutVarint(v);
      Bytes blob(rng.Next() % 50);
      (void)rng.Fill(blob);
      blobs.push_back(blob);
      w.PutBytes(blob);
    }
    BufferReader r(w.data());
    for (size_t i = 0; i < items; ++i) {
      EXPECT_EQ(*r.GetVarint(), varints[i]);
      EXPECT_EQ(*r.GetBytes(), blobs[i]);
    }
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
}

}  // namespace
}  // namespace sse
