#ifndef SSE_SECURITY_TRACE_H_
#define SSE_SECURITY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sse/core/types.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::security {

/// The paper's History (Definition 1): the client's secret input — a
/// document collection plus the sequence of searched keywords.
struct History {
  std::vector<core::Document> documents;
  std::vector<std::string> queries;  // w_1 .. w_q
};

/// The paper's Trace (Definition 3): everything the scheme is *allowed* to
/// leak. Contains only public quantities — identifiers, data lengths, the
/// number of unique keywords, per-query result sets (the access pattern)
/// and the search pattern Π (which queries repeat).
struct Trace {
  std::vector<uint64_t> ids;           // id(M_1) .. id(M_n)
  std::vector<uint64_t> lengths;       // |M_1| .. |M_n|
  uint64_t unique_keywords = 0;        // |W_D|
  std::vector<std::vector<uint64_t>> results;  // D(w_1) .. D(w_q)
  /// search_pattern[i][j] == true iff w_i == w_j (symmetric, reflexive).
  std::vector<std::vector<bool>> search_pattern;  // Π_q

  /// True when `other` describes the same allowed leakage. Two histories
  /// with equal traces must be indistinguishable to the server.
  bool operator==(const Trace& other) const;
};

/// Computes the trace of a history (plaintext computation, used by the
/// simulator and the tests).
Trace ComputeTrace(const History& history);

/// The paper's View (Definition 2): everything the server actually sees.
/// Captured from a real protocol run, or fabricated by the Simulator.
struct View {
  std::vector<uint64_t> ids;
  std::vector<Bytes> encrypted_documents;  // E_{k_m}(M_i)
  /// The searchable representations S, one serialized entry per unique
  /// keyword: for Scheme 1 a triple (token, masked bitmap, F(r)).
  struct IndexEntry {
    Bytes token;
    Bytes masked_bitmap;
    Bytes enc_nonce;
  };
  std::vector<IndexEntry> index;
  std::vector<Bytes> trapdoors;  // T_{w_1} .. T_{w_t}
};

}  // namespace sse::security

#endif  // SSE_SECURITY_TRACE_H_
